"""Compare regenerated benchmark outputs against committed expectations.

Usage::

    REPRO_BENCH_SCALE=small PYTHONPATH=src python -m pytest benchmarks -q
    python benchmarks/check_expectations.py [--expected out_small]

Every figure the benchmark suite emits is deterministic for a given
scale — the workloads are seeded and costs are counted, not timed — so
the regenerated ``out/`` files must match the committed expectation
directory byte for byte.  The one exception is ``FIG4.txt``: it reports
measured wall-clock ratios, which vary run to run, so it is compared for
presence only.

Exit status: 0 when everything matches, 1 otherwise (CI-friendly).
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

HERE = pathlib.Path(__file__).parent

#: Compared for presence, not content (wall-clock measurements inside).
NONDETERMINISTIC = {
    "FIG4.txt",
    "LOADTEST.txt",
    "OBS-OVERHEAD.txt",
    "READ-CACHE.txt",
    "VEC-DECODE.txt",
    "VEC-SCORE.txt",
    "VEC-SHARD-SCALING.txt",
}


def compare(
    out_dir: pathlib.Path,
    expected_dir: pathlib.Path,
    only: str | None = None,
) -> int:
    """Diff ``out_dir`` against ``expected_dir``; returns the exit code.

    With ``only``, restrict the comparison to the single expectation
    named ``<only>.txt`` (so a CI job that regenerates one figure can
    check just that figure without MISSING noise from the rest).
    """
    failures = 0
    expected_files = sorted(p.name for p in expected_dir.glob("*.txt"))
    if only is not None:
        wanted = f"{only}.txt" if not only.endswith(".txt") else only
        if wanted not in expected_files:
            print(f"no expectation named {wanted} in {expected_dir}", file=sys.stderr)
            return 1
        expected_files = [wanted]
    if not expected_files:
        print(f"no expectation files in {expected_dir}", file=sys.stderr)
        return 1
    for name in expected_files:
        regenerated = out_dir / name
        if not regenerated.exists():
            print(f"MISSING  {name}: benchmark suite did not emit it")
            failures += 1
            continue
        if name in NONDETERMINISTIC:
            print(f"SKIPPED  {name}: wall-clock figures are not compared")
            continue
        expected_text = (expected_dir / name).read_text()
        actual_text = regenerated.read_text()
        if actual_text == expected_text:
            print(f"OK       {name}")
            continue
        failures += 1
        print(f"DIFFERS  {name}:")
        diff = difflib.unified_diff(
            expected_text.splitlines(),
            actual_text.splitlines(),
            fromfile=f"expected/{name}",
            tofile=f"regenerated/{name}",
            lineterm="",
        )
        for line in diff:
            print(f"  {line}")
    if only is None:
        stray = sorted(
            p.name
            for p in out_dir.glob("*.txt")
            if p.name not in set(expected_files)
        )
        for name in stray:
            print(f"STRAY    {name}: no committed expectation (add one?)")
    if failures:
        print(f"\n{failures} expectation(s) failed")
        return 1
    print(f"\nall {len(expected_files)} expectations satisfied")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=HERE / "out", type=pathlib.Path,
        help="directory the benchmark suite wrote (default: benchmarks/out)",
    )
    parser.add_argument(
        "--expected", default=HERE / "out_small", type=pathlib.Path,
        help="committed expectation directory (default: benchmarks/out_small)",
    )
    parser.add_argument(
        "--only", default=None, metavar="NAME",
        help="check a single expectation (e.g. OBS-OVERHEAD); skips the "
        "stray-file scan",
    )
    args = parser.parse_args(argv)
    return compare(args.out, args.expected, only=args.only)


if __name__ == "__main__":
    sys.exit(main())
