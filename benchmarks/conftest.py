"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation, printing the series (run pytest with ``-s`` to see them live)
and writing it to ``benchmarks/out/<experiment>.txt`` so EXPERIMENTS.md
can be refreshed from a run.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``tiny`` (default; the whole suite in a couple of minutes), ``small``,
``medium``, or ``paper`` (the publication's 1M-document workload — hours
in pure Python).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.simulate.workload_factory import Scale, get_workload

# Anchored to this file (never the CWD) so running pytest from the repo
# root, the benchmarks directory, or a CI checkout all write to the same
# place; REPRO_BENCH_OUT overrides the destination outright.
OUT_DIR = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUT", pathlib.Path(__file__).parent / "out")
).resolve()


def bench_scale() -> Scale:
    """The workload scale selected via ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny").lower()
    try:
        return getattr(Scale, name)()
    except AttributeError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be tiny/small/medium/paper, got '{name}'"
        ) from None


@pytest.fixture(scope="session")
def workload():
    """Session-cached workload at the selected benchmark scale."""
    return get_workload(bench_scale())


@pytest.fixture(scope="session")
def emit():
    """Writer that prints a regenerated figure and persists it to disk."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        print(f"\n=== {experiment_id} ===\n{text}")
        (OUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")

    return _emit


def once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
