"""ABL-BLOCKSIZE — Ablation: the jump-index block size L.

DESIGN.md decision 3.  The paper presents L = 8 KB in detail and notes
two opposing effects of larger blocks (Section 4.5): "Increasing the
block size L beyond 8 Kbytes ... reduces the I/Os per document, by
reducing the storage overhead for jump pointers", while Figure 8(a)
shows pointer space overhead shrinking with L (so disjunctive scans get
cheaper too) — at the cost of coarser seek granularity for conjunctive
queries.

This ablation sweeps L at fixed B, reporting (analytically) the space
overhead and (from the live index) insert I/Os per document.
"""

from conftest import once

from repro.core.space import postings_per_block, space_overhead
from repro.simulate.jump_sim import build_merged_index
from repro.simulate.report import format_table

NUM_LISTS = 32
BRANCHING = 8
MAX_DOC_BITS = 16
BLOCK_SIZES = [512, 1024, 2048, 4096]


def test_ablation_block_size(benchmark, workload, emit):
    docs = workload.documents[: min(4000, len(workload.documents))]
    n = 2**MAX_DOC_BITS

    def run():
        rows = []
        for block_size in BLOCK_SIZES:
            bundle = build_merged_index(
                docs,
                num_lists=NUM_LISTS,
                branching=BRANCHING,
                block_size=block_size,
                max_doc_bits=MAX_DOC_BITS,
                cache_blocks=max(64, NUM_LISTS * 2),
            )
            rows.append(
                (
                    block_size,
                    postings_per_block(block_size, BRANCHING, n),
                    round(100 * space_overhead(block_size, BRANCHING, n), 1),
                    round(bundle.ios_per_doc(), 2),
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "ABL-BLOCKSIZE",
        format_table(
            ["block L", "postings/block", "space overhead %", "insert ios/doc"],
            rows,
            title=f"Ablation: jump-index block size (B={BRANCHING})",
        ),
    )
    overheads = [r[2] for r in rows]
    ios = [r[3] for r in rows]
    # Larger blocks: lower pointer overhead AND fewer insert I/Os.
    assert overheads == sorted(overheads, reverse=True)
    assert ios[-1] <= ios[0]
