"""ABL-MERGE — Ablation: how much headroom do the merging heuristics leave?

DESIGN.md decision 2: the paper recommends uniform hash merging because
it is nearly as good as popularity-aware merging in its sweeps.  Since
optimal merging is NP-complete (Section 3.1), the open question is how
far *any* heuristic sits from a stronger optimizer.  This ablation runs
uniform, popular-unmerged (qi and ti), and the greedy sum-of-squares
heuristic over the same cache sweep.

Expected: greedy < popular <= uniform in cost, with all of them within
a few percent of 1.0 at realistic cache sizes — i.e. the paper's
"uniform is good enough" conclusion is robust to smarter optimizers.
"""

from conftest import once

from repro.core.cost_model import cost_ratio
from repro.core.epochs import learn_popular_terms
from repro.core.merge import (
    GreedyCostMerge,
    PopularUnmergedMerge,
    UniformHashMerge,
    lists_for_cache,
)
from repro.simulate.report import format_table

CACHE_SIZES = [1 << 22, 1 << 24, 1 << 26, 1 << 28]
BLOCK_SIZE = 8192


def test_ablation_merge_strategies(benchmark, workload, emit):
    stats = workload.stats

    def run():
        rows = []
        for cache_bytes in CACHE_SIZES:
            num_lists = lists_for_cache(cache_bytes, BLOCK_SIZE)
            k = min(200, num_lists // 2)
            uniform = UniformHashMerge(num_lists).assign(stats.num_terms)
            by_qi = PopularUnmergedMerge(
                num_lists, learn_popular_terms(stats, k, by="qi")
            ).assign(stats.num_terms)
            by_ti = PopularUnmergedMerge(
                num_lists, learn_popular_terms(stats, k, by="ti")
            ).assign(stats.num_terms)
            greedy = GreedyCostMerge(num_lists, stats.ti, stats.qi).assign(
                stats.num_terms
            )
            rows.append(
                (
                    cache_bytes >> 20,
                    round(cost_ratio(uniform, stats), 4),
                    round(cost_ratio(by_qi, stats), 4),
                    round(cost_ratio(by_ti, stats), 4),
                    round(cost_ratio(greedy, stats), 4),
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "ABL-MERGE",
        format_table(
            ["cache_MB", "uniform", "popular-qi", "popular-ti", "greedy"],
            rows,
            title="Ablation: Q ratio by merging strategy",
        ),
    )
    for _, uniform, by_qi, by_ti, greedy in rows:
        # Popularity-aware and greedy never lose to uniform by much...
        assert by_qi <= uniform * 1.05
        assert greedy <= uniform * 1.05
    # ...and at the realistic (large-cache) end everyone is near 1.0,
    # so uniform's simplicity wins — the paper's conclusion.
    final = rows[-1]
    assert all(ratio < 1.1 for ratio in final[1:])
