"""ABL-TAILPATH — Ablation: the Section 4.5 writer-memory optimization.

The paper's insert path "tracks in its own memory ... the largest
document ID and the last pointer for all the blocks on the path from
root to the tail block, for every posting list", so following a jump
pointer during insert costs no storage access — "a block fetch is
required only when setting a new pointer".  It budgets 8k·log(N) bytes
of application memory for this (8 MB for k=32,768 lists).

This ablation toggles ``track_tail_path`` and reports insert I/Os per
document with and without the optimization, across cache sizes: the
naive walk re-reads path blocks on every insert, which a small cache
cannot absorb.
"""

from conftest import once

from repro.simulate.jump_sim import insert_ios_sweep
from repro.simulate.report import format_table

NUM_LISTS = 32
BLOCK_SIZE = 1024
BRANCHING = 32
CACHE_BLOCKS = [48, 96, 192, 384]


def test_ablation_tail_path(benchmark, workload, emit):
    docs = workload.documents[: min(4000, len(workload.documents))]

    def run():
        kwargs = dict(
            num_lists=NUM_LISTS,
            branchings=[BRANCHING],
            cache_block_counts=CACHE_BLOCKS,
            block_size=BLOCK_SIZE,
            max_doc_bits=16,
        )
        tracked = insert_ios_sweep(docs, track_tail_path=True, **kwargs)
        naive = insert_ios_sweep(docs, track_tail_path=False, **kwargs)
        return tracked[BRANCHING], naive[BRANCHING]

    tracked, naive = once(benchmark, run)
    rows = [
        (cache, round(t, 2), round(n, 2), round(n / max(t, 1e-9), 2))
        for (cache, t), (_, n) in zip(tracked, naive)
    ]
    emit(
        "ABL-TAILPATH",
        format_table(
            ["cache_blocks", "with tracking", "naive walk", "naive/tracked"],
            rows,
            title=(
                "Ablation: Section 4.5 tail-path memory optimization "
                f"(B={BRANCHING}, {NUM_LISTS} lists)"
            ),
        ),
    )
    # The optimization matters most under cache pressure and never hurts.
    for (_, t), (_, n) in zip(tracked, naive):
        assert n >= t * 0.99
    assert naive[0][1] > tracked[0][1] * 1.3
