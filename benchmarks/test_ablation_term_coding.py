"""ABL-TERMCODE — How much does Huffman coding of keyword tags save?

Section 3 of the paper budgets ``log2(q)`` bits per merged-list entry
for the keyword encoding and remarks that Huffman coding would reduce it
"since keyword occurrences within merged posting lists are unlikely to
be uniformly distributed", excluding the refinement from its analysis.

This ablation quantifies the remark on the synthetic workload: for each
merged list under uniform hashing, build the optimal prefix code over
its actual term mix and compare the posting-weighted expected bits with
the fixed-width budget.
"""

from conftest import once

from repro.core.merge import UniformHashMerge
from repro.core.term_coding import build_huffman_code, entropy_bits
from repro.simulate.report import format_table

NUM_LISTS_SWEEP = [64, 256, 1024]


def test_ablation_term_coding(benchmark, workload, emit):
    stats = workload.stats

    def run():
        rows = []
        for num_lists in NUM_LISTS_SWEEP:
            assignment = UniformHashMerge(num_lists).assign(stats.num_terms)
            fixed_total = 0.0
            huffman_total = 0.0
            entropy_total = 0.0
            postings_total = 0
            for list_id in range(num_lists):
                terms = assignment.terms_in_list(list_id)
                counts = {
                    int(t): int(stats.ti[t]) for t in terms if stats.ti[t] > 0
                }
                if not counts:
                    continue
                code = build_huffman_code(counts)
                postings = sum(counts.values())
                fixed_total += code.fixed_width_bits() * postings
                huffman_total += code.expected_bits() * postings
                entropy_total += entropy_bits(counts) * postings
                postings_total += postings
            rows.append(
                (
                    num_lists,
                    round(fixed_total / postings_total, 2),
                    round(huffman_total / postings_total, 2),
                    round(entropy_total / postings_total, 2),
                    round(100 * (1 - huffman_total / fixed_total), 1),
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "ABL-TERMCODE",
        format_table(
            ["lists M", "fixed bits", "huffman bits", "entropy bits", "saving %"],
            rows,
            title="Ablation: per-entry keyword-tag bits, fixed vs Huffman",
        ),
    )
    for _, fixed, huffman, entropy, saving in rows:
        # The paper's remark: real mixes compress well below log2(q)...
        assert huffman < fixed
        assert saving > 20
        # ...and Huffman sits within 1 bit of the entropy bound.
        assert huffman < entropy + 1.0
