"""TAB-CONCL — The Section 6 headline comparison, regenerated.

Paper (Section 6), versus the baseline that uses a multi-GB cache,
unmerged lists, and a B+ tree per list:

* document insertion: the merged scheme is **20x faster** with a modest
  cache (their 128 MB vs multi-GB);
* disjunctive workload: merged lists alone are **14% slower** than the
  baseline; with a B=32 jump index **26% slower** (the 11% space
  overhead compounds);
* conjunctive workload: merged + jump index is **47% faster** than
  merged without, and **30% slower** than the baseline.

This benchmark composes the other experiments' machinery into that one
table at our scale, checking signs and orders of magnitude.
"""

from conftest import once

from repro.core.cost_model import cost_ratio
from repro.core.merge import UniformHashMerge
from repro.core.space import disjunctive_slowdown
from repro.simulate.cache_sim import ios_per_doc_merged, ios_per_doc_unmerged
from repro.simulate.jump_sim import query_speedup_sweep
from repro.simulate.report import format_table

BLOCK_SIZE = 4096
#: Lists for the conjunctive experiment: few, deep merged lists so the
#: zigzag/scan geometry matches Figure 8(c)'s.
CONJ_LISTS = 16
TERM_COUNTS = (2, 4, 7)


def test_conclusion_summary(benchmark, workload, emit):
    docs = workload.documents

    # The paper keeps ~1 merged list per 30 vocabulary terms (32,768
    # lists over a 1M+-term vocabulary); reproduce that ratio so the
    # disjunctive penalty is comparable.  The baseline's "multi-GB" cache
    # maps to a quarter of tail saturation: big, but unable to hold the
    # Zipf tail (the paper's "even for very large caches" regime).
    num_lists = max(CONJ_LISTS, workload.vocabulary_size // 30)
    modest_cache = num_lists * BLOCK_SIZE
    baseline_cache = workload.vocabulary_size * BLOCK_SIZE // 4

    def run():
        assignment = UniformHashMerge(num_lists).assign(workload.vocabulary_size)
        insert_merged = ios_per_doc_merged(
            docs, assignment, cache_size_bytes=modest_cache, block_size=BLOCK_SIZE
        )
        insert_baseline = ios_per_doc_unmerged(
            docs, cache_size_bytes=baseline_cache, block_size=BLOCK_SIZE
        )
        disjunctive_vs_baseline = cost_ratio(assignment, workload.stats)
        jump_overhead = disjunctive_slowdown(BLOCK_SIZE, 32, 2**16)
        queries = {n: workload.queries_with_terms(n, limit=10) for n in TERM_COUNTS}
        speedups = query_speedup_sweep(
            docs,
            queries,
            workload.stats.ti,
            num_lists=CONJ_LISTS,
            branchings=(32,),
            block_size=BLOCK_SIZE,
            max_doc_bits=16,
            include_unmerged_ideal=True,
        )
        return (
            insert_merged,
            insert_baseline,
            disjunctive_vs_baseline,
            jump_overhead,
            speedups,
        )

    (
        insert_merged,
        insert_baseline,
        disjunctive_ratio,
        jump_overhead,
        speedups,
    ) = once(benchmark, run)

    insert_speedup = insert_baseline / max(insert_merged, 1e-9)
    with_jump = dict(speedups.series["B=32"])
    ideal = dict(speedups.series["unmerged"])
    n = TERM_COUNTS[-1]
    conj_jump_vs_scan = with_jump[n]            # merged+JI over merged-only
    conj_jump_vs_ideal = with_jump[n] / ideal[n]  # <1: slower than baseline

    rows = [
        ("insert: merged vs baseline (modest cache)", f"{insert_speedup:.1f}x faster", "20x faster"),
        ("disjunctive: merged vs baseline", f"{100 * (disjunctive_ratio - 1):.0f}% slower", "14% slower"),
        ("disjunctive: merged+JI(B=32) vs baseline",
         f"{100 * (disjunctive_ratio * (1 + jump_overhead) - 1):.0f}% slower", "26% slower"),
        (f"conjunctive ({n} terms): merged+JI vs merged",
         f"{100 * (conj_jump_vs_scan - 1):.0f}% faster", "47% faster"),
        (f"conjunctive ({n} terms): merged+JI vs baseline",
         f"{100 * (1 - conj_jump_vs_ideal):.0f}% slower", "30% slower"),
    ]
    emit(
        "TAB-CONCL",
        format_table(
            ["comparison", "measured", "paper"],
            rows,
            title="Section 6 conclusion numbers, regenerated at benchmark scale",
        ),
    )
    # Signs and magnitudes: insertion wins by an order of magnitude; the
    # disjunctive penalty is small; jump indexes win conjunctive queries
    # but stay behind the untrusted ideal.
    assert insert_speedup > 5
    assert 1.0 <= disjunctive_ratio < 1.8
    assert conj_jump_vs_scan > 1.2
    assert conj_jump_vs_ideal < 1.0
