"""SEC45-DISJ — Measured disjunctive slowdown of carrying a jump index.

Section 4.5: "jump indexes slow down disjunctive query workloads by the
same factor as the space overhead of the jump index.  For example, the
slowdown is 1.5% and 11% for B = 2 and B = 32, respectively, for 8 KB
blocks."

The analytic side is Figure 8(a)'s model (`core.space`); this benchmark
*measures* it on live indexes: identical postings ingested with and
without jump indexes, comparing the total blocks a full disjunctive scan
reads.  The measured block ratio must match the analytic
``postings_per_block`` ratio, because that is all the slowdown is.
"""

from conftest import once

from repro.core.posting import POSTING_SIZE
from repro.core.space import postings_per_block
from repro.simulate.jump_sim import build_merged_index
from repro.simulate.report import format_table

NUM_LISTS = 16
BLOCK_SIZE = 4096
MAX_DOC_BITS = 16
BRANCHINGS = (2, 8, 32, 64)


def test_disjunctive_overhead(benchmark, workload, emit):
    docs = workload.documents[: min(3000, len(workload.documents))]
    n = 2**MAX_DOC_BITS

    def run():
        baseline = build_merged_index(
            docs, num_lists=NUM_LISTS, branching=None, block_size=BLOCK_SIZE
        )
        base_blocks = sum(pl.num_blocks for pl in baseline.lists.values())
        rows = []
        for branching in BRANCHINGS:
            bundle = build_merged_index(
                docs,
                num_lists=NUM_LISTS,
                branching=branching,
                block_size=BLOCK_SIZE,
                max_doc_bits=MAX_DOC_BITS,
            )
            blocks = sum(pl.num_blocks for pl in bundle.lists.values())
            measured = blocks / base_blocks - 1
            analytic = (
                (BLOCK_SIZE // POSTING_SIZE)
                / postings_per_block(BLOCK_SIZE, branching, n)
                - 1
            )
            rows.append(
                (
                    branching,
                    blocks,
                    round(100 * measured, 1),
                    round(100 * analytic, 1),
                )
            )
        return base_blocks, rows

    base_blocks, rows = once(benchmark, run)
    emit(
        "SEC45-DISJ",
        format_table(
            ["B", "scan blocks", "measured slowdown %", "analytic %"],
            rows,
            title=(
                "Section 4.5: disjunctive scan slowdown of a jump index "
                f"(baseline {base_blocks} blocks, L={BLOCK_SIZE})"
            ),
        ),
    )
    for _, _, measured, analytic in rows:
        # Measured block inflation matches the space model within the
        # partial-tail-block quantization noise.
        assert abs(measured - analytic) <= max(2.0, 0.25 * analytic)
    slowdowns = [measured for _, _, measured, _ in rows]
    assert slowdowns == sorted(slowdowns)  # grows with B