"""EPOCH-DRIFT — The Section 3.3 epoch scheme under drifting popularity.

Figures 3(f)/3(g) establish that one learning pass suffices when term
statistics are stable; the paper's contingency — "in an environment
where the frequencies are less stable, the system can learn the
frequencies online, and the merging strategy can be adapted accordingly"
— is only asserted, never measured.  This experiment measures it.

Setup: a multi-epoch query workload whose hot term set rotates each
epoch (document statistics fixed).  Strategies compared, per epoch:

* **uniform** — no popularity awareness at all (the robust default);
* **stale-learned** — popular terms learned once, in epoch 0, then
  frozen (what static learning degrades to under drift);
* **adaptive** — each epoch's popular set learned from the *previous*
  epoch's observed queries (the epoch scheme);
* **oracle** — popular set from the same epoch's own statistics (the
  unrealizable lower bound).

Expected shape: stale degrades toward (or past) uniform as the hot set
rotates away from its frozen choice; adaptive tracks the oracle.
"""

import numpy as np
from conftest import once

from repro.core.cost_model import cost_ratio
from repro.core.merge import PopularUnmergedMerge, UniformHashMerge
from repro.simulate.report import format_table
from repro.workloads.drift import DriftConfig, DriftingWorkload
from repro.workloads.stats import WorkloadStats

NUM_LISTS = 256
UNMERGED = 100


def _popular_from(qi: np.ndarray, k: int) -> np.ndarray:
    top = np.argpartition(qi, -k)[-k:]
    return top[np.argsort(qi[top])[::-1]]


def test_epoch_adaptation(benchmark, workload, emit):
    drift = DriftingWorkload(
        DriftConfig(
            vocabulary_size=workload.vocabulary_size,
            num_epochs=4,
            queries_per_epoch=3_000,
            hot_pool_size=1_000,
            drift_stride=50,
        )
    )
    ti = workload.stats.ti

    def run():
        epochs = list(drift.epochs())
        stale_popular = _popular_from(epochs[0].qi, UNMERGED)
        rows = []
        for i, epoch in enumerate(epochs):
            stats = WorkloadStats(ti=ti, qi=epoch.qi)
            uniform = UniformHashMerge(NUM_LISTS).assign(stats.num_terms)
            stale = PopularUnmergedMerge(NUM_LISTS, stale_popular).assign(
                stats.num_terms
            )
            if i == 0:
                adaptive_assignment = uniform  # nothing learned yet
            else:
                learned = _popular_from(epochs[i - 1].qi, UNMERGED)
                adaptive_assignment = PopularUnmergedMerge(
                    NUM_LISTS, learned
                ).assign(stats.num_terms)
            oracle = PopularUnmergedMerge(
                NUM_LISTS, _popular_from(epoch.qi, UNMERGED)
            ).assign(stats.num_terms)
            rows.append(
                (
                    i,
                    round(drift.hot_set_overlap(0, i), 2),
                    round(cost_ratio(uniform, stats), 3),
                    round(cost_ratio(stale, stats), 3),
                    round(cost_ratio(adaptive_assignment, stats), 3),
                    round(cost_ratio(oracle, stats), 3),
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "EPOCH-DRIFT",
        format_table(
            ["epoch", "hot overlap w/ e0", "uniform", "stale-learned",
             "adaptive", "oracle"],
            rows,
            title=(
                "Epoch adaptation under drifting query popularity "
                f"({NUM_LISTS} lists, {UNMERGED} unmerged terms)"
            ),
        ),
    )
    # The drift is real: epoch 0's hot set rotates fully away by the end.
    assert rows[-1][1] < 0.5
    for i, _, uniform, stale, adaptive, oracle in rows:
        if i >= 1:
            # Popularity awareness (fresh or stale) still beats uniform —
            # the excluded terms are document-popular either way.
            assert adaptive < uniform
        if i >= 2:
            # Once the hot set has fully rotated past epoch 0's snapshot,
            # one-epoch-stale learning clearly beats frozen learning and
            # stays within reach of the same-epoch oracle.  (At 50%
            # overlap the ordering can be noise; at 0% it is structural.)
            assert adaptive < stale
            assert adaptive <= oracle * 1.5 + 0.1
