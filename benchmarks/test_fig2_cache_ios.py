"""FIG2 — Random I/Os per inserted document vs storage-cache size.

Paper: Figure 2 (Section 3).  One posting list per term, tail blocks
cached LRU.  The curve starts in the hundreds of I/Os per document and
"levels off slowly due to the Zipfian distribution of the keywords";
even multi-GB caches stay around 21 I/Os per document, versus ~1 with
merged lists (the Section 2.3 arithmetic: 500 8-byte postings over 4 KB
blocks).

Our scaled corpus has proportionally fewer distinct terms per document,
so absolute counts sit below the paper's; the leveling-off shape and the
merged/unmerged gap are the reproduction targets.
"""

from conftest import once

from repro.core.merge import UniformHashMerge, lists_for_cache
from repro.simulate.cache_sim import (
    analytic_merged_ios_per_doc,
    figure2_sweep,
    ios_per_doc_merged,
)
from repro.simulate.report import format_table

BLOCK_SIZE = 4096


def _cache_sizes(vocabulary_size: int):
    """Sweep fractions of the tail-saturation point (vocab x block).

    The paper's 4 MB - 64 GB axis spans the same regime relative to its
    1M+-term vocabulary: from thrashing to (never quite) holding every
    posting-list tail.  Deriving the sweep from the vocabulary keeps the
    regime fixed across REPRO_BENCH_SCALE settings.
    """
    saturation = vocabulary_size * BLOCK_SIZE
    return [max(1 << 20, saturation // f) for f in (64, 32, 16, 8, 4, 2, 1)]


def test_fig2_cache_ios(benchmark, workload, emit):
    docs = workload.documents
    cache_sizes = _cache_sizes(workload.vocabulary_size)

    def run():
        unmerged = figure2_sweep(docs, cache_sizes, block_size=BLOCK_SIZE)
        merged = []
        for cache_bytes in cache_sizes:
            num_lists = lists_for_cache(cache_bytes, BLOCK_SIZE)
            assignment = UniformHashMerge(num_lists).assign(
                workload.vocabulary_size
            )
            merged.append(
                ios_per_doc_merged(
                    docs,
                    assignment,
                    cache_size_bytes=cache_bytes,
                    block_size=BLOCK_SIZE,
                )
            )
        return unmerged, merged

    unmerged, merged = once(benchmark, run)
    postings_per_doc = sum(d.num_distinct_terms for d in docs) / len(docs)
    rows = [
        (size >> 20, round(u, 2), round(m, 3), round(u / max(m, 1e-9), 1))
        for (size, u), m in zip(unmerged, merged)
    ]
    emit(
        "FIG2",
        format_table(
            ["cache_MB", "ios/doc unmerged", "ios/doc merged", "speedup"],
            rows,
            title=(
                "Figure 2: random I/Os per inserted document "
                f"(block {BLOCK_SIZE} B, {postings_per_doc:.0f} postings/doc; "
                f"analytic merged floor "
                f"{analytic_merged_ios_per_doc(postings_per_doc, block_size=BLOCK_SIZE):.3f})"
            ),
        ),
    )
    # Shape checks: monotone decline that levels off; merged wins by
    # an order of magnitude in the (realistic) under-saturated regime —
    # the largest sweep point deliberately saturates the cache, where the
    # two schemes meet, so the comparison uses the quarter-saturation
    # point the paper's "even for very large caches" claim refers to.
    series = [u for _, u in unmerged]
    assert series == sorted(series, reverse=True)
    assert series[0] - series[1] > series[-2] - series[-1]
    mid = len(cache_sizes) - 3  # saturation / 4
    assert merged[mid] * 5 < series[mid]
    # At full saturation the schemes meet (within a few percent: merging
    # trades a handful of partial-block flushes for the tail misses).
    assert merged[-1] <= series[-1] * 1.10 + 1e-9
