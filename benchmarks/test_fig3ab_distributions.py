"""FIG3A/FIG3B — Term-frequency and query-frequency distributions.

Paper: Figures 3(a) and 3(b) (Section 3.3).  Both are Zipfian (straight
lines on log-log axes); these are properties of the IBM workload that the
synthetic generators must reproduce for every downstream figure to mean
anything.
"""

import numpy as np
from conftest import once

from repro.simulate.report import format_table


RANKS = [0, 9, 99, 499, 999, 4999, 9999]


def _ranked_rows(ranked: np.ndarray):
    return [(r + 1, int(ranked[r])) for r in RANKS if r < len(ranked)]


def test_fig3a_term_frequencies(benchmark, workload, emit):
    ranked = once(benchmark, lambda: workload.stats.tf_ranked())
    emit(
        "FIG3A",
        format_table(
            ["rank", "term frequency ti"],
            _ranked_rows(ranked),
            title="Figure 3(a): term-frequency distribution (Zipfian)",
        ),
    )
    # Zipf shape: close to a power law across two decades of rank.
    assert ranked[0] > 5 * ranked[99] > 0
    log_drop_1 = np.log(ranked[0] / max(ranked[9], 1))
    log_drop_2 = np.log(max(ranked[9], 1) / max(ranked[99], 1))
    assert 0.2 < log_drop_1 / max(log_drop_2, 1e-9) < 5.0


def test_fig3b_query_frequencies(benchmark, workload, emit):
    ranked = once(benchmark, lambda: workload.stats.qf_ranked())
    emit(
        "FIG3B",
        format_table(
            ["rank", "query frequency qi"],
            _ranked_rows(ranked),
            title="Figure 3(b): query-frequency distribution (Zipfian)",
        ),
    )
    assert ranked[0] > 5 * ranked[99]
    # The Section 3.3 correlation both figures rest on.
    assert workload.stats.rank_correlation() > 0.2
