"""FIG3C — Cumulative workload cost by QF-rank and TF-rank.

Paper: Figure 3(c) (Section 3.3).  "A very small fraction of the terms
account for almost the entire workload cost"; the curve ordered by query
frequency saturates faster than the one ordered by term frequency
(because some document-frequent terms, like 'following', are rarely
queried).
"""

from conftest import once

from repro.simulate.report import format_table

CHECKPOINTS = [10, 100, 1000, 5000, 10000, 25000]


def test_fig3c_cumulative_cost(benchmark, workload, emit):
    stats = workload.stats

    def run():
        return (
            stats.cumulative_cost_by_qf_rank(),
            stats.cumulative_cost_by_tf_rank(),
            stats.total_unmerged_cost(),
        )

    qf_curve, tf_curve, total = once(benchmark, run)
    rows = []
    for k in CHECKPOINTS:
        if k > len(qf_curve):
            break
        rows.append(
            (
                k,
                round(100 * qf_curve[k - 1] / total, 1),
                round(100 * tf_curve[k - 1] / total, 1),
            )
        )
    emit(
        "FIG3C",
        format_table(
            ["top-k terms", "QF-ranked %Q", "TF-ranked %Q"],
            rows,
            title=(
                "Figure 3(c): cumulative workload cost "
                f"(total Q = {total:.3g} posting scans)"
            ),
        ),
    )
    # Key observations: tiny head carries nearly all cost; QF saturates
    # at least as fast as TF everywhere.
    k_head = min(1000, len(qf_curve))
    assert qf_curve[k_head - 1] / total > 0.5
    for k in CHECKPOINTS:
        if k <= len(qf_curve):
            assert qf_curve[k - 1] >= tf_curve[k - 1] * 0.999
