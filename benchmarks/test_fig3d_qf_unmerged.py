"""FIG3D — Workload-cost ratio; popular *query* terms kept unmerged.

Paper: Figure 3(d) (Section 3.4).  Curves for 0 / 1,000 / 10,000
unmerged top-qi terms, remainder uniformly hash-merged into M = cache /
8 KB lists.  Key observation: "even for modest cache sizes (128-256 MB),
the workload cost with merging is almost as good as without merging",
and the uniform ('0 term') curve is close to the popularity-aware ones
at larger caches.

Scaled: term counts are divided by ~30 along with the vocabulary.
"""

from conftest import once

from repro.simulate.merge_sim import figure3d_to_3g
from repro.simulate.report import format_table

CACHE_SIZES = [1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26, 1 << 27, 1 << 28]
UNMERGED_COUNTS = (0, 100, 1000)


def test_fig3d_qf_unmerged(benchmark, workload, emit):
    panel = once(
        benchmark,
        lambda: figure3d_to_3g(
            workload.stats,
            cache_sizes_bytes=CACHE_SIZES,
            unmerged_counts=UNMERGED_COUNTS,
            by="qi",
        ),
    )
    rows = [
        (size >> 20, *(round(dict(panel[c])[size], 3) for c in UNMERGED_COUNTS))
        for size in CACHE_SIZES
    ]
    emit(
        "FIG3D",
        format_table(
            ["cache_MB"] + [f"{c} terms" for c in UNMERGED_COUNTS],
            rows,
            title="Figure 3(d): Q ratio, popular QUERY terms not merged",
        ),
    )
    for count in UNMERGED_COUNTS:
        ratios = [r for _, r in panel[count]]
        assert all(r >= 1.0 for r in ratios)
        assert ratios[0] >= ratios[-1]
        assert ratios[-1] < 1.15  # near-unmerged cost at modest caches
    # Uniform merging is close to the best scheme at the largest cache.
    best_final = min(dict(panel[c])[CACHE_SIZES[-1]] for c in UNMERGED_COUNTS)
    assert dict(panel[0])[CACHE_SIZES[-1]] < best_final + 0.1
