"""FIG3E — Workload-cost ratio; popular *document* terms kept unmerged.

Paper: Figure 3(e) (Section 3.4).  Same sweep as Figure 3(d) but the
dedicated lists go to the top-ti terms.  Slightly less effective than
ranking by query frequency (document-popular terms are not always the
cost drivers — 'following'), but the qualitative picture is identical.
"""

from conftest import once

from repro.simulate.merge_sim import figure3d_to_3g
from repro.simulate.report import format_table

CACHE_SIZES = [1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26, 1 << 27, 1 << 28]
UNMERGED_COUNTS = (0, 100, 1000)


def test_fig3e_tf_unmerged(benchmark, workload, emit):
    panel = once(
        benchmark,
        lambda: figure3d_to_3g(
            workload.stats,
            cache_sizes_bytes=CACHE_SIZES,
            unmerged_counts=UNMERGED_COUNTS,
            by="ti",
        ),
    )
    rows = [
        (size >> 20, *(round(dict(panel[c])[size], 3) for c in UNMERGED_COUNTS))
        for size in CACHE_SIZES
    ]
    emit(
        "FIG3E",
        format_table(
            ["cache_MB"] + [f"{c} terms" for c in UNMERGED_COUNTS],
            rows,
            title="Figure 3(e): Q ratio, popular DOCUMENT terms not merged",
        ),
    )
    for count in UNMERGED_COUNTS:
        ratios = [r for _, r in panel[count]]
        assert all(r >= 1.0 for r in ratios)
        assert ratios[0] >= ratios[-1]
        assert ratios[-1] < 1.15
