"""FIG3F/FIG3G — Merging decisions from statistics learned on a prefix.

Paper: Figures 3(f) and 3(g) (Sections 3.3-3.4).  "We computed the most
popular terms for the first 10% of the documents crawled and the first
10% of the queries submitted, and used those statistics to make merging
decisions for the entire index" — the resulting cost ratio is almost
unchanged from the true-statistics Figures 3(d)/3(e), establishing that
the frequencies are stable enough to learn (the epoch scheme's premise).
"""

from conftest import once

from repro.core.epochs import prefix_query_frequencies, prefix_term_frequencies
from repro.simulate.merge_sim import cost_ratio_sweep
from repro.simulate.report import format_table
from repro.workloads.stats import WorkloadStats

CACHE_SIZES = [1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26, 1 << 27]
UNMERGED = 300
LEARN_FRACTION = 0.10


def _panel(workload, by, learned_stats):
    true_series = cost_ratio_sweep(
        workload.stats,
        cache_sizes_bytes=CACHE_SIZES,
        unmerged_terms=UNMERGED,
        by=by,
    )
    learned_series = cost_ratio_sweep(
        workload.stats,
        cache_sizes_bytes=CACHE_SIZES,
        unmerged_terms=UNMERGED,
        by=by,
        learned_stats=learned_stats,
    )
    return true_series, learned_series


def test_fig3f_learned_query_stats(benchmark, workload, emit):
    def run():
        learned = WorkloadStats(
            ti=workload.stats.ti,  # qi is what 3(f) learns
            qi=prefix_query_frequencies(workload.query_log, LEARN_FRACTION),
        )
        return _panel(workload, "qi", learned)

    true_series, learned_series = once(benchmark, run)
    rows = [
        (size >> 20, round(t, 3), round(l, 3))
        for (size, t), (_, l) in zip(true_series, learned_series)
    ]
    emit(
        "FIG3F",
        format_table(
            ["cache_MB", "true qi stats", "learned from 10%"],
            rows,
            title=f"Figure 3(f): learning qi ({UNMERGED} unmerged terms)",
        ),
    )
    for (_, t), (_, l) in zip(true_series, learned_series):
        assert abs(l - t) < max(0.3, 0.3 * t)


def test_fig3g_learned_document_stats(benchmark, workload, emit):
    def run():
        learned = WorkloadStats(
            ti=prefix_term_frequencies(workload.corpus, LEARN_FRACTION),
            qi=workload.stats.qi,
        )
        return _panel(workload, "ti", learned)

    true_series, learned_series = once(benchmark, run)
    rows = [
        (size >> 20, round(t, 3), round(l, 3))
        for (size, t), (_, l) in zip(true_series, learned_series)
    ]
    emit(
        "FIG3G",
        format_table(
            ["cache_MB", "true ti stats", "learned from 10%"],
            rows,
            title=f"Figure 3(g): learning ti ({UNMERGED} unmerged terms)",
        ),
    )
    for (_, t), (_, l) in zip(true_series, learned_series):
        assert abs(l - t) < max(0.3, 0.3 * t)
