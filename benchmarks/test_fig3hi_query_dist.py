"""FIG3H/FIG3I — Per-query cost distributions under uniform merging.

Paper: Figures 3(h) and 3(i) (Section 3.4).  Merging "slows down the
shortest queries the most ... while the long running queries are
comparatively unaffected": the cumulative cost distribution's cheap end
shifts right (3(h)), and slowdown against cost percentile falls from ~4x
for the cheapest 20% to no visible slowdown for the longest-running half
(3(i), 512 MB cache).
"""

from conftest import once

from repro.simulate.merge_sim import figure3h, figure3i
from repro.simulate.report import format_table

CACHE_SIZES = [1 << 22, 1 << 23, 1 << 26]
PERCENTILES = list(range(0, 100, 10))


def test_fig3h_cumulative_query_cost(benchmark, workload, emit):
    queries = [q.term_ids for q in workload.queries]
    dist = once(
        benchmark,
        lambda: figure3h(queries, workload.stats, cache_sizes_bytes=CACHE_SIZES),
    )
    labels = list(dist.sorted_costs)
    rows = [
        (pct, *(round(dist.percentile(label, pct), 0) for label in labels))
        for pct in (10, 30, 50, 70, 90, 99)
    ]
    emit(
        "FIG3H",
        format_table(
            ["percentile"] + labels,
            rows,
            title="Figure 3(h): per-query cost (posting scans) at percentiles",
        ),
    )
    # Cheap queries inflate under small caches; the expensive tail holds.
    small_cache = f"{CACHE_SIZES[0] >> 20} MB"
    assert dist.percentile(small_cache, 10) >= dist.percentile("unmerged", 10)
    assert dist.percentile(small_cache, 99) <= dist.percentile("unmerged", 99) * 5


def test_fig3i_slowdown_by_percentile(benchmark, workload, emit):
    queries = [q.term_ids for q in workload.queries]
    series = once(
        benchmark,
        lambda: figure3i(
            queries,
            workload.stats,
            cache_size_bytes=CACHE_SIZES[-1],
            percentiles=PERCENTILES,
        ),
    )
    emit(
        "FIG3I",
        format_table(
            ["cost percentile", "mean slowdown"],
            [(p, round(s, 2)) for p, s in series],
            title=(
                "Figure 3(i): query slowdown vs cost percentile "
                f"({CACHE_SIZES[-1] >> 20} MB cache)"
            ),
        ),
    )
    slowdowns = dict(series)
    # Cheapest decile suffers most; longest-running half is untouched.
    assert slowdowns[0] >= slowdowns[50] >= 1.0
    assert slowdowns[50] < 1.5
    assert slowdowns[90] < 1.25
