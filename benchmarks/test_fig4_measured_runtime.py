"""FIG4 — Measured workload run-time ratios (experimental validation).

Paper: Figure 4 (Section 3.5).  Uniform merging implemented in a real
engine (IBM Trevi), timed on a 1% sample of the query log: the measured
merged/unmerged run-time ratio is "quantitatively similar" to the
simulated Figure 3(e) '0 term' curve.

Here the engine is our scan path timed with ``perf_counter``; the cross
check is measured ratio vs the analytic Q ratio at each cache size.
"""

from conftest import once

from repro.core.merge import UniformHashMerge, lists_for_cache
from repro.core.cost_model import cost_ratio
from repro.simulate.report import format_table
from repro.simulate.runtime import figure4_sweep

CACHE_SIZES = [1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26]
SAMPLE_FRACTION = 0.01


def test_fig4_measured_runtime(benchmark, workload, emit):
    sample = workload.query_log.sample_queries(SAMPLE_FRACTION, seed=4)
    if len(sample) < 30:
        sample = workload.queries[:200]

    def run():
        return figure4_sweep(
            workload.documents, sample, cache_sizes_bytes=CACHE_SIZES
        )

    measured = once(benchmark, run)
    simulated = []
    for cache_bytes in CACHE_SIZES:
        num_lists = lists_for_cache(cache_bytes, 8192)
        assignment = UniformHashMerge(num_lists).assign(workload.vocabulary_size)
        simulated.append(cost_ratio(assignment, workload.stats))
    rows = [
        (size >> 20, round(m, 3), round(s, 3))
        for (size, m), s in zip(measured, simulated)
    ]
    emit(
        "FIG4",
        format_table(
            ["cache_MB", "measured ratio", "simulated Q ratio"],
            rows,
            title=(
                "Figure 4: measured run-time ratio vs simulation "
                f"({len(sample)} sampled queries)"
            ),
        ),
    )
    # Quantitative similarity: within a small constant factor everywhere,
    # and both trend downward with cache size.
    for (_, m), s in zip(measured, simulated):
        assert m < max(3.0, 3.0 * s)
    measured_ratios = [m for _, m in measured]
    assert measured_ratios[0] >= measured_ratios[-1] * 0.8
