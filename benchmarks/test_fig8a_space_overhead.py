"""FIG8A — Space overhead of the jump index.

Paper: Figure 8(a) (Section 4.5).  Analytic, at the paper's exact
parameters (N = 2^32, 4-byte pointers, 8-byte postings): overhead =
pointer bytes / posting bytes per block, for B in {2..128} and L in
{4, 8, 16, 32} KB.  Reference point: "For B = 32 and L = 8 KB, a jump
[index] adds 11% space overhead."

This benchmark reproduces the paper's numbers exactly (no scaling).
"""

from conftest import once

from repro.core.space import disjunctive_slowdown, space_overhead
from repro.simulate.report import format_table

BRANCHINGS = [2, 4, 8, 16, 32, 64, 128]
BLOCK_SIZES = [4096, 8192, 16384, 32768]


def test_fig8a_space_overhead(benchmark, emit):
    def run():
        return {
            (block, b): space_overhead(block, b)
            for block in BLOCK_SIZES
            for b in BRANCHINGS
        }

    table = once(benchmark, run)
    rows = [
        (b, *(round(100 * table[(block, b)], 1) for block in BLOCK_SIZES))
        for b in BRANCHINGS
    ]
    emit(
        "FIG8A",
        format_table(
            ["B"] + [f"L={block // 1024}K %" for block in BLOCK_SIZES],
            rows,
            title="Figure 8(a): jump-index space overhead (N=2^32)",
        ),
    )
    # The paper's quoted reference points.
    assert 0.10 < table[(8192, 32)] < 0.13          # "11% for B=32, L=8K"
    assert 0.013 < table[(8192, 2)] < 0.017         # "1.5% for B=2"
    assert disjunctive_slowdown(8192, 32) == table[(8192, 32)]
    # Monotone in B at fixed L; monotone decreasing in L at fixed B.
    for block in BLOCK_SIZES:
        col = [table[(block, b)] for b in BRANCHINGS]
        assert col == sorted(col)
    for b in BRANCHINGS:
        row = [table[(block, b)] for block in BLOCK_SIZES]
        assert row == sorted(row, reverse=True)
