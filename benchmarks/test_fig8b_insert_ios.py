"""FIG8B — I/Os per inserted document with jump indexes, vs cache size.

Paper: Figure 8(b) (Section 4.5).  1M documents into 32,768 uniformly
merged lists with block jump indexes (L = 8 KB), B in {2, 32, 64}, with
the tail-path memory optimization.  Higher B sets more pointers and
costs more I/O at small caches; "the curves level off eventually as the
cache size increases", converging near 1.1 I/Os per document — "close to
the 1 I/O per document required to just append the document IDs".

Scaled: fewer/smaller lists and blocks (see module constants) keep the
lists many blocks deep so pointer traffic is exercised; cache sizes are
expressed in blocks around the number of merged lists.
"""

from conftest import once

from repro.simulate.jump_sim import insert_ios_sweep
from repro.simulate.report import format_table

NUM_LISTS = 32
BLOCK_SIZE = 1024
MAX_DOC_BITS = 16
BRANCHINGS = [None, 2, 32, 64]
CACHE_BLOCKS = [32, 48, 64, 96, 128, 256, 512, 1024]


def test_fig8b_insert_ios(benchmark, workload, emit):
    docs = workload.documents

    def run():
        return insert_ios_sweep(
            docs,
            num_lists=NUM_LISTS,
            branchings=BRANCHINGS,
            cache_block_counts=CACHE_BLOCKS,
            block_size=BLOCK_SIZE,
            max_doc_bits=MAX_DOC_BITS,
        )

    sweep = once(benchmark, run)

    def label(branching):
        return "append-only" if branching is None else f"B={branching}"

    rows = [
        (
            cache,
            *(round(dict(sweep[b])[cache], 2) for b in BRANCHINGS),
        )
        for cache in CACHE_BLOCKS
    ]
    emit(
        "FIG8B",
        format_table(
            ["cache_blocks"] + [label(b) for b in BRANCHINGS],
            rows,
            title=(
                "Figure 8(b): I/Os per inserted document "
                f"({NUM_LISTS} merged lists, {BLOCK_SIZE} B blocks)"
            ),
        ),
    )
    # Shapes: monotone decline per curve; B=64 >= B=32 >= B=2 at the
    # smallest cache; convergence toward the append-only reference.
    for branching in BRANCHINGS:
        ios = [v for _, v in sweep[branching]]
        assert ios == sorted(ios, reverse=True), branching
    smallest = CACHE_BLOCKS[0]
    assert dict(sweep[64])[smallest] >= dict(sweep[32])[smallest] * 0.9
    assert dict(sweep[32])[smallest] > dict(sweep[2])[smallest]
    # Convergence: each jump-index curve collapses by an order of
    # magnitude from its thrashing start, landing within a small factor
    # of the append-only reference (pointer maintenance is the residue;
    # its share shrinks with the paper's larger 8 KB blocks).
    reference = dict(sweep[None])[CACHE_BLOCKS[-1]]
    for branching in (2, 32, 64):
        start = dict(sweep[branching])[smallest]
        converged = dict(sweep[branching])[CACHE_BLOCKS[-1]]
        assert converged < start / 4
        assert converged < 8 * max(reference, 0.1)
