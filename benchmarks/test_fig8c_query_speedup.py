"""FIG8C — Conjunctive query speedup vs number of keywords.

Paper: Figure 8(c) (Section 4.5).  Speedup = blocks read by a
scan-merge join over merged lists (no jump index) / blocks read by a
zigzag join, for B in {2, 32, 64}, plus the "unmerged + per-list B+
tree" ideal.  Shape: ~10% *slowdown* at 2 keywords (jump-pointer space
overhead; equal-size merged lists make the join a scan), rising smoothly
to ~3x at 7 keywords; the ideal is faster still, with jump indexes
"within a factor of 1.4 of the theoretical maximum" at the paper's
scale.
"""

from conftest import once

from repro.simulate.jump_sim import query_speedup_sweep
from repro.simulate.report import format_table

NUM_LISTS = 16
BLOCK_SIZE = 4096
MAX_DOC_BITS = 16
BRANCHINGS = (2, 32, 64)
TERM_COUNTS = (2, 3, 4, 5, 6, 7)
QUERIES_PER_COUNT = 12


def test_fig8c_query_speedup(benchmark, workload, emit):
    queries = {
        n: workload.queries_with_terms(n, limit=QUERIES_PER_COUNT)
        for n in TERM_COUNTS
    }

    def run():
        return query_speedup_sweep(
            workload.documents,
            queries,
            workload.stats.ti,
            num_lists=NUM_LISTS,
            branchings=BRANCHINGS,
            block_size=BLOCK_SIZE,
            max_doc_bits=MAX_DOC_BITS,
        )

    result = once(benchmark, run)
    labels = [f"B={b}" for b in BRANCHINGS] + ["unmerged"]
    rows = [
        (n, *(round(dict(result.series[label])[n], 2) for label in labels))
        for n in TERM_COUNTS
    ]
    emit(
        "FIG8C",
        format_table(
            ["terms in query"] + labels,
            rows,
            title=(
                "Figure 8(c): conjunctive query speedup over scan-merge "
                f"({NUM_LISTS} merged lists, {BLOCK_SIZE} B blocks)"
            ),
        ),
    )
    for b in BRANCHINGS:
        speedups = dict(result.series[f"B={b}"])
        # Rising with keyword count; crossover near 2 keywords.
        assert speedups[7] > speedups[2]
        assert speedups[7] > 1.5
        assert speedups[2] < 1.3
    # The paper's 2-keyword slowdown appears for the high-overhead Bs.
    assert dict(result.series["B=64"])[2] < 1.05
    # The unmerged ideal dominates every jump-index configuration.
    for n in TERM_COUNTS:
        ideal = dict(result.series["unmerged"])[n]
        assert all(ideal >= dict(result.series[f"B={b}"])[n] for b in BRANCHINGS)
