"""SEC4-GHT — The GHT-join argument of Section 4, quantified.

The paper rejects building a GHT per posting list for joins: "GHTs only
support exact-match lookups and have poor locality due to the use of
hashing.  A GHT-based join would be much slower than a zigzag join on
sorted posting lists, especially for roughly equal sized lists."

This benchmark joins pairs of posting lists three ways — zigzag with a
block jump index, zigzag with per-term B+ trees, and GHT probing — and
reports node/block reads per join for equal-sized and skewed pairs.
"""

from conftest import once

from repro.baselines.bplus_tree import BPlusTree
from repro.baselines.ght import GeneralizedHashTree, ght_join
from repro.search.join import TreeCursor, zigzag
from repro.simulate.report import format_table


def _join_costs(list_a, list_b, *, ght_width=16, fanout=64):
    """Blocks/nodes read to intersect two sorted ID lists, per method."""
    # B+ tree zigzag (the sorted-order competitor).
    tree_a, tree_b = BPlusTree(fanout=fanout), BPlusTree(fanout=fanout)
    for v in list_a:
        tree_a.insert(v)
    for v in list_b:
        tree_b.insert(v)
    ca, cb = TreeCursor(tree_a), TreeCursor(tree_b)
    result = zigzag(ca, cb)
    tree_cost = ca.blocks_read() + cb.blocks_read()
    # GHT: build on the longer list, probe with the shorter.
    longer, shorter = (list_a, list_b) if len(list_a) >= len(list_b) else (list_b, list_a)
    ght = GeneralizedHashTree(width=ght_width)
    for v in longer:
        ght.insert(v)
    ght.nodes_read = 0
    ght_result = ght_join(shorter, ght)
    assert sorted(ght_result) == result
    return tree_cost, ght.nodes_read, len(result)


def test_ght_join_comparison(benchmark, emit):
    def run():
        rows = []
        # Equal-sized lists: the paper's worst case for GHT joins.
        equal_a = list(range(0, 30000, 3))
        equal_b = list(range(0, 30000, 4))
        tree_cost, ght_cost, matches = _join_costs(equal_a, equal_b)
        rows.append(("equal (10k vs 7.5k)", matches, tree_cost, ght_cost))
        # Skewed lists: GHT's least-bad case (few probes), where sorted
        # zigzag also collapses to l1·log(l2).
        skew_a = list(range(0, 30000, 300))
        skew_b = list(range(0, 30000, 2))
        tree_cost, ght_cost, matches = _join_costs(skew_a, skew_b)
        rows.append(("skewed (100 vs 15k)", matches, tree_cost, ght_cost))
        return rows

    rows = once(benchmark, run)
    emit(
        "SEC4-GHT",
        format_table(
            ["list pair", "matches", "zigzag+B+tree reads", "GHT probe reads"],
            rows,
            title="Section 4: zigzag join vs GHT-based join (node reads)",
        ),
    )
    equal, skewed = rows
    # "Much slower ... especially for roughly equal sized lists".
    assert equal[3] > 2 * equal[2]
    # Even in the skewed case the sorted join is no worse.
    assert skewed[3] >= skewed[2] * 0.5
