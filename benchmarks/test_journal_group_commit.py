"""JRN-GROUPCOMMIT — fsync amortization of journal group commit.

Not a paper figure: this benchmark characterizes the durability layer
the way the paper characterizes everything else — in deterministic
operation counts rather than wall clock.  Fsync latency dominates
durable ingest (one device round trip per barrier), so the honest
scaling metric is *fsyncs per committed record*, counted exactly via
the fault-injection layer's call counters.

For a fixed journaled workload (1 create + N appends, fsync mode on),
each group-commit size reports journal writes, flushes, fsyncs
(including the final barrier at close), and the resulting amortization
factor.  Writes and flushes are invariant across group sizes — group
commit batches only the fsync barrier, never the log writes — which the
table makes visible.
"""

from conftest import once

from repro.simulate.report import format_table
from repro.worm.faults import FaultInjectingWormDevice, FaultPlan
from repro.worm.persistent import scan_journal

RECORDS = 256  # 1 create + 255 appends; scale-independent on purpose
GROUP_SIZES = (1, 4, 16, 64, 256)


def _run_workload(path, group_commit):
    plan = FaultPlan()
    device = FaultInjectingWormDevice(
        str(path),
        plan=plan,
        block_size=4096,
        fsync=True,
        group_commit=group_commit,
    )
    worm_file = device.create_file("records")
    for i in range(RECORDS - 1):
        worm_file.append_record(b"record %d" % i)
    device.close()
    report = scan_journal(str(path))
    assert report.ok and report.records == RECORDS
    return plan.counts


def test_group_commit_fsync_amortization(benchmark, emit, tmp_path):
    def run():
        rows = []
        for group in GROUP_SIZES:
            counts = _run_workload(tmp_path / f"gc{group}.worm", group)
            fsyncs = counts.get("fsync", 0)
            rows.append(
                (
                    group,
                    counts["write"],
                    counts["flush"],
                    fsyncs,
                    f"{RECORDS / fsyncs:.1f}x",
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "JRN-GROUPCOMMIT",
        format_table(
            ["group size", "writes", "flushes", "fsyncs", "records/fsync"],
            rows,
            title=(
                f"Journal group commit ({RECORDS} records, fsync mode): "
                "barriers amortize, log writes do not"
            ),
        ),
    )
    # One fsync per record at group size 1; a single tail barrier at 256.
    assert rows[0][3] == RECORDS
    assert rows[-1][3] == 1
