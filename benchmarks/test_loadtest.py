"""LOADTEST — whole-system throughput and tail latency under mixed load.

Not a paper figure: this benchmark exercises the assembled system the
way Section 7's evaluation does — concurrent clients driving a mixed
search/ingest stream — rather than one mechanism in isolation.  The
load harness (:mod:`repro.loadtest`) runs a short closed-loop burst
against a sharded in-memory engine at the benchmark scale's document
count and reports QPS, ingest throughput, and the search latency tail.

Every number here is wall-clock, so ``check_expectations.py`` compares
the report for presence only (``LOADTEST.txt`` is in its
``NONDETERMINISTIC`` set); the regression gate for these metrics is the
tolerance-banded snapshot comparison in CI's ``loadtest-smoke`` job.
"""

from conftest import bench_scale, once

from repro.loadtest import LoadTestConfig, run_load_test
from repro.search.engine import EngineConfig
from repro.sharding import ShardedSearchEngine
from repro.simulate.report import format_table

NUM_SHARDS = 2
CLIENTS = 4
DURATION = 2.0
CONFIG = EngineConfig(num_lists=128, block_size=4096)


def test_loadtest(benchmark, emit):
    scale = bench_scale()
    config = LoadTestConfig(
        clients=CLIENTS,
        duration=DURATION,
        mix=0.9,
        seed=42,
        preload_docs=min(scale.num_docs, 2_000),
        ingest_pool=500,
        vocabulary_size=min(scale.vocabulary_size, 5_000),
    )

    def run():
        engine = ShardedSearchEngine(CONFIG, num_shards=NUM_SHARDS)
        try:
            return run_load_test(engine, config)
        finally:
            engine.close()

    result = once(benchmark, run)

    search = result.search_latency
    ingest = result.ingest_latency
    rows = [
        (
            "search",
            result.searches,
            f"{result.qps:.1f}",
            f"{search.p50 * 1e3:.2f}",
            f"{search.p95 * 1e3:.2f}",
            f"{search.p99 * 1e3:.2f}",
        ),
        (
            "ingest",
            result.ingests,
            f"{result.ingest_docs_per_s:.1f}",
            f"{ingest.p50 * 1e3:.2f}",
            f"{ingest.p95 * 1e3:.2f}",
            f"{ingest.p99 * 1e3:.2f}",
        ),
    ]
    table = format_table(
        ("op", "count", "per second", "p50 (ms)", "p95 (ms)", "p99 (ms)"),
        rows,
    )
    emit(
        "LOADTEST",
        table
        + f"\n{result.config.clients} clients, closed loop, "
        f"{result.shards} shards, {result.wall_seconds:.2f}s wall, "
        f"ingest {result.ingest_mb_per_s:.3f} MB/s, "
        f"errors {result.errors}",
    )

    assert result.errors == 0, result.error_messages
    assert result.searches > 0 and result.ingests > 0
    assert search.p50 <= search.p95 <= search.p99
