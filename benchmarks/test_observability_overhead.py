"""OBS-OVERHEAD — instrumentation cost on the sharded query path.

Not a paper figure: this benchmark bounds the price of the observability
layer.  The same archive is queried twice — once with the default
:class:`~repro.observability.metrics.MetricsRegistry` (every stage
histogram, seek/block counter, and shard latency series live) and once
with a :class:`~repro.observability.metrics.NullMetricsRegistry`
(instrumentation compiled out via the ``_metrics_on`` guards).  Both
configurations run the identical query list, interleaved round by round
so ambient machine noise hits them symmetrically, and each is scored by
its best (minimum) round — the standard estimator for "the code's cost
without the scheduler's".

The report is wall-clock and therefore compared for presence only by
``check_expectations.py``; the enforced claim is the assertion at the
bottom: metered must stay within ``MAX_OVERHEAD`` of unmetered.
"""

from time import perf_counter

from conftest import once

from repro.observability import NullMetricsRegistry
from repro.search.engine import EngineConfig
from repro.sharding import ShardedSearchEngine
from repro.simulate.report import format_table

MAX_DOCS = 600
NUM_QUERIES = 16
NUM_SHARDS = 2
ROUNDS = 7
REPEATS = 3  # query-list repetitions inside one timed round
TOP_K = 10
MAX_OVERHEAD = 0.05
CONFIG = EngineConfig(num_lists=64, block_size=4096)


def _texts(workload):
    docs = workload.documents[:MAX_DOCS]
    return [
        " ".join(
            f"t{tid}"
            for tid, count in zip(doc.term_ids, doc.term_counts)
            for _ in range(count)
        )
        for doc in docs
    ]


def _queries(workload):
    picked = [q for q in workload.queries if 1 <= q.num_terms <= 3]
    return [
        " ".join(f"t{tid}" for tid in q.term_ids)
        for q in picked[:NUM_QUERIES]
    ]


def _build(texts, metrics=None):
    engine = ShardedSearchEngine(CONFIG, num_shards=NUM_SHARDS, metrics=metrics)
    engine.index_batch(texts)
    return engine


def _round_seconds(engine, queries):
    start = perf_counter()
    for _ in range(REPEATS):
        for query in queries:
            engine.search(query, top_k=TOP_K)
    return perf_counter() - start


def test_observability_overhead(benchmark, workload, emit):
    texts = _texts(workload)
    queries = _queries(workload)

    def run():
        metered = _build(texts)
        unmetered = _build(texts, metrics=NullMetricsRegistry())
        # results must agree — the null registry changes cost, not answers
        for query in queries:
            assert [r.doc_id for r in metered.search(query, top_k=TOP_K)] == [
                r.doc_id for r in unmetered.search(query, top_k=TOP_K)
            ]
        metered_rounds = []
        unmetered_rounds = []
        for _ in range(ROUNDS):
            metered_rounds.append(_round_seconds(metered, queries))
            unmetered_rounds.append(_round_seconds(unmetered, queries))
        metered.close()
        unmetered.close()
        best_metered = min(metered_rounds)
        best_unmetered = min(unmetered_rounds)
        overhead = best_metered / best_unmetered - 1.0
        families = len(metered.metrics.families())
        return best_metered, best_unmetered, overhead, families

    best_metered, best_unmetered, overhead, families = once(benchmark, run)

    queries_per_round = NUM_QUERIES * REPEATS
    rows = [
        (
            "metered",
            families,
            f"{best_metered * 1e3:.2f}",
            f"{best_metered / queries_per_round * 1e6:.1f}",
        ),
        (
            "unmetered",
            0,
            f"{best_unmetered * 1e3:.2f}",
            f"{best_unmetered / queries_per_round * 1e6:.1f}",
        ),
    ]
    table = format_table(
        ("registry", "families", "best round (ms)", "per query (us)"), rows
    )
    emit(
        "OBS-OVERHEAD",
        table
        + f"\nmeasured overhead: {overhead * 100:+.2f}%"
        + f" (bound: <{MAX_OVERHEAD * 100:.0f}%)",
    )

    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead * 100:.2f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        f"(metered {best_metered * 1e3:.2f} ms vs "
        f"unmetered {best_unmetered * 1e3:.2f} ms per round)"
    )
