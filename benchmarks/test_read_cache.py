"""READ-CACHE — hot-query speedup from the read-path cache hierarchy.

Not a paper figure: this benchmark prices the session read cache on the
workload it is built for — a Zipf-skewed query stream where a few hot
queries dominate.  The same archive is queried with the cache off and
once per eviction policy (LRU, 2Q, segmented LRU); every configuration
runs the identical request stream, interleaved round by round so machine
noise hits them symmetrically, and each is scored by its best (minimum)
round.

The report is wall-clock and therefore compared for presence only by
``check_expectations.py``; the enforced claim is the assertion at the
bottom: every policy must answer the hot stream at least ``MIN_SPEEDUP``
times faster than the uncached engine while returning identical results.
"""

from time import perf_counter

from conftest import once

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.simulate.report import format_table
from repro.worm.cache import READ_CACHE_POLICIES

MAX_DOCS = 600
NUM_QUERIES = 12
ROUNDS = 7
HOT_WEIGHT = 24  # stream length contributed by the hottest query
TOP_K = 10
MIN_SPEEDUP = 2.0
BASE_CONFIG = EngineConfig(num_lists=64, block_size=4096, branching=None)

POLICIES = sorted(READ_CACHE_POLICIES)


def _texts(workload):
    docs = workload.documents[:MAX_DOCS]
    return [
        " ".join(
            f"t{tid}"
            for tid, count in zip(doc.term_ids, doc.term_counts)
            for _ in range(count)
        )
        for doc in docs
    ]


def _hot_stream(workload):
    """A Zipf-skewed request stream: query at rank r repeats ~1/r.

    The stream is multi-term conjunctive queries — the expensive
    retrieval shape (full join over every term's list, small result set)
    that a hot-query cache pays for.  Ranking always re-runs on cache
    hits, so highly selective queries show the retrieval saving cleanly.
    """
    picked = [q for q in workload.queries if 2 <= q.num_terms <= 3]
    queries = [
        " ".join(f"+t{tid}" for tid in q.term_ids)
        for q in picked[:NUM_QUERIES]
    ]
    stream = []
    for rank, query in enumerate(queries):
        stream.extend([query] * max(1, HOT_WEIGHT // (rank + 1)))
    return queries, stream


def _build(texts, policy=None):
    config = (
        BASE_CONFIG
        if policy is None
        else EngineConfig(
            num_lists=BASE_CONFIG.num_lists,
            block_size=BASE_CONFIG.block_size,
            branching=BASE_CONFIG.branching,
            read_cache=True,
            cache_policy=policy,
        )
    )
    engine = TrustworthySearchEngine(config)
    engine.index_batch(texts)
    return engine


def _round_seconds(engine, stream):
    start = perf_counter()
    for query in stream:
        engine.search(query, top_k=TOP_K)
    return perf_counter() - start


def test_read_cache_speedup(benchmark, workload, emit):
    texts = _texts(workload)
    queries, stream = _hot_stream(workload)

    def run():
        uncached = _build(texts)
        cached = {policy: _build(texts, policy) for policy in POLICIES}
        # results must agree — the cache changes cost, never answers
        for query in queries:
            expected = [
                (r.doc_id, r.score)
                for r in uncached.search(query, top_k=TOP_K)
            ]
            for policy, engine in cached.items():
                got = [
                    (r.doc_id, r.score)
                    for r in engine.search(query, top_k=TOP_K)
                ]
                assert got == expected, f"{policy} diverged on {query!r}"
        rounds = {name: [] for name in ["off", *POLICIES]}
        for _ in range(ROUNDS):
            rounds["off"].append(_round_seconds(uncached, stream))
            for policy, engine in cached.items():
                rounds[policy].append(_round_seconds(engine, stream))
        best = {name: min(times) for name, times in rounds.items()}
        hit_rates = {
            policy: cached[policy].read_cache_stats()["results"]["hit_rate"]
            for policy in POLICIES
        }
        return best, hit_rates

    best, hit_rates = once(benchmark, run)

    rows = [("off", f"{best['off'] * 1e3:.2f}", "1.00x", "-")]
    speedups = {}
    for policy in POLICIES:
        speedups[policy] = best["off"] / best[policy]
        rows.append(
            (
                policy,
                f"{best[policy] * 1e3:.2f}",
                f"{speedups[policy]:.2f}x",
                f"{hit_rates[policy] * 100:.1f}%",
            )
        )
    table = format_table(
        ("cache", "best round (ms)", "speedup", "result hit rate"), rows
    )
    emit(
        "READ-CACHE",
        table
        + f"\nstream: {len(stream)} requests over {NUM_QUERIES} distinct "
        f"queries (Zipf), {MAX_DOCS}-doc archive"
        + f"\nrequired speedup: >={MIN_SPEEDUP:.0f}x for every policy",
    )

    for policy in POLICIES:
        assert speedups[policy] >= MIN_SPEEDUP, (
            f"{policy}: {speedups[policy]:.2f}x speedup is below the "
            f"{MIN_SPEEDUP:.0f}x floor "
            f"(cached {best[policy] * 1e3:.2f} ms vs "
            f"uncached {best['off'] * 1e3:.2f} ms per round)"
        )
