"""SHARD-SCALING — query fan-out and batched-ingest scaling across shards.

Not a paper figure: this benchmark characterizes the sharding layer the
way the paper characterizes everything else — in device I/O counts and
posting entries scanned, which are deterministic — and reports wall
clock only informationally (pure-Python threads share the GIL, so
entry-scan critical path, not wall clock, is the honest scaling metric).

Reported series:

* **query scaling** — for K in {1, 2, 4}: total posting entries scanned
  per query vs the critical-path entries (slowest shard).  The modeled
  throughput gain is their ratio; on a balanced archive it approaches K.
* **ingest batching** — for a bounded block cache: device writes+reads
  of one-document-at-a-time ingest vs batched ingest on the same K=4
  archive.  Batching groups tail-block appends per merged list, so it
  can only reduce churn.

Also cross-checks, per query, that every K returns exactly the K=1
result set (the equivalence property, asserted here on the benchmark
workload itself).
"""

from conftest import once

from repro.search.engine import EngineConfig
from repro.search.profiling import profile_sharded_query
from repro.sharding import ShardedSearchEngine
from repro.simulate.report import format_table

SHARD_COUNTS = (1, 2, 4)
MAX_DOCS = 2_000
NUM_QUERIES = 24
TOP_K = 10
CONFIG = EngineConfig(num_lists=64, block_size=4096, branching=None)
BOUNDED_CACHE = EngineConfig(
    num_lists=64, block_size=4096, branching=None, cache_blocks=8
)


def _texts(workload):
    docs = workload.documents[:MAX_DOCS]
    return [
        " ".join(
            f"t{tid}"
            for tid, count in zip(doc.term_ids, doc.term_counts)
            for _ in range(count)
        )
        for doc in docs
    ]


def _queries(workload):
    picked = [q for q in workload.queries if 1 <= q.num_terms <= 3]
    return [
        " ".join(f"t{tid}" for tid in q.term_ids)
        for q in picked[:NUM_QUERIES]
    ]


def test_sharded_query_scaling(benchmark, workload, emit):
    texts = _texts(workload)
    queries = _queries(workload)

    def run():
        rows = []
        baseline = None
        for num_shards in SHARD_COUNTS:
            engine = ShardedSearchEngine(CONFIG, num_shards=num_shards)
            with engine:
                engine.index_batch(texts)
                total = 0
                critical = 0
                results = []
                for query in queries:
                    profile = profile_sharded_query(engine, query)
                    total += profile.total_entries_scanned
                    critical += profile.critical_path_entries
                    results.append(
                        frozenset(
                            r.doc_id
                            for r in engine.search(query, top_k=TOP_K)
                        )
                    )
                if baseline is None:
                    baseline = results
                rows.append(
                    {
                        "shards": num_shards,
                        "total_entries": total,
                        "critical_entries": critical,
                        "gain": total / critical if critical else 1.0,
                        "matches_single_shard": results == baseline,
                    }
                )
        return rows

    rows = once(benchmark, run)
    emit(
        "SHARD-SCALING",
        format_table(
            ["shards", "entries total", "critical path", "modeled gain"],
            [
                (
                    r["shards"],
                    r["total_entries"],
                    r["critical_entries"],
                    round(r["gain"], 2),
                )
                for r in rows
            ],
            title=(
                f"Sharded query scaling ({len(texts)} docs, "
                f"{len(queries)} queries, {CONFIG.num_lists} merged lists)"
            ),
        ),
    )
    by_shards = {r["shards"]: r for r in rows}
    # Every K answers exactly like the single engine.
    assert all(r["matches_single_shard"] for r in rows)
    # Fan-out work stays in the same ballpark: each shard hashes its own
    # term IDs into merged lists, so list composition (and hence entries
    # scanned) shifts a little with K, but sharding must not inflate the
    # aggregate scan materially.
    assert (
        by_shards[4]["total_entries"]
        <= 1.5 * by_shards[1]["total_entries"]
    )
    # The acceptance bar: >= 1.5x modeled throughput gain at 4 shards.
    assert by_shards[4]["gain"] >= 1.5
    assert by_shards[2]["gain"] > by_shards[1]["gain"]


def test_batched_ingest_io(benchmark, workload, emit):
    texts = _texts(workload)

    def run():
        unbatched = ShardedSearchEngine(BOUNDED_CACHE, num_shards=4)
        with unbatched:
            for text in texts:
                unbatched.index_document(text)
            one_by_one = {
                "writes": sum(
                    s.store.io.block_writes for s in unbatched.shards
                ),
                "reads": sum(
                    s.store.io.block_reads for s in unbatched.shards
                ),
            }
        batched = ShardedSearchEngine(
            BOUNDED_CACHE, num_shards=4, batch_size=128
        )
        with batched:
            for start in range(0, len(texts), 128):
                batched.index_batch(texts[start:start + 128])
            grouped = {
                "writes": sum(
                    s.store.io.block_writes for s in batched.shards
                ),
                "reads": sum(
                    s.store.io.block_reads for s in batched.shards
                ),
            }
        return one_by_one, grouped

    one_by_one, grouped = once(benchmark, run)
    emit(
        "SHARD-INGEST",
        format_table(
            ["ingest mode", "block writes", "block reads"],
            [
                ("one document at a time", one_by_one["writes"],
                 one_by_one["reads"]),
                ("batched (128/batch)", grouped["writes"],
                 grouped["reads"]),
            ],
            title=(
                f"Batched vs unbatched ingest I/O ({len(texts)} docs, "
                f"4 shards, {BOUNDED_CACHE.cache_blocks}-block cache)"
            ),
        ),
    )
    # Batching groups consecutive appends per merged list's tail block,
    # so under a bounded cache it never costs more I/O — and the same
    # counting rules apply (Figure 2 / 8(b) semantics preserved).
    assert grouped["writes"] <= one_by_one["writes"]
    assert grouped["reads"] <= one_by_one["reads"]
