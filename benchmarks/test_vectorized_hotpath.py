"""VEC-* — the vectorized read path priced against its scalar ancestors.

Not a paper figure: these benchmarks gate the PR-8 hot-path rework the
way READ-CACHE gates the cache hierarchy — wall-clock reports are
compared for presence only, and the enforced claims are the in-test
floors at the bottom of each benchmark.

* **VEC-DECODE** — columnar posting-block decode
  (:func:`repro.core.vecdecode.decode_columns`) vs the scalar
  per-posting ``struct`` loop, on block-sized payloads.  The column
  path reinterprets the whole region in one C-level pass instead of
  allocating one ``Posting`` per entry.
* **VEC-SCORE** — bulk BM25 scoring
  (:meth:`~repro.search.ranking.BM25Scorer.score_candidates`) vs the
  per-document ``score()`` loop on the same candidate sets, asserting
  identical floats first.
* **VEC-SHARD-SCALING** — single-query latency of the thread executor
  vs the process executor on a 4-shard file-backed archive with
  CPU-heavy queries.  Threads serialize matching and scoring behind
  the GIL; processes pay pickling instead.  The floor only applies on
  machines with >= 4 CPUs, and is deliberately lenient — the claim is
  "process fan-out is competitive and scales", not a fixed ratio.

All three are wall-clock and land in ``NONDETERMINISTIC`` in
``check_expectations.py``.
"""

import os
import tempfile
from time import perf_counter

from conftest import once

from repro.core.posting import decode_postings, encode_posting
from repro.core.vecdecode import decode_columns
from repro.search.ranking import BM25Scorer, CollectionStats
from repro.simulate.report import format_table

DECODE_BLOCK_POSTINGS = 512  # a 4 KiB block of 8-byte postings
DECODE_BLOCKS = 200
DECODE_ROUNDS = 9
MIN_DECODE_SPEEDUP = 2.0

SCORE_DOCS = 4_000
SCORE_TERMS = 3
SCORE_ROUNDS = 9
MIN_SCORE_SPEEDUP = 2.0

SHARDS = 4
SHARD_DOCS = 1_200
SHARD_ROUNDS = 5
SHARD_QUERIES_PER_ROUND = 6
# Process fan-out must stay within this factor of the thread executor
# on >=4 CPUs (it should usually win; the lenient bound absorbs CI
# machine noise without letting a real regression through).
MAX_PROCESS_OVER_THREAD = 1.25


# ----------------------------------------------------------------------
# VEC-DECODE
# ----------------------------------------------------------------------
def _payloads():
    payloads = []
    doc = 0
    for block in range(DECODE_BLOCKS):
        chunk = []
        for i in range(DECODE_BLOCK_POSTINGS):
            doc += (i * 7 + block) % 3
            chunk.append(encode_posting(doc, (i * 13 + block) % 4096))
        payloads.append(b"".join(chunk))
    return payloads


def _scalar_decode_round(payloads):
    start = perf_counter()
    total = 0
    for payload in payloads:
        for posting in decode_postings(payload):
            total += posting.doc_id
    return perf_counter() - start, total


def _column_decode_round(payloads):
    start = perf_counter()
    total = 0
    for payload in payloads:
        doc_ids, _term_codes = decode_columns(payload)
        total += sum(doc_ids)
    return perf_counter() - start, total


def test_vectorized_decode(benchmark, emit):
    payloads = _payloads()

    def run():
        scalar_best = float("inf")
        column_best = float("inf")
        for _ in range(DECODE_ROUNDS):
            scalar_seconds, scalar_sum = _scalar_decode_round(payloads)
            column_seconds, column_sum = _column_decode_round(payloads)
            assert scalar_sum == column_sum  # identical decode
            scalar_best = min(scalar_best, scalar_seconds)
            column_best = min(column_best, column_seconds)
        return scalar_best, column_best

    scalar_best, column_best = once(benchmark, run)
    speedup = scalar_best / column_best
    postings = DECODE_BLOCKS * DECODE_BLOCK_POSTINGS
    table = format_table(
        ("decoder", "best round (ms)", "postings/s", "speedup"),
        [
            (
                "scalar struct loop",
                f"{scalar_best * 1e3:.2f}",
                f"{postings / scalar_best:,.0f}",
                "1.00x",
            ),
            (
                "column reinterpret",
                f"{column_best * 1e3:.2f}",
                f"{postings / column_best:,.0f}",
                f"{speedup:.2f}x",
            ),
        ],
    )
    emit(
        "VEC-DECODE",
        table
        + f"\n{DECODE_BLOCKS} blocks x {DECODE_BLOCK_POSTINGS} postings "
        f"per round\nrequired speedup: >={MIN_DECODE_SPEEDUP:.0f}x",
    )
    assert speedup >= MIN_DECODE_SPEEDUP, (
        f"columnar decode {speedup:.2f}x is below the "
        f"{MIN_DECODE_SPEEDUP:.0f}x floor "
        f"({column_best * 1e3:.2f} ms vs {scalar_best * 1e3:.2f} ms)"
    )


# ----------------------------------------------------------------------
# VEC-SCORE
# ----------------------------------------------------------------------
def _scoring_fixture():
    stats = CollectionStats()
    candidates = {}
    for doc_id in range(SCORE_DOCS):
        term_counts = {
            term: 1 + (doc_id + term) % 4 for term in range(SCORE_TERMS)
        }
        stats.add_document(doc_id, term_counts)
        candidates[doc_id] = term_counts
    return BM25Scorer(stats), candidates


def test_vectorized_scoring(benchmark, emit):
    scorer, candidates = _scoring_fixture()

    expected = [
        (doc_id, scorer.score(doc_id, freqs))
        for doc_id, freqs in candidates.items()
    ]
    assert scorer.score_candidates(candidates) == expected  # bit-for-bit

    def run():
        scalar_best = float("inf")
        bulk_best = float("inf")
        for _ in range(SCORE_ROUNDS):
            start = perf_counter()
            for doc_id, freqs in candidates.items():
                scorer.score(doc_id, freqs)
            scalar_best = min(scalar_best, perf_counter() - start)
            start = perf_counter()
            scorer.score_candidates(candidates)
            bulk_best = min(bulk_best, perf_counter() - start)
        return scalar_best, bulk_best

    scalar_best, bulk_best = once(benchmark, run)
    speedup = scalar_best / bulk_best
    table = format_table(
        ("scorer", "best round (ms)", "docs/s", "speedup"),
        [
            (
                "per-doc score()",
                f"{scalar_best * 1e3:.2f}",
                f"{SCORE_DOCS / scalar_best:,.0f}",
                "1.00x",
            ),
            (
                "bulk score_candidates()",
                f"{bulk_best * 1e3:.2f}",
                f"{SCORE_DOCS / bulk_best:,.0f}",
                f"{speedup:.2f}x",
            ),
        ],
    )
    emit(
        "VEC-SCORE",
        table
        + f"\n{SCORE_DOCS} candidates x {SCORE_TERMS} query terms per "
        f"round\nrequired speedup: >={MIN_SCORE_SPEEDUP:.0f}x",
    )
    assert speedup >= MIN_SCORE_SPEEDUP, (
        f"bulk scoring {speedup:.2f}x is below the "
        f"{MIN_SCORE_SPEEDUP:.0f}x floor "
        f"({bulk_best * 1e3:.2f} ms vs {scalar_best * 1e3:.2f} ms)"
    )


# ----------------------------------------------------------------------
# VEC-SHARD-SCALING
# ----------------------------------------------------------------------
def _shard_texts(workload):
    docs = workload.documents[:SHARD_DOCS]
    return [
        " ".join(
            f"t{tid}"
            for tid, count in zip(doc.term_ids, doc.term_counts)
            for _ in range(count)
        )
        for doc in docs
    ]


def _shard_queries(workload):
    # Prefer broad (1-2 term) queries over popular terms: large candidate
    # sets make matching/scoring CPU-heavy, which is what distinguishes
    # GIL-shared threads from independent processes.
    picked = [q for q in workload.queries if 1 <= q.num_terms <= 2]
    return [
        " ".join(f"t{tid}" for tid in q.term_ids)
        for q in picked[:SHARD_QUERIES_PER_ROUND]
    ]


def test_thread_vs_process_shard_scaling(benchmark, workload, emit):
    from repro.cli import open_archive
    from repro.search.engine import EngineConfig

    texts = _shard_texts(workload)
    queries = _shard_queries(workload)

    def run():
        with tempfile.TemporaryDirectory(prefix="repro-vecbench-") as tmp:
            path = os.path.join(tmp, "archive.worm")
            engine, handle = open_archive(
                path,
                create=EngineConfig(
                    num_lists=64, block_size=4096, branching=None
                ),
                shards=SHARDS,
            )
            engine.index_batch(texts)
            handle.close()

            thread_engine, thread_handle = open_archive(path)
            process_engine, process_handle = open_archive(
                path, executor="process"
            )
            try:
                for query in queries:  # identical answers first
                    assert process_engine.search(query, top_k=10) == (
                        thread_engine.search(query, top_k=10)
                    ), query
                thread_best = float("inf")
                process_best = float("inf")
                for _ in range(SHARD_ROUNDS):
                    start = perf_counter()
                    for query in queries:
                        thread_engine.search(query, top_k=10)
                    thread_best = min(thread_best, perf_counter() - start)
                    start = perf_counter()
                    for query in queries:
                        process_engine.search(query, top_k=10)
                    process_best = min(process_best, perf_counter() - start)
            finally:
                thread_handle.close()
                process_handle.close()
        return thread_best, process_best

    thread_best, process_best = once(benchmark, run)
    ratio = process_best / thread_best
    per_query = len(queries)
    table = format_table(
        ("executor", "best round (ms)", "per query (ms)", "vs thread"),
        [
            (
                "thread",
                f"{thread_best * 1e3:.2f}",
                f"{thread_best * 1e3 / per_query:.2f}",
                "1.00x",
            ),
            (
                "process",
                f"{process_best * 1e3:.2f}",
                f"{process_best * 1e3 / per_query:.2f}",
                f"{ratio:.2f}x",
            ),
        ],
    )
    cpus = os.cpu_count() or 1
    gated = cpus >= SHARDS
    emit(
        "VEC-SHARD-SCALING",
        table
        + f"\n{SHARDS} shards, {len(texts)} docs, "
        f"{per_query} queries per round, {cpus} CPUs"
        + (
            f"\nrequired: process <= {MAX_PROCESS_OVER_THREAD:.2f}x thread"
            if gated
            else "\nfloor skipped: fewer CPUs than shards"
        ),
    )
    if gated:
        assert ratio <= MAX_PROCESS_OVER_THREAD, (
            f"process executor at {ratio:.2f}x thread latency exceeds the "
            f"{MAX_PROCESS_OVER_THREAD:.2f}x bound "
            f"({process_best * 1e3:.2f} ms vs {thread_best * 1e3:.2f} ms)"
        )
