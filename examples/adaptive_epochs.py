#!/usr/bin/env python3
"""Epoch adaptation live: the engine re-tunes itself as interest drifts.

Section 3.3's contingency plan, running end to end: a workload whose hot
query terms rotate (news cycles over a stable document base) is fed
through an :class:`~repro.search.epoched.EpochedSearchEngine`. At every
epoch boundary the engine

* learns the previous epoch's most-queried terms and gives them
  dedicated (unmerged) posting lists, and
* re-decides whether the observed query mix justifies jump indexes
  (Section 4.5's rule).

Run:  python examples/adaptive_epochs.py
"""

from repro import EngineConfig, EpochPolicy, EpochedSearchEngine
from repro.workloads.drift import DriftConfig, DriftingWorkload
from repro.workloads.vocabulary import Vocabulary

VOCAB = 400
DOCS_PER_EPOCH = 40


def main() -> None:
    drift = DriftingWorkload(
        DriftConfig(
            vocabulary_size=VOCAB,
            num_epochs=3,
            queries_per_epoch=80,
            hot_pool_size=48,
            drift_stride=16,
            terms_per_query=4,  # conjunctive-heavy: jump indexes pay off
            seed=3,
        )
    )
    vocabulary = Vocabulary(VOCAB)
    engine = EpochedSearchEngine(
        EngineConfig(num_lists=32, branching=8, block_size=512),
        policy=EpochPolicy(
            docs_per_epoch=DOCS_PER_EPOCH,
            unmerged_popular_terms=8,
            conjunctive_share_for_jump=0.3,
            min_terms_for_jump=3,
        ),
    )

    for epoch in drift.epochs():
        print(f"== epoch {epoch.epoch_no} ==")
        hot = [int(t) for t in epoch.qi.argsort()[::-1][:8]]
        hot_words = vocabulary.words(hot)
        print(f"  hot terms this epoch: {hot_words[:5]} ...")
        # Ingest documents built around the epoch's hot topics.
        for i in range(DOCS_PER_EPOCH):
            words = {hot_words[j % len(hot_words)] for j in range(i, i + 3)}
            engine.index_document(" ".join(sorted(words)))
        # The engine observes the epoch's queries (it cannot see the
        # generator's statistics — only what users actually ask).
        for query in epoch.queries:
            engine.search(" ".join(vocabulary.words(query.term_ids)))
        state = engine.current
        print(
            f"  ingested {state.doc_count} docs, observed "
            f"{state.total_queries} queries "
            f"({state.many_keyword_queries} many-keyword)"
        )
        if epoch.epoch_no < 2:
            engine.new_epoch()
            new = engine.current
            merge = type(new.engine._merge).__name__
            jump = (
                f"B={new.engine.config.branching}"
                if new.uses_jump_index
                else "disabled"
            )
            print(
                f"  -> opened epoch {new.epoch_no}: merge={merge}, "
                f"jump index {jump}"
            )

    print("\n== cross-epoch query ==")
    sample_word = vocabulary.word(0)
    hits = engine.search(sample_word, top_k=100)
    epochs_hit = {
        next(
            e.epoch_no
            for e in engine.epochs
            if e.doc_count and e.first_doc_id <= r.doc_id <= e.last_doc_id
        )
        for r in hits
    }
    print(
        f"  '{sample_word}': {len(hits)} documents across epochs "
        f"{sorted(epochs_hit)} — one query, every era of the archive"
    )


if __name__ == "__main__":
    main()
