#!/usr/bin/env python3
"""A records-retention investigation, end to end (the paper's Section 5 story).

Cast:

* **Alice** — a compliance-minded mail gateway: every email is committed
  to WORM and indexed *before* delivery.
* **Mala** — a company insider (with superuser credentials) who, months
  later, regrets one email's existence.  She can run any WORM-legal
  operation: append records, stuff posting lists, crash indexers.
* **Bob** — an investigator with a certified search engine, a target
  time window, and a healthy level of suspicion.

The demo shows (1) why a buffered index would have lost the evidence,
(2) that stuffing the trustworthy index only raises alarms, and (3) that
Bob's time-ranged conjunctive query retrieves the record regardless.

Run:  python examples/compliance_investigation.py
"""

from repro import EngineConfig, TrustworthySearchEngine
from repro.adversary import buffer_wipe_attack, full_engine_audit, posting_stuffing_attack
from repro.baselines.buffered import BufferedInvertedIndex
from repro.errors import TamperDetectedError
from repro.worm.storage import CachedWormStore

#: Nov 1 / Dec 31, 2001 (UTC epoch seconds) — Bob's target window.
NOV_2001, JAN_2002 = 1004572800, 1009843200

EMAILS = [
    (NOV_2001 - 86400 * 90, "budget review meeting for the storage division"),
    (NOV_2001 - 86400 * 10, "reminder about the records retention training"),
    (NOV_2001 + 86400 * 5, "urgent imclone position memo for stewart from waksal"),
    (NOV_2001 + 86400 * 6, "re quarterly audit schedule and travel plans"),
    (NOV_2001 + 86400 * 40, "imclone trial results discussion with the board"),
    (JAN_2002 + 86400 * 20, "welcome aboard and benefits enrollment details"),
]


def alice_ingests() -> TrustworthySearchEngine:
    print("== Alice: committing email to WORM, indexing in real time ==")
    engine = TrustworthySearchEngine(EngineConfig(num_lists=64, branching=32))
    for commit_time, text in EMAILS:
        doc_id = engine.index_document(text, commit_time=commit_time)
        print(f"  committed doc {doc_id} at t={commit_time}")
    return engine


def mala_would_have_won_with_buffering() -> None:
    print("\n== Counterfactual: a buffered index (prior art) ==")
    store = CachedWormStore(None)
    buffered = BufferedInvertedIndex(store, flush_threshold=100)
    for doc_id, (_, text) in enumerate(EMAILS):
        buffered.add_document(doc_id, range(doc_id * 3, doc_id * 3 + 3))
    lost = buffer_wipe_attack(buffered)
    print(f"  Mala crashes the indexer: postings of {lost} documents are gone.")
    print("  The emails sit on WORM — unreachable through any index. Hidden.")


def mala_attacks(engine: TrustworthySearchEngine) -> None:
    print("\n== Mala: attacking the trustworthy index ==")
    print("  Rewriting posting lists? The WORM device refuses overwrites.")
    print("  Her only move: stuff 'imclone' postings with fake document IDs")
    term_id = engine.term_id("imclone")
    posting_list = engine._lists[engine._list_id_for(term_id)]
    fakes = posting_stuffing_attack(posting_list, term_id, count=8)
    print(f"  stuffed {len(fakes)} fabricated postings (IDs {fakes[0]}..{fakes[-1]})")


def bob_investigates(engine: TrustworthySearchEngine) -> None:
    print("\n== Bob: certified engine, broad sweep for 'imclone' ==")
    try:
        engine.search("imclone", top_k=20, verify=True)
        print("  (no tampering detected)")
    except TamperDetectedError:
        print("  ALARM — results reference documents that are not on WORM:")
        print("  someone stuffed the posting lists. Bob now *knows* a")
        print("  cover-up was attempted, and narrows in on his window.")

    print("\n== Bob: Nov-Dec 2001, '+stewart +waksal +imclone' ==")
    query = f"+stewart +waksal +imclone @{NOV_2001}..{JAN_2002}"
    # Stuffed postings cannot survive a conjunctive join (the fabricated
    # IDs are not in the other terms' lists), so this one runs clean.
    results = engine.search(query, verify=False)
    genuine = [r for r in results if engine.documents.exists(r.doc_id)]
    print(f"  {len(results)} raw hits, {len(genuine)} verified against WORM:")
    for hit in genuine:
        doc = engine.documents.get(hit.doc_id)
        print(f"    doc {hit.doc_id} (t={doc.commit_time}): {doc.text[:60]}")
    print("\n== Bob: full index audit for the case file ==")
    reports = full_engine_audit(engine)
    bad = [r for r in reports if not r.ok]
    print(f"  {len(reports)} subjects audited, {len(bad)} with violations")
    print("  The evidence email was retrieved; the tampering is documented.")


def main() -> None:
    engine = alice_ingests()
    mala_would_have_won_with_buffering()
    mala_attacks(engine)
    bob_investigates(engine)


if __name__ == "__main__":
    main()
