#!/usr/bin/env python3
"""Sizing a trustworthy index: the Section 3 merging trade-offs, hands on.

Given a (synthetic) document corpus and query log, this walks the
decisions a deployment makes:

1. how many merged posting lists a given storage cache affords,
2. what each merging strategy costs in query throughput (workload cost
   Q relative to unmerged lists),
3. whether learning popularity statistics from a 10% prefix is good
   enough (it is — the Figures 3(f)/3(g) result), and
4. what a jump index would add (space overhead vs conjunctive speedup).

Run:  python examples/merging_tradeoffs.py
"""


from repro.core.cost_model import cost_ratio, unmerged_workload_cost
from repro.core.epochs import learn_popular_terms, prefix_query_frequencies
from repro.core.merge import (
    GreedyCostMerge,
    PopularUnmergedMerge,
    UniformHashMerge,
    lists_for_cache,
)
from repro.core.space import space_overhead
from repro.simulate.report import format_table
from repro.simulate.workload_factory import Scale, get_workload
from repro.workloads.stats import WorkloadStats

BLOCK_SIZE = 8192
CACHE_SIZES_MB = [4, 16, 64, 256]


def main() -> None:
    workload = get_workload(Scale.tiny())
    stats = workload.stats
    print(
        f"workload: {len(workload.documents)} docs, "
        f"{len(workload.queries)} queries, "
        f"{stats.num_terms} terms, unmerged cost Q0 = "
        f"{unmerged_workload_cost(stats):.3g} posting scans"
    )

    # --- 1+2: strategies across cache sizes -------------------------------
    rows = []
    for cache_mb in CACHE_SIZES_MB:
        num_lists = lists_for_cache(cache_mb << 20, BLOCK_SIZE)
        uniform = UniformHashMerge(num_lists).assign(stats.num_terms)
        popular_terms = learn_popular_terms(stats, min(200, num_lists // 2), by="qi")
        popular = PopularUnmergedMerge(num_lists, popular_terms).assign(stats.num_terms)
        greedy = GreedyCostMerge(num_lists, stats.ti, stats.qi).assign(stats.num_terms)
        rows.append(
            (
                cache_mb,
                num_lists,
                round(cost_ratio(uniform, stats), 3),
                round(cost_ratio(popular, stats), 3),
                round(cost_ratio(greedy, stats), 3),
            )
        )
    print()
    print(
        format_table(
            ["cache MB", "lists M", "uniform", "popular-qi", "greedy"],
            rows,
            title="workload-cost ratio Q(merged)/Q(unmerged) by strategy",
        )
    )
    print(
        "note: uniform merging is within a few percent of the smarter\n"
        "strategies at realistic cache sizes — the paper's Section 3.4\n"
        "conclusion, and why it recommends uniform merging in practice."
    )

    # --- 3: learning from a prefix ----------------------------------------
    learned_qi = prefix_query_frequencies(workload.query_log, 0.10)
    learned = WorkloadStats(ti=stats.ti, qi=learned_qi)
    num_lists = lists_for_cache(64 << 20, BLOCK_SIZE)
    k = min(200, num_lists // 2)
    true_top = set(learn_popular_terms(stats, k, by="qi").tolist())
    learned_top = set(learn_popular_terms(learned, k, by="qi").tolist())
    overlap = len(true_top & learned_top) / k
    true_ratio = cost_ratio(
        PopularUnmergedMerge(num_lists, sorted(true_top)).assign(stats.num_terms), stats
    )
    learned_ratio = cost_ratio(
        PopularUnmergedMerge(num_lists, sorted(learned_top)).assign(stats.num_terms),
        stats,
    )
    print(
        f"\nlearning from the first 10% of queries: top-{k} overlap "
        f"{overlap:.0%}, cost ratio {learned_ratio:.3f} vs {true_ratio:.3f} "
        "with perfect statistics"
    )

    # --- 4: should you add a jump index? -----------------------------------
    print("\njump-index decision (Section 4.5):")
    conjunctive = sum(1 for q in workload.queries if q.num_terms >= 4)
    share = conjunctive / len(workload.queries)
    for branching in (2, 32):
        overhead = space_overhead(BLOCK_SIZE, branching)
        print(
            f"  B={branching:>2}: +{overhead:.1%} space and disjunctive scan "
            f"cost; pays off when many-keyword conjunctive queries dominate"
        )
    print(
        f"  this log: {share:.1%} of queries have >= 4 keywords -> "
        + (
            "jump index recommended (B=32)"
            if share > 0.25
            else "merged lists alone are the better trade"
        )
    )


if __name__ == "__main__":
    main()
