#!/usr/bin/env python3
"""A durable compliance archive: one journal file, many sessions.

Everything the engine needs lives in a single append-only journal on the
host filesystem (:class:`repro.worm.JournaledWormDevice`).  This demo
runs three "sessions" against the same archive file —

1. ingest a first batch of records and close;
2. reopen, search (all state rebuilt from WORM), ingest more, and
   dispose of an expired record with an auditable disposition;
3. corrupt one journal byte on disk and show that reopening detects it.

The same archive is scriptable from the shell::

    repro-search init   --archive records.worm --retention 1000
    repro-search index  --archive records.worm --text "imclone memo"
    repro-search search --archive records.worm "+imclone +stewart"
    repro-search audit  --archive records.worm

Run:  python examples/persistent_archive.py
"""

import os
import tempfile

from repro import EngineConfig, TrustworthySearchEngine
from repro.errors import TamperDetectedError
from repro.worm.persistent import JournaledWormDevice
from repro.worm.storage import CachedWormStore

CONFIG = EngineConfig(
    num_lists=64, branching=8, block_size=1024, retention_period=100
)


def open_engine(path):
    device = JournaledWormDevice(path, block_size=CONFIG.block_size)
    return TrustworthySearchEngine(
        CONFIG, store=CachedWormStore(None, device=device)
    ), device


def session_one(path) -> None:
    print("== session 1: ingest ==")
    engine, device = open_engine(path)
    for commit_time, text in [
        (10, "imclone trading memo for stewart and waksal"),
        (20, "quarterly finance audit for the records committee"),
        (30, "meeting notes about storage retention policy"),
    ]:
        doc_id = engine.index_document(text, commit_time=commit_time)
        print(f"  committed doc {doc_id} at t={commit_time}")
    device.close()
    print(f"  journal size: {os.path.getsize(path)} bytes")


def session_two(path) -> None:
    print("\n== session 2: reopen, search, extend, dispose ==")
    engine, device = open_engine(path)
    hits = engine.search("+imclone +stewart")
    print(f"  '+imclone +stewart' -> docs {[r.doc_id for r in hits]}")
    doc_id = engine.index_document(
        "fresh imclone disclosure filing", commit_time=50
    )
    print(f"  committed doc {doc_id} in the new session")
    disposed = engine.dispose_expired(now=125)  # doc 0 committed at t=10
    print(f"  disposed (past retention horizon): {disposed}")
    print(
        "  disposition record:",
        engine.retention.disposition_for(disposed[0]) if disposed else None,
    )
    hits = engine.search("imclone")
    print(f"  'imclone' now -> docs {[r.doc_id for r in hits]} (doc 0 disposed)")
    device.close()


def session_three(path) -> None:
    print("\n== session 3: Mala edits the journal file on disk ==")
    with open(path, "r+b") as handle:
        handle.seek(os.path.getsize(path) // 2)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))
    try:
        open_engine(path)
        print("  corruption NOT detected (bad)")
    except TamperDetectedError as exc:
        print(f"  reopen refused: {exc.invariant} — offline tampering exposed")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "records.worm")
        session_one(path)
        session_two(path)
        session_three(path)


if __name__ == "__main__":
    main()
