#!/usr/bin/env python3
"""Quickstart: trustworthy keyword search in a dozen lines.

Commits a handful of business records to (simulated) WORM storage,
indexing each one *in the same call* — there is no window in which an
insider can lose an index entry — then runs ranked, conjunctive, and
time-constrained searches over them.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, TrustworthySearchEngine


def main() -> None:
    engine = TrustworthySearchEngine(EngineConfig(num_lists=64, branching=32))

    records = [
        "quarterly revenue report for the finance committee",
        "imclone trading memo prepared for stewart and waksal",
        "meeting notes about imclone drug development trial",
        "budget planning schedule for the storage team",
        "stewart waksal imclone november trading summary",
        "records retention policy update for compliance audit",
    ]
    for text in records:
        doc_id = engine.index_document(text)
        print(f"committed record {doc_id}: {text[:48]}...")

    print("\nranked search for 'imclone trading':")
    for hit in engine.search("imclone trading"):
        print(f"  doc {hit.doc_id}  score {hit.score:.2f}")

    print("\nconjunctive search '+stewart +waksal +imclone':")
    for hit in engine.search("+stewart +waksal +imclone"):
        print(f"  doc {hit.doc_id}  score {hit.score:.2f}")

    # Commit times here are the engine's ingest counter (0, 1, 2, ...);
    # production deployments pass real timestamps to index_document.
    print("\ntime-constrained search 'imclone @0..2' (first three commits):")
    for hit in engine.search("imclone @0..2"):
        print(f"  doc {hit.doc_id}  score {hit.score:.2f}")

    # Every result can be verified against the WORM-resident documents —
    # the countermeasure against posting-list stuffing.
    results = engine.search("imclone", verify=True)
    print(f"\nverified {len(results)} results against WORM documents: clean")


if __name__ == "__main__":
    main()
