#!/usr/bin/env python3
"""Regenerate every figure and table of the paper's evaluation, one command.

Thin orchestration over the benchmark harness (the single source of
truth for each experiment): selects the workload scale, runs the whole
suite, and gathers the regenerated figures into a report directory with
an index.

Usage::

    python examples/regenerate_paper.py [--scale tiny|small|medium|paper]
                                        [--out report/] [--only FIG8C ...]

At ``tiny`` (default) the full run takes a minute or two; ``small``
minutes; ``paper`` attempts the publication's 1M-document workload —
expect hours in pure Python.
"""

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_OUT = REPO / "benchmarks" / "out"

#: Experiment -> paper artifact, for the report index.
EXPERIMENTS = {
    "FIG2": "Figure 2: random I/Os per inserted document vs cache size",
    "FIG3A": "Figure 3(a): term-frequency distribution",
    "FIG3B": "Figure 3(b): query-frequency distribution",
    "FIG3C": "Figure 3(c): cumulative workload cost",
    "FIG3D": "Figure 3(d): Q ratio, popular query terms unmerged",
    "FIG3E": "Figure 3(e): Q ratio, popular document terms unmerged",
    "FIG3F": "Figure 3(f): learning query statistics from a 10% prefix",
    "FIG3G": "Figure 3(g): learning document statistics from a 10% prefix",
    "FIG3H": "Figure 3(h): cumulative query-cost distribution",
    "FIG3I": "Figure 3(i): query slowdown vs cost percentile",
    "FIG4": "Figure 4: measured workload run-time ratios",
    "FIG8A": "Figure 8(a): jump-index space overhead",
    "FIG8B": "Figure 8(b): insert I/Os per document with jump indexes",
    "FIG8C": "Figure 8(c): conjunctive query speedup vs keywords",
    "TAB-CONCL": "Section 6: conclusion comparison table",
    "SEC4-GHT": "Section 4: zigzag vs GHT join costs",
    "SEC45-DISJ": "Section 4.5: disjunctive slowdown of a jump index",
    "ABL-MERGE": "Ablation: merging strategies",
    "ABL-TAILPATH": "Ablation: Section 4.5 tail-path optimization",
    "ABL-BLOCKSIZE": "Ablation: jump-index block size",
    "ABL-TERMCODE": "Ablation: Huffman keyword tags",
    "EPOCH-DRIFT": "Extension: epoch adaptation under drift",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="tiny", choices=["tiny", "small", "medium", "paper"]
    )
    parser.add_argument("--out", default="paper_report")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="experiment IDs to run (default: all)",
    )
    args = parser.parse_args()

    env = dict(os.environ, REPRO_BENCH_SCALE=args.scale)
    command = [
        sys.executable, "-m", "pytest", str(REPO / "benchmarks"),
        "--benchmark-only", "-q",
    ]
    if args.only:
        patterns = " or ".join(e.replace("-", "_").lower() for e in args.only)
        command += ["-k", patterns]
    print(f"running benchmark suite at scale '{args.scale}' ...")
    result = subprocess.run(command, env=env, cwd=REPO)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    index_lines = [
        f"# Regenerated evaluation (scale: {args.scale})",
        "",
    ]
    selected = set(args.only) if args.only else set(EXPERIMENTS)
    for experiment, title in EXPERIMENTS.items():
        source = BENCH_OUT / f"{experiment}.txt"
        if experiment not in selected or not source.exists():
            continue
        shutil.copy(source, out_dir / source.name)
        index_lines.append(f"## {experiment} — {title}")
        index_lines.append("```")
        index_lines.append(source.read_text().rstrip())
        index_lines.append("```")
        index_lines.append("")
    (out_dir / "INDEX.md").write_text("\n".join(index_lines))
    print(f"\nreport written to {out_dir}/ ({len(index_lines)} lines in INDEX.md)")
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
