#!/usr/bin/env python3
"""Sharded archive: parallel fan-out search over K independent engines.

Partitions a record archive across four shards — each a complete
`TrustworthySearchEngine` with its own WORM store, posting lists, and
jump indexes — glued together by an append-only WORM document map.
Shows batched ingestion, fan-out/merge queries that return exactly the
single-engine results, per-shard cost profiling, and what happens when
an insider stuffs one shard's posting list.

Run:  python examples/sharded_search.py
"""

from repro import EngineConfig, ShardedSearchEngine
from repro.adversary import full_sharded_audit, posting_stuffing_attack
from repro.search import profile_sharded_query

RECORDS = [
    "quarterly revenue report for the finance committee",
    "imclone trading memo prepared for stewart and waksal",
    "meeting notes about imclone drug development trial",
    "budget planning schedule for the storage team",
    "stewart waksal imclone november trading summary",
    "records retention policy update for compliance audit",
    "imclone erbitux filing withdrawn by the fda",
    "trading desk compliance checklist for november",
]


def main() -> None:
    engine = ShardedSearchEngine(
        EngineConfig(num_lists=64, branching=None), num_shards=4
    )
    with engine:
        # One call commits, routes, and indexes the whole batch; documents
        # are grouped per shard so each merged list is appended in one pass.
        ids = engine.index_batch(RECORDS)
        print(f"committed {len(ids)} records across {engine.num_shards} shards:")
        for shard_id, shard in enumerate(engine.shards):
            print(f"  shard {shard_id}: {len(shard.documents)} documents")

        # Queries fan out to every shard, are re-ranked under aggregated
        # collection statistics, and heap-merge into one global run — the
        # same results and scores a 1-shard archive would return.
        print("\nranked search for 'imclone trading':")
        for hit in engine.search("imclone trading"):
            print(f"  doc {hit.doc_id}  score {hit.score:.2f}")

        print("\nconjunctive search '+stewart +waksal':")
        for hit in engine.search("+stewart +waksal"):
            print(f"  doc {hit.doc_id}  score {hit.score:.2f}")

        # The profile separates total scan work from the critical path
        # (the slowest shard) — the modeled parallel speedup.
        profile = profile_sharded_query(engine, "imclone trading")
        print(f"\nprofile: {profile.summary()}")

        # Mala stuffs a shard's posting list with document IDs that were
        # never committed.  Shard-local invariants stay clean (stuffing is
        # structurally legal), but result verification against the WORM
        # documents exposes it, and incident handling quarantines the
        # fabricated IDs on the coordinator's own WORM incident log.
        shard = engine.shards[1]
        tid = shard.term_id("imclone")
        posting_list = shard._lists[shard._list_id_for(tid)]
        stuffed = posting_stuffing_attack(
            posting_list, tid, count=len(shard.documents) + 3
        )
        print(f"\nMala stuffs shard 1's 'imclone' list with {len(stuffed)} IDs")
        results, report = engine.search_with_incident_handling("imclone", top_k=10)
        print(f"  verification: ok={report.ok}, {len(report.violations)} violations")
        print(f"  quarantined fabricated IDs: {sorted(engine.incidents.quarantined_doc_ids)}")
        print(f"  clean results returned: {sorted(r.doc_id for r in results)}")

        # An offline audit sweeps every shard plus the document map.
        reports = full_sharded_audit(engine)
        bad = [r for r in reports if not r.ok]
        print(f"\nfull sharded audit: {len(reports)} reports, {len(bad)} with violations")
        print(f"  (incident evidence is preserved: {len(engine.incidents)} incident(s) on WORM)")


if __name__ == "__main__":
    main()
