#!/usr/bin/env python3
"""Attack survey: every index, every attack, silence vs alarms.

Reproduces the paper's Section 4 asymmetry as a live demo: the same
class of WORM-legal manipulation (appends + filling unset write-once
slots) silently corrupts B+ trees and binary search, while jump indexes
turn it into a detected event — and posting-list stuffing, the one
attack that stays structurally clean, falls to document verification.

Run:  python examples/tamper_audit.py
"""

from repro.adversary import (
    binary_search_tail_attack,
    block_jump_pointer_attack,
    bplus_shadow_attack,
    jump_pointer_attack,
    posting_stuffing_attack,
)
from repro.baselines import BPlusTree, SortedAppendLog
from repro.core import BlockJumpIndex, JumpIndex, PostingList
from repro.core.verification import audit_posting_list, audit_search_result
from repro.errors import TamperDetectedError
from repro.worm.storage import CachedWormStore

KEYS = [2, 4, 7, 11, 13, 19, 23, 29, 31, 36]
HIDE = 36


def demo_bplus() -> None:
    print("== B+ tree (Figure 6) ==")
    tree = BPlusTree(fanout=4)
    for k in KEYS:
        tree.insert(k)
    print(f"  before: lookup({HIDE}) = {tree.lookup(HIDE)}")
    separator = bplus_shadow_attack(tree, HIDE)
    print(f"  Mala appends separator {separator} -> shadow subtree")
    print(f"  after:  lookup({HIDE}) = {tree.lookup(HIDE)}   <- SILENTLY WRONG")


def demo_binary_search() -> None:
    print("\n== binary search over an append-only run ==")
    log = SortedAppendLog()
    for k in KEYS:
        log.append(k)
    planted = binary_search_tail_attack(log, HIDE)
    print(f"  Mala appends {planted} at the tail")
    print(f"  binary_search({HIDE}) = {log.binary_search(HIDE)}   <- SILENTLY WRONG")
    try:
        log.verify_sorted()
    except TamperDetectedError as exc:
        print(f"  ...but a linear audit raises: {exc.invariant}")


def demo_jump_index() -> None:
    print("\n== binary jump index (Section 4.1) ==")
    ji = JumpIndex()
    for k in KEYS:
        ji.insert(k)
    exponent = jump_pointer_attack(ji, fake_value=3)
    print(f"  Mala fills NULL head pointer {exponent} with an off-range node")
    try:
        for k in range(40):
            ji.find_geq(k)
        print("  traversals stayed clean (pointer never crossed)")
    except TamperDetectedError as exc:
        print(f"  traversal crossing it raises: {exc.invariant}   <- DETECTED")
    print(f"  committed keys all still visible: "
          f"{all(ji.lookup(k) for k in KEYS)}")


def demo_block_jump_index() -> None:
    print("\n== block jump index (Section 4.4) ==")
    store = CachedWormStore(None, block_size=256)
    bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
    for doc_id in range(0, 900, 3):
        bji.insert(doc_id)
    slot = block_jump_pointer_attack(bji)
    print(f"  Mala fills NULL slot {slot} of the head block")
    report = audit_posting_list(bji.posting_list, bji)
    print(f"  offline audit: ok={report.ok}; violations:")
    for violation in report.violations:
        print(f"    - {violation}   <- DETECTED")


def demo_stuffing() -> None:
    print("\n== posting-list stuffing (Section 5) ==")
    store = CachedWormStore(None, block_size=256)
    posting_list = PostingList(store, "pl-imclone")
    real_docs = set()
    for doc_id in range(12):
        posting_list.append(doc_id, term_code=1)
        real_docs.add(doc_id)
    fakes = posting_stuffing_attack(posting_list, 1, count=6)
    print(f"  Mala appends {len(fakes)} future-ID postings (monotone, so")
    print(f"  the structural audit stays green: "
          f"ok={audit_posting_list(posting_list).ok})")
    result_ids = [p.doc_id for p in posting_list.scan(counted=False)]
    report = audit_search_result(
        result_ids,
        ["imclone"],
        document_exists=lambda d: d in real_docs,
        document_contains=lambda d, t: True,
    )
    print(f"  result verification against WORM documents: "
          f"{len(report.violations)} stuffed postings exposed   <- DETECTED")


def main() -> None:
    demo_bplus()
    demo_binary_search()
    demo_jump_index()
    demo_block_jump_index()
    demo_stuffing()
    print(
        "\nsummary: the untrusted structures fail silently; the paper's\n"
        "structures either keep answering correctly or raise an alarm."
    )


if __name__ == "__main__":
    main()
