"""Legacy setup shim.

Allows ``pip install -e .`` to fall back to a setuptools ``develop``
install in offline environments that lack the ``wheel`` package needed by
the PEP 517 editable build path.  All project metadata lives in
``pyproject.toml``; this file intentionally contains no configuration.
"""

from setuptools import setup

setup()
