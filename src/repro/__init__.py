"""Trustworthy keyword search for regulatory-compliant records retention.

A from-scratch reproduction of Mitra, Hsu & Winslett (VLDB 2006): a
tamper-evident inverted index for records on WORM storage, with

* real-time index update via **merged posting lists** sized to the
  storage cache (Section 3),
* **jump indexes** for logarithmic, trustworthy conjunctive queries
  (Section 4),
* a **commit-time index** and posting-stuffing countermeasures
  (Section 5),
* the untrusted baselines (append-only B+ tree, binary search, GHT,
  buffered updates) and the executable attacks against them,
* the full simulation/benchmark harness regenerating every figure of the
  paper's evaluation.

Quick start
-----------
>>> from repro import TrustworthySearchEngine
>>> engine = TrustworthySearchEngine()
>>> engine.index_document("imclone trading memo for stewart and waksal")
0
>>> [hit.doc_id for hit in engine.search("+stewart +waksal")]
[0]

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
per-figure reproduction record.
"""

from repro.core import (
    BlockJumpIndex,
    CommitTimeIndex,
    EpochIndexManager,
    JumpIndex,
    Posting,
    PostingCursor,
    PostingList,
    TermAssignment,
    UniformHashMerge,
)
from repro.errors import (
    ReproError,
    TamperDetectedError,
    WormViolationError,
)
from repro.search import (
    Analyzer,
    EngineConfig,
    EpochPolicy,
    EpochedSearchEngine,
    Query,
    QueryMode,
    SearchResult,
    TrustworthySearchEngine,
    parse_query,
)
from repro.investigate import Investigation
from repro.sharding import (
    BatchIngestor,
    ParallelQueryExecutor,
    ShardRouter,
    ShardedSearchEngine,
)
from repro.worm import CachedWormStore, JournaledWormDevice, LRUBlockCache, WormDevice

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "BatchIngestor",
    "BlockJumpIndex",
    "CachedWormStore",
    "CommitTimeIndex",
    "EngineConfig",
    "EpochIndexManager",
    "EpochPolicy",
    "EpochedSearchEngine",
    "Investigation",
    "JournaledWormDevice",
    "JumpIndex",
    "LRUBlockCache",
    "ParallelQueryExecutor",
    "Posting",
    "PostingCursor",
    "PostingList",
    "Query",
    "QueryMode",
    "ReproError",
    "SearchResult",
    "ShardRouter",
    "ShardedSearchEngine",
    "TamperDetectedError",
    "TermAssignment",
    "TrustworthySearchEngine",
    "UniformHashMerge",
    "WormDevice",
    "WormViolationError",
    "parse_query",
    "__version__",
]
