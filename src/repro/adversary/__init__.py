"""The threat model, executable (Section 2.1).

Mala can take on the identity of any legitimate user or superuser: she
can run any WORM-*legal* operation — append records, create files and
nodes, assign unset write-once slots — but cannot overwrite committed
data (the device refuses) and cannot alter Bob's certified search engine.

* :mod:`repro.adversary.attacks` — concrete attacks: the Figure 6 B+ tree
  shadow subtree, the binary-search tail append, jump-index pointer
  corruption (detected), posting-list stuffing (Section 5), and the
  pre-commit buffer wipe (Section 2.3).
* :mod:`repro.adversary.detection` — the full-audit pass a certified
  engine or investigator runs.
"""

from repro.adversary.attacks import (
    binary_search_tail_attack,
    block_jump_pointer_attack,
    bplus_shadow_attack,
    buffer_wipe_attack,
    jump_pointer_attack,
    posting_stuffing_attack,
)
from repro.adversary.detection import full_engine_audit, full_sharded_audit

__all__ = [
    "binary_search_tail_attack",
    "block_jump_pointer_attack",
    "bplus_shadow_attack",
    "buffer_wipe_attack",
    "full_engine_audit",
    "full_sharded_audit",
    "jump_pointer_attack",
    "posting_stuffing_attack",
]
