"""Concrete attacks, each restricted to WORM-legal operations.

Every function here manipulates an index using only appends, node
creation, and assignment of *unset* write-once slots — the operations the
paper's storage model must permit and therefore cannot deny to an insider
with superuser credentials.  The asymmetry the paper establishes:

* against B+ trees and binary search the attacks **succeed silently** —
  a trusting reader returns wrong answers with no error;
* against jump indexes the same class of manipulation is **detected** —
  certified readers trip the monotonicity asserts
  (:class:`~repro.errors.TamperDetectedError`);
* posting-list stuffing degrades *ranking* but is exposed by result
  verification against the WORM-resident documents (Section 5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.binary_search import SortedAppendLog
from repro.baselines.bplus_tree import BPlusTree
from repro.baselines.buffered import BufferedInvertedIndex
from repro.core.block_jump_index import BlockJumpIndex
from repro.core.jump_index import JumpIndex
from repro.core.posting_list import PostingList
from repro.errors import ReproError


class AttackNotApplicableError(ReproError):
    """The targeted structure is not in a state this attack can exploit."""


# ----------------------------------------------------------------------
# Figure 6: shadow-subtree attack on the append-only B+ tree
# ----------------------------------------------------------------------
def bplus_shadow_attack(
    tree: BPlusTree,
    hide_key: int,
    *,
    decoys: Optional[Sequence[int]] = None,
) -> int:
    """Hide a committed key from B+ tree lookups, Figure 6(b) style.

    Walks the lookup path of ``hide_key`` to the deepest internal node
    with spare capacity, then appends a ``(separator, fake-leaf)`` entry
    whose separator lies in ``(last separator, hide_key]`` — a sorted,
    WORM-legal append.  Every subsequent trusting lookup of ``hide_key``
    (and of anything ≥ the separator under that node) descends into the
    fake leaf.

    Returns the separator used.  Raises
    :class:`AttackNotApplicableError` when no node on the path has both
    spare capacity and separator headroom (Mala would wait for a better
    moment — or target a different key).
    """
    if tree.root is None or not tree.lookup(hide_key):
        raise AttackNotApplicableError(
            f"key {hide_key} is not in the tree; nothing to hide"
        )
    node = tree.root
    candidates = []
    while not node.is_leaf:
        candidates.append(node)
        # Same child choice a trusting lookup makes.
        idx = 0
        for i, sep in enumerate(node.keys):
            if sep <= hide_key:
                idx = i
        node = node.children[idx]
    # Prefer the deepest attackable node: smaller blast radius, harder to
    # notice.  A node is attackable if it has room and its last separator
    # leaves headroom below hide_key.
    for internal in reversed(candidates):
        if len(internal.keys) >= tree.fanout:
            continue
        last_sep = internal.keys[-1]
        if last_sep >= hide_key:
            continue
        separator = hide_key if last_sep == hide_key - 1 else hide_key - 1
        if decoys is None:
            # Decoys sit just past the hidden key — plausible neighbours
            # that never include the key itself.
            fake_keys = [hide_key + 1, hide_key + 2]
        else:
            if hide_key in decoys:
                raise AttackNotApplicableError(
                    "decoys must not include the key being hidden"
                )
            fake_keys = sorted(decoys)
            if fake_keys and fake_keys[0] < separator:
                separator = max(last_sep + 1, fake_keys[0])
        fake_leaf = tree.make_leaf(list(fake_keys))
        tree.raw_append_entry(internal, separator, fake_leaf)
        return separator
    raise AttackNotApplicableError(
        f"no internal node on the path to {hide_key} has capacity and "
        "separator headroom"
    )


# ----------------------------------------------------------------------
# Section 4: tail append defeating binary search
# ----------------------------------------------------------------------
def binary_search_tail_attack(log: SortedAppendLog, hide_key: int) -> List[int]:
    """Break binary searches for ``hide_key`` by appending smaller keys.

    Appends copies of ``hide_key - 1`` at the tail until the binary
    search's probe sequence is deflected rightward past the committed
    occurrence (Figure 6(b) appends three such entries; the number needed
    depends on where the key sits relative to the probe midpoints, and
    Mala can simply keep appending until her own trial search misses).
    Returns the planted values.
    """
    if not log.binary_search(hide_key):
        raise AttackNotApplicableError(
            f"key {hide_key} is not found even before the attack"
        )
    planted: List[int] = []
    limit = 2 * len(log) + 2
    while log.binary_search(hide_key):
        if len(planted) >= limit:
            raise AttackNotApplicableError(
                f"could not deflect binary search for {hide_key} within "
                f"{limit} appends"
            )
        log.append(hide_key - 1)
        planted.append(hide_key - 1)
    return planted


# ----------------------------------------------------------------------
# Section 4.3: the same manipulations against jump indexes (detected)
# ----------------------------------------------------------------------
def jump_pointer_attack(jump_index: JumpIndex, *, fake_value: int = 0) -> int:
    """Plant a malicious pointer in a binary jump index.

    Write-once pointers leave Mala only the NULL slots.  Filling one with
    a node whose value lies *inside* the slot's range is merely inserting
    a fake entry (posting stuffing — exposed by document verification);
    the structurally damaging move is filling a slot whose range does
    *not* contain the value, diverting future traversals.  This function
    does the latter: it appends a node holding ``fake_value`` and assigns
    it to the first unset head pointer whose range excludes the value.
    Certified reads through that pointer raise
    :class:`~repro.errors.TamperDetectedError` rather than return wrong
    answers.  Returns the pointer exponent used.
    """
    if jump_index.is_empty:
        raise AttackNotApplicableError("empty jump index; nothing to subvert")
    fake_node = jump_index.append_node(fake_value)
    head_value = jump_index.head_value
    for i in range(jump_index.max_value_bits + 1):
        in_range = head_value + (1 << i) <= fake_value < head_value + (1 << (i + 1))
        if not in_range and jump_index._node(0).pointer(i) is None:
            jump_index.set_pointer(0, i, fake_node)
            return i
    raise AttackNotApplicableError(
        "no unset head pointer with a range excluding the fake value"
    )


def block_jump_pointer_attack(
    jump_index: BlockJumpIndex, *, target_block: Optional[int] = None
) -> int:
    """Plant a malicious block pointer in a block jump index.

    Assigns an unset pointer slot of the head block to an arbitrary
    earlier-or-wrong block.  Returns the slot used.  Certified readers
    whose navigation crosses the slot raise
    :class:`~repro.errors.TamperDetectedError`.
    """
    posting_list = jump_index.posting_list
    if posting_list.num_blocks < 2:
        raise AttackNotApplicableError(
            "need at least two blocks to make a pointer plausible"
        )
    store = posting_list.store
    if target_block is None:
        target_block = posting_list.num_blocks - 1
    for slot in range(jump_index.num_slots):
        if store.peek_slot(posting_list.name, 0, slot) is None:
            store.set_slot(posting_list.name, 0, slot, target_block)
            return slot
    raise AttackNotApplicableError("head block has no unset slots left")


# ----------------------------------------------------------------------
# Section 5: posting-list stuffing / ranking attack
# ----------------------------------------------------------------------
def posting_stuffing_attack(
    posting_list: PostingList,
    term_code: int,
    *,
    count: int,
    first_fake_doc_id: Optional[int] = None,
) -> List[int]:
    """Stuff a posting list with fabricated document IDs.

    To avoid instantly tripping the order audit, Mala appends *future*
    document IDs (monotonicity preserved) that reference documents that
    do not exist.  Search results get diluted; result verification
    (:func:`repro.core.verification.audit_search_result`) exposes every
    fake because the documents are absent from WORM.

    Returns the fabricated IDs.
    """
    if count <= 0:
        raise AttackNotApplicableError("stuffing needs a positive count")
    start = (
        first_fake_doc_id
        if first_fake_doc_id is not None
        else posting_list.last_doc_id + 1
    )
    fake_ids = list(range(start, start + count))
    for doc_id in fake_ids:
        posting_list.append(doc_id, term_code)
    return fake_ids


# ----------------------------------------------------------------------
# Section 2.3: killing index entries in the buffering window
# ----------------------------------------------------------------------
def buffer_wipe_attack(index: BufferedInvertedIndex) -> int:
    """Crash a buffered indexer and destroy its unflushed postings.

    Returns the number of documents whose index entries are permanently
    lost — stored safely on WORM, but unreachable through the index.
    This is why a trustworthy index must update in real time.
    """
    if index.buffered_documents == 0:
        raise AttackNotApplicableError("buffer is empty; nothing to destroy")
    return index.crash_and_wipe_buffer()
