"""Full-audit pass for a :class:`~repro.search.engine.TrustworthySearchEngine`.

What an investigator (or a scheduled compliance job) runs: audit every
posting list, every jump-pointer set, and the commit-time log.  Unlike
the query-path checks — which raise the moment they cross a violation —
the audit *collects* everything into reports, the artifact Bob files.
"""

from __future__ import annotations

from typing import List

from repro.core.verification import AuditReport, audit_posting_list
from repro.errors import TamperDetectedError


def full_engine_audit(engine) -> List[AuditReport]:
    """Audit all index state of ``engine``; returns one report per subject.

    Covers:

    * every physical posting list (order + jump-pointer invariants);
    * the commit-time log (monotonicity of times and document IDs).

    The returned list always includes at least the commit-log report;
    check ``all(r.ok for r in reports)`` for a clean bill of health.
    """
    reports: List[AuditReport] = []
    # Discover every posting list ever committed (a reopened engine only
    # attaches lists lazily as queries touch them).
    for name in engine.store.device.list_files():
        if name.startswith("engine/pl/"):
            engine._existing_list(int(name.rsplit("/", 1)[1]))
    for list_id in sorted(engine._lists):
        posting_list = engine._lists[list_id]
        jump = engine._jumps.get(list_id)
        reports.append(audit_posting_list(posting_list, jump))
    # Tail-mode engines keep postings in sealed WORM segments instead of
    # (or alongside) the legacy merged lists; their lists carry the same
    # order/jump invariants and get the same per-list audit.
    for segment in getattr(engine, "iter_segments", lambda: ())():
        for posting_list, jump in segment.attached_lists():
            reports.append(audit_posting_list(posting_list, jump))
    commit_report = AuditReport(subject="commit-time log")
    try:
        engine.time_index.verify()
        commit_report.entries_checked = len(engine.time_index)
    except TamperDetectedError as exc:
        commit_report.add(str(exc))
    reports.append(commit_report)
    return reports


def full_sharded_audit(sharded_engine) -> List[AuditReport]:
    """Audit every shard of a sharded engine, plus the document map.

    Runs :func:`full_engine_audit` on each shard (prefixing report
    subjects with the shard number) and appends one report for the
    coordinator's WORM document map — the cross-shard trust anchor that
    has no counterpart in the unsharded engine.
    """
    reports: List[AuditReport] = []
    for shard_id, shard in enumerate(sharded_engine.shards):
        for report in full_engine_audit(shard):
            report.subject = f"shard {shard_id}: {report.subject}"
            reports.append(report)
    map_report = AuditReport(subject="shard document map")
    try:
        map_report.entries_checked = sharded_engine.router.verify()
    except TamperDetectedError as exc:
        map_report.add(str(exc))
    reports.append(map_report)
    return reports
