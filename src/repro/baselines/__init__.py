"""Baseline index structures the paper compares against (and attacks).

* :mod:`repro.baselines.bplus_tree` — the bottom-up append-only B+ tree
  of Figure 6.  Efficient, WORM-compatible — and **not trustworthy**: a
  WORM-legal append at the root can shadow a committed entry.
* :mod:`repro.baselines.binary_search` — plain binary search over an
  append-only sorted run; defeated by appending a smaller key at the tail
  (Section 4's second attack).
* :mod:`repro.baselines.ght` — the Generalized Hash Tree fossilized
  index: trustworthy, but exact-match only and with poor locality, which
  is why the paper rejects it for posting-list joins.
* :mod:`repro.baselines.unmerged` — unmerged per-term posting lists, each
  with its own B+ tree: the paper's "ideal" (fast but untrustworthy)
  comparator in Figure 8(c) and the Section 6 conclusion numbers.
"""

from repro.baselines.binary_search import SortedAppendLog
from repro.baselines.bplus_tree import BPlusTree
from repro.baselines.ght import GeneralizedHashTree
from repro.baselines.unmerged import UnmergedBaselineIndex

__all__ = [
    "BPlusTree",
    "GeneralizedHashTree",
    "SortedAppendLog",
    "UnmergedBaselineIndex",
]
