"""Binary search over an append-only sorted run — and why it's unsafe.

Section 4: "Other techniques like binary search can also be compromised
by the adversary, by appending smaller numbers at the tail.  For example,
binary search on the leaves of the tree in Figure 6(b) would miss 31
because of the malicious entry 30 at the end."

:class:`SortedAppendLog` is that structure: an append-only run of keys
that an honest writer keeps sorted (strictly increasing), searched with
textbook binary search.  The append interface is WORM-legal for anyone —
including Mala, whose single out-of-order append silently breaks every
binary search past it.  A certified reader can *detect* her (the run is
visibly unsorted, :meth:`SortedAppendLog.verify_sorted`), but a plain
binary search gives wrong answers without any error — which is exactly
why the paper needs jump indexes, whose per-step range asserts turn the
same corruption into a loud :class:`~repro.errors.TamperDetectedError`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

from repro.errors import TamperDetectedError


class SortedAppendLog:
    """An append-only key run searched by binary search.

    Honest writers call :meth:`append` with strictly increasing keys; the
    method itself does **not** enforce order, because the WORM device
    cannot know the semantics — that asymmetry is the attack surface.
    """

    def __init__(self) -> None:
        self._keys: List[int] = []
        #: Probes performed by binary searches (cost accounting).
        self.probes = 0

    def append(self, key: int) -> None:
        """Append ``key`` — WORM-legal regardless of order."""
        self._keys.append(key)

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> List[int]:
        """Snapshot of the stored run."""
        return list(self._keys)

    # ------------------------------------------------------------------
    # the trusting reader
    # ------------------------------------------------------------------
    def binary_search(self, key: int) -> bool:
        """Textbook binary search; wrong (not just slow) once tampered."""
        lo, hi = 0, len(self._keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.probes += 1
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(self._keys) and self._keys[lo] == key

    def find_geq(self, key: int) -> Optional[int]:
        """Binary-search find-geq; equally trusting, equally breakable."""
        idx = bisect_left(self._keys, key)
        return self._keys[idx] if idx < len(self._keys) else None

    # ------------------------------------------------------------------
    # the certified reader
    # ------------------------------------------------------------------
    def verify_sorted(self) -> None:
        """Audit the run; raises on the trace Mala's append leaves.

        Linear, hence unattractive for query time — the point of the
        paper's logarithmic *and* self-checking jump index.
        """
        for i in range(1, len(self._keys)):
            if self._keys[i] <= self._keys[i - 1]:
                raise TamperDetectedError(
                    f"key {self._keys[i]} at position {i} after "
                    f"{self._keys[i - 1]} — append-order violation",
                    location=f"sorted log position {i}",
                    invariant="sorted-run-monotonicity",
                )

    def safe_lookup(self, key: int) -> bool:
        """Linear lookup with on-the-fly order checking (always correct)."""
        prev = None
        for i, stored in enumerate(self._keys):
            if prev is not None and stored <= prev:
                raise TamperDetectedError(
                    f"key {stored} at position {i} after {prev}",
                    location=f"sorted log position {i}",
                    invariant="sorted-run-monotonicity",
                )
            if stored == key:
                return True
            prev = stored
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedAppendLog(len={len(self._keys)})"
