"""Bottom-up append-only B+ tree on WORM (Figure 6) — and its attack.

For a strictly increasing key sequence one can build a B+ tree with no
node splits or merges: new keys go to the rightmost leaf; when a leaf
fills, a fresh leaf is created and an entry is appended to its parent,
recursing upward, with a new root introduced when the old root fills.
Every step is an append or node creation, so the tree lives happily on
append-capable WORM.

**Why it is not trustworthy** (Section 4): the path taken to look up an
entry depends on entries added *after* it.  An internal entry is a
``(separator, child)`` pair where the separator is the smallest key of
the child's subtree, and lookup descends into the child with the largest
separator ``<= k``.  Mala appends ``(25, fake-subtree)`` at the root of
Figure 6(a) — a perfectly WORM-legal append that keeps separators sorted
— and every subsequent lookup of committed key 31 descends into her
subtree and misses it; ``find_geq(28)`` returns her 30 instead of the
committed 29.  :class:`BPlusTree` exposes exactly that surface
(:meth:`BPlusTree.raw_append_entry`, :meth:`BPlusTree.make_leaf`,
:meth:`BPlusTree.make_internal`) so the attack is executable in
:mod:`repro.adversary.attacks`.

Node visits are counted per tree (:attr:`BPlusTree.nodes_read`) so joins
over B+-tree-indexed lists report the same "blocks read" unit as jump
indexes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Set, Tuple

from repro.errors import DocumentIdOrderError, IndexError_, WormViolationError


class _Node:
    """One B+ tree node; append-only key/child arrays.

    Leaves have ``children is None`` and a ``next_leaf`` forward pointer
    (set once, when the successor leaf is created).
    """

    __slots__ = ("keys", "children", "next_leaf", "node_id")

    def __init__(self, node_id: int, *, leaf: bool):
        self.node_id = node_id
        self.keys: List[int] = []
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.next_leaf: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """Append-only bottom-up B+ tree over a strictly increasing sequence.

    Parameters
    ----------
    fanout:
        Maximum entries per node (leaf keys / internal children).
    """

    def __init__(self, *, fanout: int = 64):
        if fanout < 2:
            raise IndexError_(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self._next_node_id = 0
        self._root: Optional[_Node] = None
        # Rightmost path, root first — where all honest appends happen.
        self._right_path: List[_Node] = []
        self.count = 0
        self.last_key = -1
        #: Total node visits across lookups/seeks (the blocks-read metric).
        self.nodes_read = 0

    # ------------------------------------------------------------------
    # construction helpers (WORM-legal; shared with the adversary)
    # ------------------------------------------------------------------
    def _new_node(self, *, leaf: bool) -> _Node:
        node = _Node(self._next_node_id, leaf=leaf)
        self._next_node_id += 1
        return node

    def make_leaf(self, keys: List[int]) -> _Node:
        """Create a detached leaf (node creation is always WORM-legal)."""
        node = self._new_node(leaf=True)
        node.keys.extend(keys)
        return node

    def make_internal(self, entries: List[Tuple[int, _Node]]) -> _Node:
        """Create a detached internal node from ``(separator, child)`` pairs."""
        node = self._new_node(leaf=False)
        for key, child in entries:
            node.keys.append(key)
            node.children.append(child)
        return node

    def raw_append_entry(self, node: _Node, key: int, child: _Node) -> None:
        """Append one entry to an internal node — the adversary's lever.

        The WORM device checks only that this is an append within
        capacity, not that the entry is semantically honest.
        """
        if node.is_leaf:
            raise IndexError_("cannot append a child entry to a leaf")
        if len(node.keys) >= self.fanout:
            raise WormViolationError(
                f"node {node.node_id} is full ({self.fanout} entries)"
            )
        node.keys.append(key)
        node.children.append(child)

    @property
    def root(self) -> Optional[_Node]:
        """The root node (``None`` while empty)."""
        return self._root

    # ------------------------------------------------------------------
    # honest write path
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Append ``key`` (strictly increasing) via the bottom-up build."""
        if key <= self.last_key:
            raise DocumentIdOrderError(
                f"B+ tree keys must strictly increase; {key} after "
                f"{self.last_key}"
            )
        self.last_key = key
        self.count += 1
        if self._root is None:
            leaf = self._new_node(leaf=True)
            leaf.keys.append(key)
            self._root = leaf
            self._right_path = [leaf]
            return
        leaf = self._right_path[-1]
        if len(leaf.keys) < self.fanout:
            leaf.keys.append(key)
            return
        new_leaf = self._new_node(leaf=True)
        new_leaf.keys.append(key)
        leaf.next_leaf = new_leaf
        self._push_up(len(self._right_path) - 2, key, new_leaf)

    def _push_up(self, level: int, key: int, child: _Node) -> None:
        """Attach ``child`` (smallest key ``key``) at ``level`` of the right path."""
        if level < 0:
            new_root = self._new_node(leaf=False)
            old_root = self._root
            new_root.keys.append(self._smallest_key(old_root))
            new_root.children.append(old_root)
            new_root.keys.append(key)
            new_root.children.append(child)
            self._root = new_root
            self._right_path = [new_root] + self._path_to_rightmost(child)
            return
        parent = self._right_path[level]
        if len(parent.keys) < self.fanout:
            parent.keys.append(key)
            parent.children.append(child)
            self._right_path[level + 1 :] = self._path_to_rightmost(child)
            return
        new_parent = self._new_node(leaf=False)
        new_parent.keys.append(key)
        new_parent.children.append(child)
        self._push_up(level - 1, key, new_parent)

    @staticmethod
    def _path_to_rightmost(node: _Node) -> List[_Node]:
        path = [node]
        while not node.is_leaf:
            node = node.children[-1]
            path.append(node)
        return path

    @staticmethod
    def _smallest_key(node: _Node) -> int:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # read path — takes the tree at face value (that's the point)
    # ------------------------------------------------------------------
    def _descend(self, key: int, visited: Optional[Set[int]] = None) -> _Node:
        """Walk to the leaf a trusting reader believes covers ``key``."""
        node = self._root
        while not node.is_leaf:
            self._count_visit(node, visited)
            # Child with the largest separator <= key (first child when
            # key precedes every separator).
            idx = max(0, bisect_right(node.keys, key) - 1)
            node = node.children[idx]
        self._count_visit(node, visited)
        return node

    def _count_visit(self, node: _Node, visited: Optional[Set[int]]) -> None:
        if visited is None:
            self.nodes_read += 1
        elif node.node_id not in visited:
            visited.add(node.node_id)
            self.nodes_read += 1

    def lookup(self, key: int, *, visited: Optional[Set[int]] = None) -> bool:
        """Standard B+ tree membership test.

        ``visited`` de-duplicates node-visit counting within one query,
        matching the jump-index accounting.
        """
        if self._root is None:
            return False
        leaf = self._descend(key, visited)
        idx = bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def find_geq(self, key: int, *, visited: Optional[Set[int]] = None) -> Optional[int]:
        """Smallest stored key ``>= key`` a trusting reader finds.

        Follows leaf chaining when the covering leaf tops out below the
        target.  On an honest tree this is exact; on a tampered tree it
        returns whatever Mala arranged — that asymmetry versus
        :meth:`JumpIndex.find_geq` is the paper's Section 4 argument.
        """
        if self._root is None:
            return None
        leaf = self._descend(key, visited)
        while leaf is not None:
            idx = bisect_left(leaf.keys, key)
            if idx < len(leaf.keys):
                return leaf.keys[idx]
            leaf = leaf.next_leaf
            if leaf is not None:
                self._count_visit(leaf, visited)
        return None

    def leaf_keys(self) -> List[int]:
        """All keys by leaf chaining from the leftmost leaf (diagnostics)."""
        if self._root is None:
            return []
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        keys: List[int] = []
        while node is not None:
            keys.extend(node.keys)
            node = node.next_leaf
        return keys

    @property
    def height(self) -> int:
        """Levels from root to leaf (0 when empty)."""
        if self._root is None:
            return 0
        node, h = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BPlusTree(count={self.count}, height={self.height}, fanout={self.fanout})"
