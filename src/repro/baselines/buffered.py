"""The buffered-update index the paper rules out (Section 2.3).

Prior art amortizes posting-list update I/O by buffering ⟨keyword,
doc ID⟩ pairs in memory or on rewritable disk and merging them into the
real index in large batches — effective only with huge buffers (the paper
cites needing >100,000 buffered documents for 2 docs/sec on a 20 GB
collection, i.e. a half-day window between commit and index update).

For *trustworthy* indexing that window is fatal: "Mala can get rid of an
index entry while it is still in the buffer, or crash the application and
delete the recovery logs of uncommitted posting entries."

:class:`BufferedInvertedIndex` implements the scheme so the attack is
demonstrable: postings sit in process memory until ``flush_threshold``
documents accumulate, and :meth:`crash_and_wipe_buffer` is Mala crashing
the application — everything unflushed is gone, silently.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.posting_list import PostingList
from repro.worm.storage import CachedWormStore


class BufferedInvertedIndex:
    """Batch-updated inverted index with an in-memory posting buffer.

    Parameters
    ----------
    store:
        WORM store for the flushed posting lists (one list per term).
    flush_threshold:
        Documents buffered before an automatic flush.
    """

    def __init__(self, store: CachedWormStore, *, flush_threshold: int = 1000):
        self.store = store
        self.flush_threshold = flush_threshold
        self._buffer: List[Tuple[int, int]] = []  # (term_id, doc_id) log
        self._buffered_docs = 0
        self._lists: Dict[int, PostingList] = {}
        self.flushes = 0

    def add_document(self, doc_id: int, term_ids: Iterable[int]) -> None:
        """Buffer one document's postings; flush on threshold."""
        for term in set(int(t) for t in term_ids):
            self._buffer.append((term, doc_id))
        self._buffered_docs += 1
        if self._buffered_docs >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Sort the buffered log by term and merge into the WORM lists."""
        by_term: Dict[int, List[int]] = defaultdict(list)
        for term, doc_id in self._buffer:
            by_term[term].append(doc_id)
        for term in sorted(by_term):
            posting_list = self._lists.get(term)
            if posting_list is None:
                posting_list = PostingList(self.store, f"buffered/pl/{term:08d}")
                self._lists[term] = posting_list
            for doc_id in sorted(by_term[term]):
                posting_list.append(doc_id)
        self._buffer.clear()
        self._buffered_docs = 0
        self.flushes += 1

    @property
    def buffered_documents(self) -> int:
        """Documents whose postings exist only in volatile memory."""
        return self._buffered_docs

    def crash_and_wipe_buffer(self) -> int:
        """Mala crashes the indexer and deletes its recovery state.

        Returns the number of documents whose index entries are lost.
        The documents themselves are still on WORM — but without index
        entries they are, "for all practical purposes, hidden".
        """
        lost = self._buffered_docs
        self._buffer.clear()
        self._buffered_docs = 0
        return lost

    def lookup(self, term_id: int) -> List[int]:
        """Doc IDs indexed for ``term_id`` — flushed postings only.

        (A real system would also search the buffer; after Mala's crash
        there is no buffer left to search, which is the point.)
        """
        posting_list = self._lists.get(int(term_id))
        if posting_list is None:
            return []
        return posting_list.doc_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferedInvertedIndex(buffered={self._buffered_docs}, "
            f"flushes={self.flushes})"
        )
