"""Generalized Hash Tree — the fossilized exact-match index (Zhu & Hsu).

The GHT (reference [29] of the paper) is the prior trustworthy index the
paper builds on: a tree of hash-bucket nodes whose slots are write-once,
so committed entries can never be hidden.  Its limitations are exactly
why the paper invents jump indexes for posting lists (Section 4):

* **exact-match only** — no order, so no FindGeq and no zigzag skipping;
* **poor locality** — each probe hashes to an unrelated node, a random
  I/O, so "a GHT-based join would be much slower than a zigzag join on
  sorted posting lists, especially for roughly equal sized lists".

The join strategy the paper attributes to GHTs is implemented in
:func:`ght_join`: probe the GHT of the longer list with every entry of
the shorter list, counting node visits as the blocks-read metric.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.errors import IndexError_, WormViolationError


def _level_hash(key: int, level: int, width: int) -> int:
    """Per-level slot hash (splitmix-style, deterministic)."""
    x = (key * 0x9E3779B97F4A7C15 + (level + 1) * 0xD1B54A32D192ED03) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 31)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    return (x >> 16) % width


class _GhtNode:
    """One GHT node: ``width`` write-once key slots and lazy children."""

    __slots__ = ("slots", "children")

    def __init__(self, width: int):
        self.slots: List[Optional[int]] = [None] * width
        self.children: List[Optional["_GhtNode"]] = [None] * width


class GeneralizedHashTree:
    """Write-once hash tree supporting insert and exact-match lookup.

    Parameters
    ----------
    width:
        Slots (and children) per node.
    """

    def __init__(self, *, width: int = 16):
        if width < 2:
            raise IndexError_(f"width must be >= 2, got {width}")
        self.width = width
        self._root = _GhtNode(width)
        self.count = 0
        #: Node visits across operations (the random-I/O metric).
        self.nodes_read = 0

    def insert(self, key: int) -> None:
        """Insert ``key``; the slot written is write-once (fossilized).

        Collisions descend into the colliding slot's child, creating it
        on demand — node creation and slot assignment are both WORM-legal
        appends.
        """
        node = self._root
        level = 0
        while True:
            slot = _level_hash(key, level, self.width)
            stored = node.slots[slot]
            if stored is None:
                node.slots[slot] = key
                self.count += 1
                return
            if stored == key:
                raise WormViolationError(
                    f"key {key} is already fossilized in the GHT"
                )
            if node.children[slot] is None:
                node.children[slot] = _GhtNode(self.width)
            node = node.children[slot]
            level += 1

    def lookup(self, key: int, *, visited: Optional[Set[int]] = None) -> bool:
        """Exact-match probe; write-once slots make false negatives impossible."""
        node = self._root
        level = 0
        while node is not None:
            if visited is None:
                self.nodes_read += 1
            elif id(node) not in visited:
                visited.add(id(node))
                self.nodes_read += 1
            slot = _level_hash(key, level, self.width)
            stored = node.slots[slot]
            if stored == key:
                return True
            if stored is None:
                return False
            node = node.children[slot]
            level += 1
        return False

    @property
    def depth(self) -> int:
        """Deepest chain of nodes (probe-cost bound)."""
        def walk(node: Optional[_GhtNode]) -> int:
            if node is None:
                return 0
            children = [c for c in node.children if c is not None]
            return 1 + (max(map(walk, children)) if children else 0)

        return walk(self._root)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneralizedHashTree(count={self.count}, width={self.width})"


def ght_join(short_list: Iterable[int], ght: "GeneralizedHashTree") -> List[int]:
    """Join by probing the longer list's GHT with every short-list entry.

    Returns the intersection.  ``ght.nodes_read`` accumulates the probe
    cost; compare with a zigzag join's blocks read to reproduce the
    paper's qualitative Section 4 argument.
    """
    return [key for key in short_list if ght.lookup(key)]
