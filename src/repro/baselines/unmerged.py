"""The paper's "ideal" baseline: unmerged lists + per-term B+ trees.

Figure 8(c)'s reference curve and the Section 6 conclusion numbers
compare the trustworthy scheme against "a baseline approach that uses a
multi-GB storage server cache for posting lists, does not merge posting
lists, and keeps a separate B+ tree for each posting list to speed up
conjunctive queries".  It is fast — unmerged lists mean no false-positive
scanning, B+ trees have bigger fanout than jump indexes — but:

* document insertion costs ~1 random I/O per *posting* unless the cache
  is enormous (Figure 2's uncached/under-cached regime), and
* it is **not trustworthy**: the B+ trees are attackable (Figure 6).

:class:`UnmergedBaselineIndex` implements it with the same node-visit
accounting as the trustworthy structures so speedup ratios compare like
with like.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.baselines.bplus_tree import BPlusTree
from repro.errors import QueryError


class UnmergedBaselineIndex:
    """One B+ tree per term over unmerged posting lists.

    Parameters
    ----------
    fanout:
        B+ tree fanout; the paper's 8 KB blocks over 8-byte entries give
        ~1024, the default.
    """

    def __init__(self, *, fanout: int = 1024):
        self.fanout = fanout
        self._trees: Dict[int, BPlusTree] = {}
        self.doc_count = 0

    def add_document(self, doc_id: int, term_ids: Iterable[int]) -> None:
        """Index one document: append its ID to every term's tree."""
        for term in set(int(t) for t in term_ids):
            tree = self._trees.get(term)
            if tree is None:
                tree = BPlusTree(fanout=self.fanout)
                self._trees[term] = tree
            tree.insert(doc_id)
        self.doc_count += 1

    def tree(self, term_id: int) -> BPlusTree:
        """The B+ tree for ``term_id`` (raises for absent terms)."""
        try:
            return self._trees[term_id]
        except KeyError:
            raise QueryError(f"term {term_id} has no postings") from None

    def posting_length(self, term_id: int) -> int:
        """Number of documents containing ``term_id``."""
        tree = self._trees.get(term_id)
        return len(tree) if tree is not None else 0

    # ------------------------------------------------------------------
    # conjunctive queries
    # ------------------------------------------------------------------
    def conjunctive_query(self, term_ids: Sequence[int]) -> Tuple[List[int], int]:
        """Documents containing *all* terms, plus blocks (nodes) read.

        Joins shortest-lists-first, as the paper does: zigzag the two
        shortest via their B+ trees, then probe each subsequent tree with
        the shrinking partial result.
        """
        terms = [int(t) for t in dict.fromkeys(term_ids)]
        if not terms:
            raise QueryError("conjunctive query needs at least one term")
        if any(t not in self._trees for t in terms):
            return [], 0
        terms.sort(key=self.posting_length)
        visited: Dict[int, Set[int]] = {t: set() for t in terms}
        first = self._trees[terms[0]]
        if len(terms) == 1:
            # Single term: scan the leaves (each leaf one block).
            keys = first.leaf_keys()
            blocks = (len(keys) + self.fanout - 1) // self.fanout
            return keys, blocks
        result = self._zigzag_trees(terms[0], terms[1], visited)
        for term in terms[2:]:
            if not result:
                break
            tree = self._trees[term]
            result = [
                v
                for v in result
                if tree.find_geq(v, visited=visited[term]) == v
            ]
        blocks = sum(len(v) for v in visited.values())
        return result, blocks

    def _zigzag_trees(
        self, term1: int, term2: int, visited: Dict[int, Set[int]]
    ) -> List[int]:
        """Zigzag join (Figure 5) between two B+-tree-indexed lists."""
        t1, t2 = self._trees[term1], self._trees[term2]
        out: List[int] = []
        top1 = t1.find_geq(0, visited=visited[term1])
        top2 = t2.find_geq(0, visited=visited[term2])
        while top1 is not None and top2 is not None:
            if top1 < top2:
                top1 = t1.find_geq(top2, visited=visited[term1])
            elif top2 < top1:
                top2 = t2.find_geq(top1, visited=visited[term2])
            else:
                out.append(top1)
                top1 = t1.find_geq(top1 + 1, visited=visited[term1])
                top2 = t2.find_geq(top2 + 1, visited=visited[term2])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnmergedBaselineIndex(terms={len(self._trees)}, "
            f"docs={self.doc_count})"
        )
