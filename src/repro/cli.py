"""Command-line interface: a compliance archive in a single journal file.

Usage (also available as ``python -m repro``)::

    repro-search init    --archive records.worm [--num-lists N]
                         [--branching B] [--retention PERIOD] [--shards K]
                         [--tail-max-docs N] [--seal-strategy uniform|popular|epoch]
                         [--seal-popular K] [--merge-at N]
    repro-search index   --archive records.worm --text "..." [--text "..."]
    repro-search index   --archive records.worm file1.txt ... [--batch-size N]
    repro-search search  --archive records.worm "stewart waksal" [--top-k K]
                         [--verify] [--workers W] [--trace]
                         [--read-cache] [--cache-policy lru|2q|slru]
                         [--cache-mb MB] [--repeat N]
                         [--metrics-json out.json]
    repro-search audit   --archive records.worm
    repro-search stats   --archive records.worm
    repro-search metrics --archive records.worm [--json out.json]
    repro-search profile --archive records.worm "+a +b +c" --query-file log.txt
    repro-search dispose --archive records.worm --now TIME
                         [--fsync] [--group-commit N]
    repro-search verify-journal --archive records.worm
    repro-search segments --archive records.worm [--seal] [--merge]
    repro-search serve   --archive records.worm [--host H] [--port P]
                         [--rate R] [--burst B] [--max-inflight N]
                         [--max-queue Q] [--fsync] [--group-commit N]
                         [--seal-interval S]
    repro-search loadtest [--clients N] [--duration S] [--mix F]
                          [--arrival-rate R] [--seed S] [--shards K]
                          [--tail-max-docs N]
                          [--endpoint http://HOST:PORT]
                          [--out BENCH_LOADTEST.json] [--compare BASELINE]
    repro-search capacity --snapshot BENCH_LOADTEST.json
                          --target-qps QPS --target-p99-ms MS

The archive is one append-only journal file holding the entire WORM
device: documents, posting lists, jump pointers, commit-time log,
incident and disposition logs.  The engine configuration is committed
into the archive at ``init`` time (it shapes committed state, so it must
not drift between sessions).

With ``init --shards K`` (K > 1) the archive is partitioned: the main
journal becomes the coordinator (configuration, global document map,
global incident log) and each shard lives in a sibling journal
``records.worm.shard00`` … ``records.worm.shard{K-1}``.  Every other
subcommand detects the sharded layout from the committed configuration;
queries fan out across the shards in parallel.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.errors import ReproError, TamperDetectedError
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.sharding.engine import ShardedSearchEngine
from repro.worm.persistent import JournaledWormDevice
from repro.worm.storage import CachedWormStore

_CONFIG_FILE = "archive/config"


def _shard_path(path: str, shard_id: int) -> str:
    return f"{path}.shard{shard_id:02d}"


def _write_config(
    store: CachedWormStore, config: EngineConfig, shards: int
) -> None:
    payload = json.dumps(
        {
            "num_lists": config.num_lists,
            "block_size": config.block_size,
            "branching": config.branching,
            "ranking": config.ranking,
            "retention_period": config.retention_period,
            "shards": shards,
            "tail_max_docs": config.tail_max_docs,
            "seal_strategy": config.seal_strategy,
            "seal_popular_terms": config.seal_popular_terms,
            "merge_at_segments": config.merge_at_segments,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    store.create_file(_CONFIG_FILE).append_record(payload)


def _read_config(store: CachedWormStore):
    worm_file = store.open_file(_CONFIG_FILE)
    payload = b"".join(
        store.peek_block(_CONFIG_FILE, b) for b in range(worm_file.num_blocks)
    )
    data = json.loads(payload.decode("utf-8"))
    config = EngineConfig(
        num_lists=data["num_lists"],
        block_size=data["block_size"],
        branching=data["branching"],
        ranking=data["ranking"],
        retention_period=data["retention_period"],
        # Tail-mode fields postdate some archives; absent keys mean the
        # archive was built legacy-synchronous (tail disabled).
        tail_max_docs=data.get("tail_max_docs"),
        seal_strategy=data.get("seal_strategy", "uniform"),
        seal_popular_terms=data.get("seal_popular_terms", 8),
        merge_at_segments=data.get("merge_at_segments", 8),
    )
    return config, data.get("shards", 1)


class _ArchiveHandle:
    """Closer for a sharded archive: engine pool plus every journal."""

    def __init__(self, devices, engine):
        self._devices = devices
        self._engine = engine

    def close(self) -> None:
        self._engine.close()
        for device in self._devices:
            device.close()


def open_archive(
    path: str,
    *,
    create: Optional[EngineConfig] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    batch_size: int = 64,
    fsync: bool = False,
    group_commit: int = 1,
    read_cache: bool = False,
    cache_policy: str = "lru",
    cache_mb: float = 8.0,
    executor: str = "thread",
):
    """Open (or with ``create``, initialize) an archive at ``path``.

    Returns ``(engine, handle)``; call ``handle.close()`` when done.
    ``shards`` only applies at ``create`` time — reopening reads the
    shard count from the committed configuration.  ``fsync`` /
    ``group_commit`` are per-session durability knobs applied to every
    journal the archive opens (coordinator and shards alike);
    ``read_cache`` / ``cache_policy`` / ``cache_mb`` likewise enable the
    session-scoped read-path cache (per shard on a sharded archive) —
    none of these is persisted, because none shapes committed state.
    ``executor`` selects the query fan-out of a sharded archive:
    ``"thread"`` (default) or ``"process"`` (per-shard worker processes
    reopening the shard journals; also a session knob).
    """
    device = JournaledWormDevice(path, fsync=fsync, group_commit=group_commit)
    store = CachedWormStore(None, device=device)
    if create is not None:
        if device.exists(_CONFIG_FILE):
            raise ReproError(f"archive '{path}' is already initialized")
        _write_config(store, create, shards)
        config = create
    else:
        if not device.exists(_CONFIG_FILE):
            raise ReproError(
                f"'{path}' is not an initialized archive (run 'init' first)"
            )
        config, shards = _read_config(store)
    if read_cache:
        config = replace(
            config,
            read_cache=True,
            cache_policy=cache_policy,
            read_cache_mb=cache_mb,
        )
    if shards <= 1:
        if executor == "process":
            raise ReproError(
                "executor='process' needs a sharded archive "
                "(init with --shards >= 2)"
            )
        engine = TrustworthySearchEngine(config, store=store)
        return engine, device
    devices = [device]

    def shard_store(shard_id: int) -> CachedWormStore:
        shard_device = JournaledWormDevice(
            _shard_path(path, shard_id),
            fsync=fsync,
            group_commit=group_commit,
        )
        devices.append(shard_device)
        return CachedWormStore(None, device=shard_device)

    engine = ShardedSearchEngine(
        config,
        num_shards=shards,
        store_factory=shard_store,
        coordinator_store=store,
        max_workers=workers,
        batch_size=batch_size,
        executor=executor,
        shard_paths=[_shard_path(path, i) for i in range(shards)],
    )
    return engine, _ArchiveHandle(devices, engine)


def _write_metrics_json(engine, path: str, traces=()) -> None:
    """Write one stable ``repro-metrics/v1`` JSON snapshot to ``path``."""
    from repro.observability import metrics_document

    doc = metrics_document(engine, traces=traces)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_init(args) -> int:
    if args.shards < 1:
        print(f"--shards must be >= 1 (got {args.shards})", file=sys.stderr)
        return 2
    config = EngineConfig(
        num_lists=args.num_lists,
        block_size=args.block_size,
        branching=args.branching,
        retention_period=args.retention,
        tail_max_docs=args.tail_max_docs or None,
        seal_strategy=args.seal_strategy,
        seal_popular_terms=args.seal_popular,
        merge_at_segments=args.merge_at or None,
    )
    engine, handle = open_archive(
        args.archive, create=config, shards=args.shards
    )
    handle.close()
    jump = f"B={config.branching}" if config.branching else "disabled"
    layout = (
        f", {args.shards} shards" if args.shards > 1 else ""
    )
    tail = (
        f", tail seals at {config.tail_max_docs} docs "
        f"({config.seal_strategy})"
        if config.tail_max_docs is not None
        else ""
    )
    print(
        f"initialized archive '{args.archive}': {config.num_lists} merged "
        f"lists, {config.block_size} B blocks, jump index {jump}, "
        f"retention {config.retention_period or 'forever'}{layout}{tail}"
    )
    return 0


def _cmd_index(args) -> int:
    engine, archive = open_archive(
        args.archive,
        batch_size=args.batch_size,
        fsync=args.fsync,
        group_commit=args.group_commit,
    )
    try:
        texts: List[str] = list(args.text or [])
        for file_name in args.files:
            try:
                with open(file_name, "r", encoding="utf-8") as handle:
                    texts.append(handle.read())
            except OSError as exc:
                print(f"cannot read '{file_name}': {exc}", file=sys.stderr)
                return 2
        if not texts:
            print("nothing to index: pass --text or file paths", file=sys.stderr)
            return 2
        if args.commit_time is not None and len(texts) > 1:
            print(
                "--commit-time requires a single document", file=sys.stderr
            )
            return 2
        for start in range(0, len(texts), args.batch_size):
            batch = texts[start:start + args.batch_size]
            commit_times = (
                None if args.commit_time is None else [args.commit_time]
            )
            doc_ids = engine.index_batch(batch, commit_times=commit_times)
            for doc_id, text in zip(doc_ids, batch):
                preview = " ".join(text.split())[:60]
                print(f"committed doc {doc_id}: {preview}")
        if args.metrics_json:
            _write_metrics_json(engine, args.metrics_json)
            print(f"wrote metrics snapshot to {args.metrics_json}")
        return 0
    finally:
        archive.close()


def _cmd_search(args) -> int:
    if args.cache_mb <= 0:
        print(f"--cache-mb must be positive (got {args.cache_mb})", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"--repeat must be >= 1 (got {args.repeat})", file=sys.stderr)
        return 2
    engine, archive = open_archive(
        args.archive,
        workers=args.workers,
        read_cache=args.read_cache,
        cache_policy=args.cache_policy,
        cache_mb=args.cache_mb,
        executor=args.executor,
    )
    want_trace = args.trace or args.metrics_json
    trace = None
    try:
        try:
            # --repeat re-runs the query in one session; with
            # --read-cache the later runs hit the result cache, which is
            # what the printed (last-run) trace demonstrates.
            for _ in range(args.repeat):
                if want_trace:
                    from repro.observability import QueryTrace

                    trace = QueryTrace(args.query)
                if args.verify:
                    results, report = engine.search_with_incident_handling(
                        args.query, top_k=args.top_k, trace=trace
                    )
                    if not report.ok:
                        print(
                            f"WARNING: tampering detected and handled "
                            f"({len(report.violations)} violations logged)",
                            file=sys.stderr,
                        )
                else:
                    results = engine.search(
                        args.query, top_k=args.top_k, trace=trace
                    )
        except TamperDetectedError as exc:
            print(f"TAMPERING DETECTED: {exc}", file=sys.stderr)
            return 3
        if results:
            for hit in results:
                doc = engine.documents.get(hit.doc_id)
                preview = " ".join(doc.text.split())[:70]
                print(f"doc {hit.doc_id}  score {hit.score:6.2f}  t={doc.commit_time}  {preview}")
        else:
            print("no results")
        if args.trace and trace is not None:
            print(trace.pretty())
        if args.metrics_json:
            _write_metrics_json(
                engine, args.metrics_json, traces=[trace] if trace else []
            )
            print(f"wrote metrics snapshot to {args.metrics_json}")
        return 0
    finally:
        archive.close()


def _cmd_metrics(args) -> int:
    """Render the archive's metrics (Prometheus text, optionally JSON)."""
    from repro.observability import engine_metrics

    engine, archive = open_archive(args.archive)
    try:
        registry = engine_metrics(engine)
        if args.json:
            _write_metrics_json(engine, args.json)
            print(f"wrote metrics snapshot to {args.json}", file=sys.stderr)
        sys.stdout.write(registry.render_prometheus())
        return 0
    finally:
        archive.close()


def _cmd_audit(args) -> int:
    from repro.adversary.detection import full_engine_audit, full_sharded_audit

    engine, archive = open_archive(args.archive)
    try:
        if isinstance(engine, ShardedSearchEngine):
            reports = full_sharded_audit(engine)
        else:
            reports = full_engine_audit(engine)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(
                    [r.to_dict() for r in reports], handle, indent=2
                )
            print(f"wrote {len(reports)} audit reports to {args.json}")
        bad = [r for r in reports if not r.ok]
        checked = sum(r.entries_checked for r in reports)
        print(
            f"audited {len(reports)} subjects ({checked} entries): "
            f"{len(bad)} with violations"
        )
        for report in bad:
            print(f"  {report.subject}:")
            for violation in report.violations:
                print(f"    - {violation}")
        incident_count = len(engine.incidents)
        if incident_count:
            print(f"incident log: {incident_count} recorded incidents")
            for incident in engine.incidents.incidents():
                print(
                    f"  #{incident.seq} [{incident.kind}] {incident.location} "
                    f"quarantined={list(incident.quarantined_doc_ids)}"
                )
        return 1 if bad else 0
    finally:
        archive.close()


def _cmd_stats(args) -> int:
    engine, archive = open_archive(args.archive)
    try:
        stats = engine.archive_stats()
        width = max(len(k) for k in stats)
        for key, value in stats.items():
            print(f"{key.rjust(width)}  {value}")
        return 0
    finally:
        archive.close()


def _cmd_profile(args) -> int:
    from repro.search.profiling import (
        profile_query,
        profile_sharded_query,
        recommend_configuration,
    )

    engine, archive = open_archive(args.archive)
    try:
        queries: List[str] = list(args.query or [])
        if args.query_file:
            try:
                with open(args.query_file, "r", encoding="utf-8") as handle:
                    queries.extend(
                        line.strip() for line in handle if line.strip()
                    )
            except OSError as exc:
                print(
                    f"cannot read '{args.query_file}': {exc}", file=sys.stderr
                )
                return 2
        if not queries:
            print("nothing to profile: pass queries or --query-file", file=sys.stderr)
            return 2
        sharded = isinstance(engine, ShardedSearchEngine)
        profiles = []
        for raw in queries:
            if sharded:
                profile = profile_sharded_query(engine, raw)
            else:
                profile = profile_query(engine, raw)
            profiles.append(profile)
            print(profile.summary())
        print()
        print(recommend_configuration(profiles))
        return 0
    finally:
        archive.close()


def _cmd_verify_journal(args) -> int:
    """fsck for the archive: scan every journal without applying state.

    Works even on archives too corrupt to open — scanning checks
    framing, CRCs, sequence numbers, and opcodes record by record.
    """
    from repro.worm.persistent import scan_journal

    if not os.path.exists(args.archive):
        print(f"no archive at '{args.archive}'", file=sys.stderr)
        return 2
    paths = [args.archive]
    shard_id = 0
    while os.path.exists(_shard_path(args.archive, shard_id)):
        paths.append(_shard_path(args.archive, shard_id))
        shard_id += 1
    tampered = 0
    for path in paths:
        report = scan_journal(path)
        print(report.summary())
        if not report.ok:
            tampered += 1
    scanned = "journal" if len(paths) == 1 else f"{len(paths)} journals"
    if tampered:
        print(
            f"verified {scanned}: {tampered} TAMPERED", file=sys.stderr
        )
        return 1
    print(f"verified {scanned}: clean")
    return 0


def _cmd_loadtest(args) -> int:
    """Run the whole-system load harness against an ephemeral archive."""
    from repro.loadtest import (
        LoadTestConfig,
        compare_snapshots,
        read_snapshot,
        run_load_test,
    )
    from repro.loadtest.snapshot import snapshot_document, write_snapshot
    from repro.observability import export_loadtest

    if args.clients < 1:
        print(f"--clients must be >= 1 (got {args.clients})", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print(f"--duration must be positive (got {args.duration})", file=sys.stderr)
        return 2
    if not 0.0 <= args.mix <= 1.0:
        print(f"--mix must be in [0, 1] (got {args.mix})", file=sys.stderr)
        return 2
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        print(
            f"--arrival-rate must be positive (got {args.arrival_rate})",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1 (got {args.shards})", file=sys.stderr)
        return 2
    if args.docs < 1:
        print(f"--docs must be >= 1 (got {args.docs})", file=sys.stderr)
        return 2
    config = LoadTestConfig(
        clients=args.clients,
        duration=args.duration,
        mix=args.mix,
        arrival_rate=args.arrival_rate,
        seed=args.seed,
        preload_docs=args.docs,
        drift_stride=args.drift,
    )
    if args.endpoint:
        # Drive a running archive service over HTTP: same deterministic
        # plan, but latency now includes the wire, admission control,
        # and the service's own reader-writer serialisation.
        from repro.loadtest.transport import HTTPTransport

        transport = HTTPTransport(args.endpoint)
        try:
            result = run_load_test(transport, config)
        finally:
            transport.close()
    elif args.executor == "process":
        # Process workers reopen the shard journals in their own
        # interpreters, so the ephemeral archive must be file-backed:
        # build it in a temp directory that dies with the run.
        import tempfile

        if args.shards < 2:
            print(
                "--executor process needs --shards >= 2",
                file=sys.stderr,
            )
            return 2
        engine_config = EngineConfig(
            num_lists=256,
            block_size=4096,
            branching=None,
            tail_max_docs=args.tail_max_docs or None,
        )
        with tempfile.TemporaryDirectory(prefix="repro-loadtest-") as tmp:
            engine, archive = open_archive(
                os.path.join(tmp, "archive.worm"),
                create=engine_config,
                shards=args.shards,
                workers=args.workers,
                executor="process",
            )
            try:
                result = run_load_test(engine, config)
                export_loadtest(engine.metrics, result)
            finally:
                archive.close()
    else:
        # An ephemeral in-memory archive: the harness measures the
        # engine, not a disk layout, and every run starts from the same
        # state.
        engine_config = EngineConfig(
            num_lists=256,
            block_size=4096,
            branching=None,
            tail_max_docs=args.tail_max_docs or None,
        )
        engine = ShardedSearchEngine(
            engine_config,
            num_shards=args.shards,
            max_workers=args.workers,
        )
        try:
            result = run_load_test(engine, config)
            export_loadtest(engine.metrics, result)
        finally:
            engine.close()
    print(result.summary())
    for message in result.error_messages:
        print(f"  error: {message}", file=sys.stderr)
    if args.out:
        write_snapshot(result, args.out)
        print(f"wrote load-test snapshot to {args.out}")
    if args.compare:
        baseline = read_snapshot(args.compare)
        violations, report = compare_snapshots(
            baseline, snapshot_document(result)
        )
        for line in report:
            print(line)
        if violations:
            print(f"{len(violations)} regression(s) beyond tolerance:")
            for violation in violations:
                print(f"  - {violation}", file=sys.stderr)
            return 1
        print("all banded metrics within tolerance of the baseline")
    return 0


def _cmd_capacity(args) -> int:
    """Predict shards x workers from committed load-test snapshots."""
    from repro.core.cost_model import predict_capacity
    from repro.loadtest import read_snapshot

    if args.target_qps <= 0:
        print(
            f"--target-qps must be positive (got {args.target_qps})",
            file=sys.stderr,
        )
        return 2
    if args.target_p99_ms <= 0:
        print(
            f"--target-p99-ms must be positive (got {args.target_p99_ms})",
            file=sys.stderr,
        )
        return 2
    snapshots = [read_snapshot(path) for path in args.snapshot]
    plan = predict_capacity(snapshots, args.target_qps, args.target_p99_ms)
    print(plan.summary())
    return 0


def _cmd_dispose(args) -> int:
    # Disposition-log appends and WORM deletes are exactly the writes
    # that must not be lost; honour the same durability knobs as index.
    engine, archive = open_archive(
        args.archive,
        fsync=args.fsync,
        group_commit=args.group_commit,
    )
    try:
        disposed = engine.dispose_expired(now=args.now)
        if disposed:
            print(f"disposed {len(disposed)} expired documents: {disposed}")
        else:
            print("nothing past its retention horizon")
        return 0
    finally:
        archive.close()


def _print_segment_table(info, indent: str = "") -> None:
    print(
        f"{indent}tail: {info['tail_docs']} docs, "
        f"{info['tail_postings']} postings, "
        f"generation {info['tail_generation']}"
    )
    if not info["segments"]:
        print(f"{indent}no sealed segments")
        return
    print(
        f"{indent}{'seg':>5} {'docs':>12} {'count':>7} "
        f"{'strategy':<8} {'popular':>7} merged-from"
    )
    for seg in info["segments"]:
        merged = (
            ",".join(str(s) for s in seg["merged_from"])
            if seg["merged_from"]
            else "-"
        )
        print(
            f"{indent}{seg['seg_no']:>5} "
            f"{seg['first_doc']:>5}..{seg['last_doc']:<5} "
            f"{seg['doc_count']:>7} {seg['strategy']:<8} "
            f"{seg['popular_terms']:>7} {merged}"
        )


def _cmd_segments(args) -> int:
    """Show — and optionally advance — the tail/segment layout."""
    # Seals and merges append segment lists and manifest records; honour
    # the same durability knobs as index.
    engine, archive = open_archive(
        args.archive, fsync=args.fsync, group_commit=args.group_commit
    )
    try:
        if not getattr(engine, "tail_enabled", False):
            print(
                "archive is not in tail mode (init with --tail-max-docs)",
                file=sys.stderr,
            )
            return 2
        if args.seal:
            sealed = engine.seal_tail()
            print(f"sealed tail into segment(s): {sealed}")
        if args.merge:
            merged = engine.merge_segments()
            print(f"merged live segments into: {merged}")
        info = engine.segments_info()
        if "shards" in info:
            for shard_id, shard_info in enumerate(info["shards"]):
                print(f"shard {shard_id}:")
                _print_segment_table(shard_info, indent="  ")
        else:
            _print_segment_table(info)
        return 0
    finally:
        archive.close()


def _cmd_serve(args) -> int:
    """Run the long-lived archive service until a signal drains it."""
    import signal
    import threading

    from repro.service import AdmissionConfig, ServiceConfig, serve_archive

    if not 0 <= args.port <= 65535:
        print(f"--port must be in [0, 65535] (got {args.port})", file=sys.stderr)
        return 2
    if args.rate < 0:
        print(f"--rate must be >= 0 (got {args.rate})", file=sys.stderr)
        return 2
    if args.seal_interval < 0:
        print(
            f"--seal-interval must be >= 0 (got {args.seal_interval})",
            file=sys.stderr,
        )
        return 2
    config = ServiceConfig(
        admission=AdmissionConfig(
            rate=None if args.rate == 0 else args.rate,
            burst=args.burst,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            queue_timeout=args.queue_timeout,
        ),
        request_timeout=args.request_timeout,
        log_requests=args.log_requests,
        seal_interval=args.seal_interval,
    )
    try:
        server = serve_archive(
            args.archive,
            host=args.host,
            port=args.port,
            config=config,
            workers=args.workers,
            fsync=args.fsync,
            group_commit=args.group_commit,
            read_cache=args.read_cache,
            cache_policy=args.cache_policy,
            cache_mb=args.cache_mb,
            executor=args.executor,
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    stop = threading.Event()

    def _trigger_drain(_signum, _frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _trigger_drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server.start()
    rate = "off" if config.admission.rate is None else (
        f"{config.admission.rate:g}/s (burst {config.admission.burst:g})"
    )
    print(
        f"serving archive '{args.archive}' at {server.endpoint} — "
        f"rate limit {rate}, inflight {config.admission.max_inflight}, "
        f"queue {config.admission.max_queue}; SIGTERM drains"
    )
    sys.stdout.flush()
    try:
        while not stop.wait(timeout=0.2):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("draining: rejecting new work, finishing in-flight requests ...")
    sys.stdout.flush()
    server.drain()
    print("drained: journals synced, archive closed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Trustworthy keyword search over a WORM archive",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="initialize a new archive")
    init.add_argument("--archive", required=True, help="journal file path")
    init.add_argument("--num-lists", type=int, default=1024)
    init.add_argument("--block-size", type=int, default=8192)
    init.add_argument(
        "--branching", type=int, default=32,
        help="jump-index branching factor; 0 disables jump indexes",
    )
    init.add_argument(
        "--retention", type=int, default=None,
        help="retention period in commit-time units (default: forever)",
    )
    init.add_argument(
        "--shards", type=int, default=1,
        help="partition the archive across K parallel shards (default: 1)",
    )
    init.add_argument(
        "--tail-max-docs", type=int, default=0,
        help="enable the write–read decoupled tail: buffer up to N docs "
        "in the in-memory tail before sealing a WORM segment "
        "(default: 0 = legacy synchronous posting-list appends)",
    )
    init.add_argument(
        "--seal-strategy", choices=["uniform", "popular", "epoch"],
        default="uniform",
        help="merging strategy applied when sealing a segment: uniform "
        "hash, keep-popular-unmerged (by tail term counts), or epoch "
        "(popularity from the previous seal) (default: uniform)",
    )
    init.add_argument(
        "--seal-popular", type=int, default=8, metavar="K",
        help="with popular/epoch sealing, terms kept unmerged (default: 8)",
    )
    init.add_argument(
        "--merge-at", type=int, default=8, metavar="N",
        help="auto-merge live segments once N accumulate; 0 disables "
        "background merging (default: 8)",
    )
    init.set_defaults(func=_cmd_init)

    index = sub.add_parser("index", help="commit and index documents")
    index.add_argument("--archive", required=True)
    index.add_argument("--text", action="append", help="inline document text")
    index.add_argument("files", nargs="*", help="text files to commit")
    index.add_argument(
        "--commit-time", type=int, default=None,
        help="explicit commit timestamp (default: engine clock)",
    )
    index.add_argument(
        "--batch-size", type=int, default=64,
        help="documents committed per batched index pass (default: 64)",
    )
    index.add_argument(
        "--fsync", action="store_true",
        help="fsync the journal(s) while indexing (durable but slower)",
    )
    index.add_argument(
        "--group-commit", type=int, default=64,
        help="with --fsync, records per fsync batch (default: 64; "
        "1 = fsync every record)",
    )
    index.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write a metrics snapshot (repro-metrics/v1 JSON) after indexing",
    )
    index.set_defaults(func=_cmd_index)

    search = sub.add_parser(
        "search", aliases=["query"], help="query the archive"
    )
    search.add_argument("--archive", required=True)
    search.add_argument("query", help="keywords; '+a +b' = conjunctive; '@t1..t2' = time range")
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument(
        "--verify", action="store_true",
        help="verify results against WORM documents; quarantine stuffing",
    )
    search.add_argument(
        "--workers", type=int, default=None,
        help="query fan-out threads on a sharded archive (default: one "
        "per shard)",
    )
    search.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="sharded query fan-out: 'thread' shares the interpreter, "
        "'process' spawns one worker process per shard (default: thread)",
    )
    search.add_argument(
        "--trace", action="store_true",
        help="print the per-stage query trace (spans with micro-costs)",
    )
    search.add_argument(
        "--read-cache", action="store_true",
        help="enable the session-scoped read-path cache (decoded blocks, "
        "query results, jump-pointer memo)",
    )
    search.add_argument(
        "--cache-policy", choices=["lru", "2q", "slru"], default="lru",
        help="read-cache eviction policy (default: lru)",
    )
    search.add_argument(
        "--cache-mb", type=float, default=8.0,
        help="read-cache decoded-block budget in MB (default: 8)",
    )
    search.add_argument(
        "--repeat", type=int, default=1,
        help="run the query N times in one session (with --read-cache the "
        "later runs are served from the result cache)",
    )
    search.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write a metrics snapshot (with the query trace) after searching",
    )
    search.set_defaults(func=_cmd_search)

    audit = sub.add_parser("audit", help="full tamper audit of the archive")
    audit.add_argument("--archive", required=True)
    audit.add_argument(
        "--json", help="also write the reports to a JSON case file"
    )
    audit.set_defaults(func=_cmd_audit)

    stats = sub.add_parser("stats", help="operational archive summary")
    stats.add_argument("--archive", required=True)
    stats.set_defaults(func=_cmd_stats)

    metrics = sub.add_parser(
        "metrics",
        help="render archive metrics (Prometheus text; --json for a snapshot)",
    )
    metrics.add_argument("--archive", required=True)
    metrics.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the repro-metrics/v1 JSON snapshot to PATH",
    )
    metrics.set_defaults(func=_cmd_metrics)

    profile = sub.add_parser(
        "profile", help="measure query costs and recommend a configuration"
    )
    profile.add_argument("--archive", required=True)
    profile.add_argument("query", nargs="*", help="queries to profile")
    profile.add_argument(
        "--query-file", help="file with one query per line (e.g. a query log)"
    )
    profile.set_defaults(func=_cmd_profile)

    verify_journal = sub.add_parser(
        "verify-journal",
        help="fsck-style integrity scan of the archive journal(s)",
    )
    verify_journal.add_argument("--archive", required=True)
    verify_journal.set_defaults(func=_cmd_verify_journal)

    dispose = sub.add_parser(
        "dispose", help="dispose of documents past their retention horizon"
    )
    dispose.add_argument("--archive", required=True)
    dispose.add_argument("--now", type=int, required=True, help="current time")
    dispose.add_argument(
        "--fsync", action="store_true",
        help="fsync the journal(s) while disposing (disposition records "
        "and WORM deletes are writes that must not be lost)",
    )
    dispose.add_argument(
        "--group-commit", type=int, default=1,
        help="with --fsync, records per fsync batch (default: 1 = fsync "
        "every record; dispositions are few and precious)",
    )
    dispose.set_defaults(func=_cmd_dispose)

    segments = sub.add_parser(
        "segments",
        help="show the tail/segment layout of a tail-mode archive "
        "(optionally seal the tail or merge live segments)",
    )
    segments.add_argument("--archive", required=True)
    segments.add_argument(
        "--seal", action="store_true",
        help="seal the current tail into a WORM segment first",
    )
    segments.add_argument(
        "--merge", action="store_true",
        help="merge all live segments into one (after --seal, if both)",
    )
    segments.add_argument(
        "--fsync", action="store_true",
        help="fsync the journal(s) while sealing/merging",
    )
    segments.add_argument(
        "--group-commit", type=int, default=64,
        help="with --fsync, records per fsync batch (default: 64)",
    )
    segments.set_defaults(func=_cmd_segments)

    serve = sub.add_parser(
        "serve",
        help="serve the archive over HTTP (search/ingest/audit/metrics) "
        "until drained by SIGTERM",
    )
    serve.add_argument("--archive", required=True)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free one (default: 8080)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="query fan-out threads on a sharded archive (default: one "
        "per shard)",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="sharded query fan-out: 'thread' shares the interpreter, "
        "'process' spawns one worker process per shard (default: thread)",
    )
    serve.add_argument(
        "--rate", type=float, default=200.0,
        help="per-tenant sustained requests/second; 0 disables rate "
        "limiting (default: 200)",
    )
    serve.add_argument(
        "--burst", type=float, default=400.0,
        help="per-tenant burst allowance (default: 400)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="concurrent requests executing (default: 8)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="requests allowed to wait for a slot before 503 (default: 64)",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=5.0,
        help="longest a queued request waits before being shed (default: 5s)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=5.0,
        help="socket read / keep-alive idle timeout (default: 5s)",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync the journal(s) on ingest (durable but slower)",
    )
    serve.add_argument(
        "--group-commit", type=int, default=64,
        help="with --fsync, records per fsync batch (default: 64)",
    )
    serve.add_argument(
        "--read-cache", action="store_true",
        help="enable the read-path cache for the service session",
    )
    serve.add_argument(
        "--cache-policy", choices=["lru", "2q", "slru"], default="lru",
        help="read-cache eviction policy (default: lru)",
    )
    serve.add_argument(
        "--cache-mb", type=float, default=8.0,
        help="read-cache decoded-block budget in MB (default: 8)",
    )
    serve.add_argument(
        "--log-requests", action="store_true",
        help="echo one access-log line per request to stderr",
    )
    serve.add_argument(
        "--seal-interval", type=float, default=0.0, metavar="S",
        help="on a tail-mode archive, background-seal the tail every S "
        "seconds so quiet periods still bound tail residency "
        "(default: 0 = size-triggered sealing only)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive concurrent mixed search/ingest traffic and measure "
        "QPS, latency percentiles, and ingest throughput",
    )
    loadtest.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads (default: 4)",
    )
    loadtest.add_argument(
        "--duration", type=float, default=5.0,
        help="run length in seconds (default: 5)",
    )
    loadtest.add_argument(
        "--mix", type=float, default=0.9,
        help="fraction of operations that are searches; the rest are "
        "ingests (default: 0.9)",
    )
    loadtest.add_argument(
        "--arrival-rate", type=float, default=None,
        help="total ops/second for open-loop mode (latency then includes "
        "queueing delay); default: closed loop",
    )
    loadtest.add_argument(
        "--seed", type=int, default=42,
        help="workload determinism seed (default: 42)",
    )
    loadtest.add_argument(
        "--shards", type=int, default=2,
        help="shards of the ephemeral archive (default: 2)",
    )
    loadtest.add_argument(
        "--workers", type=int, default=None,
        help="per-query fan-out threads (default: one per shard)",
    )
    loadtest.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="query fan-out of the ephemeral archive: 'process' builds it "
        "file-backed in a temp directory and spawns one worker process "
        "per shard (default: thread)",
    )
    loadtest.add_argument(
        "--docs", type=int, default=300,
        help="documents preloaded before the clock starts (default: 300)",
    )
    loadtest.add_argument(
        "--drift", type=int, default=0, metavar="STRIDE",
        help="rotate query popularity between epochs by STRIDE hot-pool "
        "ranks (default: 0 = stable popularity)",
    )
    loadtest.add_argument(
        "--tail-max-docs", type=int, default=0, metavar="N",
        help="run the ephemeral archive in tail mode: buffer N docs per "
        "shard before sealing a segment (default: 0 = legacy "
        "synchronous indexing); ignored with --endpoint",
    )
    loadtest.add_argument(
        "--endpoint", default=None, metavar="URL",
        help="drive a running 'repro-search serve' instance over HTTP "
        "(e.g. http://127.0.0.1:8080) instead of an ephemeral "
        "in-process engine; --shards/--workers are then ignored",
    )
    loadtest.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the BENCH_LOADTEST.json snapshot to PATH",
    )
    loadtest.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="diff this run against a baseline snapshot under the default "
        "tolerance bands; exit 1 on regression",
    )
    loadtest.set_defaults(func=_cmd_loadtest)

    capacity = sub.add_parser(
        "capacity",
        help="predict shards x workers for a QPS/p99 target from "
        "load-test snapshots",
    )
    capacity.add_argument(
        "--snapshot", action="append", required=True, metavar="PATH",
        help="BENCH_LOADTEST.json snapshot(s) to calibrate from "
        "(repeatable)",
    )
    capacity.add_argument(
        "--target-qps", type=float, required=True,
        help="throughput target in queries/second",
    )
    capacity.add_argument(
        "--target-p99-ms", type=float, required=True,
        help="latency target: search p99 in milliseconds",
    )
    capacity.set_defaults(func=_cmd_capacity)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "branching", None) == 0:
        args.branching = None
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
