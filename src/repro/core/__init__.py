"""The paper's contribution: trustworthy inverted indexing on WORM.

Layout of the subpackage:

* :mod:`repro.core.posting` — fixed-width posting encodings (doc ID +
  term code, 8 bytes, Section 3's space accounting).
* :mod:`repro.core.posting_list` — append-only block-structured posting
  lists with sequential cursors.
* :mod:`repro.core.merge` — the posting-list merging strategies of
  Section 3.3 (uniform hashing, popular-terms-unmerged, learned).
* :mod:`repro.core.cost_model` — the workload cost model Q of Section 3.1
  and heuristic optimizers for the (NP-complete) merging problem.
* :mod:`repro.core.jump_index` — the binary jump index of Section 4.1
  with the trust guarantees of Propositions 1-3.
* :mod:`repro.core.block_jump_index` — the block-structured base-B jump
  index of Section 4.4, including the Section 4.5 tail-path memory
  optimization.
* :mod:`repro.core.space` — the jump-index space-overhead model behind
  Figure 8(a).
* :mod:`repro.core.epochs` — epoch-based statistics learning and
  per-epoch index management (Section 3.3).
* :mod:`repro.core.time_index` — the trustworthy commit-time index of
  Section 5.
* :mod:`repro.core.verification` — auditors that surface tampering as
  :class:`~repro.errors.TamperDetectedError` reports.
"""

from repro.core.block_jump_index import BlockJumpIndex
from repro.core.cost_model import (
    CapacityModel,
    CapacityPlan,
    cost_ratio,
    merged_workload_cost,
    per_query_costs,
    predict_capacity,
    unmerged_workload_cost,
)
from repro.core.jump_index import JumpIndex
from repro.core.merge import (
    GreedyCostMerge,
    LearnedPopularMerge,
    PopularUnmergedMerge,
    TermAssignment,
    UniformHashMerge,
)
from repro.core.posting import Posting, decode_posting, encode_posting
from repro.core.posting_list import PostingCursor, PostingList
from repro.core.space import jump_pointers_per_block, space_overhead
from repro.core.time_index import CommitTimeIndex
from repro.core.epochs import EpochIndexManager
from repro.core.incidents import Incident, IncidentLog
from repro.core.retention import Disposition, RetentionManager
from repro.core.term_coding import HuffmanCode, build_huffman_code, entropy_bits

__all__ = [
    "BlockJumpIndex",
    "CapacityModel",
    "CapacityPlan",
    "CommitTimeIndex",
    "Disposition",
    "EpochIndexManager",
    "GreedyCostMerge",
    "HuffmanCode",
    "Incident",
    "IncidentLog",
    "RetentionManager",
    "JumpIndex",
    "LearnedPopularMerge",
    "Posting",
    "PostingCursor",
    "PostingList",
    "PopularUnmergedMerge",
    "TermAssignment",
    "UniformHashMerge",
    "build_huffman_code",
    "cost_ratio",
    "decode_posting",
    "entropy_bits",
    "encode_posting",
    "jump_pointers_per_block",
    "merged_workload_cost",
    "per_query_costs",
    "predict_capacity",
    "space_overhead",
    "unmerged_workload_cost",
]
