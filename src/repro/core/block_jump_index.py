"""The block-structured jump index of Section 4.4 (Figure 7, right column).

Instead of per-entry pointers, ``p`` postings share a block and pointers
are associated with blocks, in powers of ``B``: block ``b`` (largest
stored ID ``nb``) keeps one pointer per pair ``(i, j)`` with
``0 <= i < log_B(N)`` and ``1 <= j < B``, pointing to the block that
contains the smallest document ID ``s`` with

    nb + j*B**i  <=  s  <  nb + (j+1)*B**i.

Those ranges partition ``(nb, nb + B**log_B(N))``, pointers are set in
increasing range order as document IDs grow (so assignment is an append /
write-once-slot operation, Section 4.3), and a lookup follows at most
``log_B(N)`` pointers.

Two write paths are provided:

* ``track_tail_path=True`` (default) — the Section 4.5 optimization: the
  index code keeps, in its own application memory, the largest ID and
  last-set pointer of every block on the path from the head block to the
  tail, so the insert walk touches storage only when it actually sets a
  new pointer.  This is what converges to ~1.1 I/Os per document in
  Figure 8(b).
* ``track_tail_path=False`` — the naive walk that reads every block it
  traverses through the storage cache; the ablation baseline.

Both paths produce bit-identical pointer placement (tested), because the
memory copy is only ever a cache of committed WORM state.

Merged-list subtlety: a merged posting list legitimately stores one entry
per (document, term) pair, so equal consecutive document IDs occur and
may straddle a block boundary.  Inserts whose ID equals the largest ID of
an earlier block set no pointer — the first occurrence is already
reachable, and cursors continue into physically-consecutive blocks, so no
entry is ever lost (the Proposition 2/3 analogues are property-tested).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.posting import Posting
from repro.core.posting_list import PostingCursor, PostingList
from repro.core import space as space_model
from repro.errors import IndexError_, TamperDetectedError
from repro.worm.storage import CachedWormStore


@dataclass
class _PathNode:
    """Writer-memory record of one block on the head→tail pointer path."""

    block_no: int
    #: Highest pointer slot set from this block so far (None = none).
    last_slot: Optional[int] = None
    #: Target block of that highest slot.
    last_target: Optional[int] = None


class BlockJumpIndex:
    """Base-``B`` jump index attached to a block-structured posting list.

    Use :meth:`create` to size the posting list and index together from a
    block-size budget; the constructor itself attaches to an existing
    (compatibly sized) posting list.

    Parameters
    ----------
    posting_list:
        The list to index; must have been created with at least
        ``jump_pointers_per_block(branching, 2**max_doc_bits)`` slots per
        block.
    branching:
        The fan-out base ``B`` (the paper sweeps 2, 32, 64).
    max_doc_bits:
        Sizing of the ID space ``N = 2**max_doc_bits``.
    track_tail_path:
        Enable the Section 4.5 writer-memory optimization.
    """

    def __init__(
        self,
        posting_list: PostingList,
        *,
        branching: int = 32,
        max_doc_bits: int = 32,
        track_tail_path: bool = True,
    ):
        if branching < 2:
            raise IndexError_(f"branching must be >= 2, got {branching}")
        self.posting_list = posting_list
        self.branching = branching
        self.n = 2**max_doc_bits
        self.levels = space_model.levels(branching, self.n)
        self.num_slots = (branching - 1) * self.levels
        file_slots = posting_list.store.open_file(posting_list.name).slot_count
        if file_slots < self.num_slots:
            raise IndexError_(
                f"posting list '{posting_list.name}' reserves {file_slots} "
                f"slots per block; B={branching} over N={self.n} needs "
                f"{self.num_slots}"
            )
        self.track_tail_path = track_tail_path
        #: Optional :class:`~repro.search.readcache.JumpMemo` set by the
        #: engine when read caching is enabled.  Memoizes frozen-block
        #: maxima and already-certified pointer edges; both are immutable
        #: under WORM semantics, so navigation stays exact (see the
        #: readcache module docstring for the trust argument).
        self.memo = None
        self._path: List[_PathNode] = []
        if posting_list.num_blocks:
            self.rebuild_path()
        #: Pointer-slot assignments performed (diagnostics).
        self.pointers_set = 0
        #: Jump pointers followed (and certified) on the read path.
        self.pointers_followed = 0

    # ------------------------------------------------------------------
    # construction helper
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        store: CachedWormStore,
        name: str,
        *,
        branching: int = 32,
        max_doc_bits: int = 32,
        track_tail_path: bool = True,
    ) -> "BlockJumpIndex":
        """Create a new posting list + jump index sized to the block budget.

        Applies the Section 4.5 space constraint: postings per block is
        the largest ``p`` with ``8p + 4(B-1)log_B(N) <= L`` where ``L`` is
        the store's block size.
        """
        n = 2**max_doc_bits
        p = space_model.postings_per_block(store.block_size, branching, n)
        slots = space_model.jump_pointers_per_block(branching, n)
        posting_list = PostingList(
            store, name, entries_per_block=p, slot_count=slots
        )
        return cls(
            posting_list,
            branching=branching,
            max_doc_bits=max_doc_bits,
            track_tail_path=track_tail_path,
        )

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def range_for(self, nb: int, k: int) -> Tuple[int, int]:
        """The ``(i, j)`` pair with ``nb + j*B**i <= k < nb + (j+1)*B**i``.

        Requires ``k > nb``; the ranges partition ``(nb, nb + B**levels)``.
        """
        d = k - nb
        if d <= 0:
            raise IndexError_(f"range_for requires k > nb, got k={k}, nb={nb}")
        i = 0
        step = self.branching
        while step <= d:
            step *= self.branching
            i += 1
        if i >= self.levels:
            raise IndexError_(
                f"gap {d} exceeds the addressable range B**levels = "
                f"{self.branching**self.levels}"
            )
        j = d // (self.branching**i)
        return i, j

    def slot_for(self, nb: int, k: int) -> int:
        """Linear write-once slot number for the ``(i, j)`` range of ``k``.

        Slots are ordered by range start, so honest pointer assignments
        happen in increasing slot order — an append pattern.
        """
        i, j = self.range_for(nb, k)
        return i * (self.branching - 1) + (j - 1)

    def slot_range(self, nb: int, slot: int) -> Tuple[int, int]:
        """``[lo, hi)`` document-ID range covered by linear ``slot``."""
        i, j = divmod(slot, self.branching - 1)
        j += 1
        lo = nb + j * self.branching**i
        return lo, lo + self.branching**i

    # ------------------------------------------------------------------
    # write path — Insert_block(k) of Figure 7
    # ------------------------------------------------------------------
    def insert(self, doc_id: int, term_code: int = 0) -> Tuple[int, int]:
        """Append a posting and maintain jump pointers; returns its position.

        I/O cost: the posting append (storage-cache accounted by the
        posting list) plus, when a new pointer must be set, one counted
        access to the block receiving the pointer.
        """
        block_no, index = self.posting_list.append(doc_id, term_code)
        last_block = self.posting_list.num_blocks - 1
        if not self._path:
            self._path.append(_PathNode(0))
        if last_block == 0:
            return block_no, index
        if self.track_tail_path:
            self._walk_in_memory(doc_id, last_block)
        else:
            self._walk_counted(doc_id, last_block)
        return block_no, index

    def insert_many(
        self, entries: Iterable[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Insert ``(doc_id, term_code)`` postings in one batched pass.

        Entries must arrive in non-decreasing doc-id order (the posting
        list enforces it).  Pointer placement and I/O accounting are
        identical entry-for-entry to standalone :meth:`insert` calls —
        batching amortizes per-call bookkeeping only.  Returns the
        position of the last inserted posting.
        """
        position = (-1, -1)
        for doc_id, term_code in entries:
            position = self.insert(doc_id, term_code)
        return position

    def _walk_in_memory(self, k: int, last_block: int) -> None:
        """Insert walk using writer-memory path metadata (Section 4.5)."""
        pl = self.posting_list
        pos = 0
        while True:
            node = self._path[pos]
            if node.block_no == last_block:
                return
            nb = pl.block_max_hint(node.block_no)
            if k <= nb:
                # Duplicate ID straddling blocks: already reachable.
                return
            slot = self.slot_for(nb, k)
            if node.last_slot == slot:
                pos += 1
                continue
            # Honest IDs only grow, so the needed slot can only be beyond
            # the last one set from this block.
            self._set_pointer(node, slot, last_block, pos)
            return

    def _walk_counted(self, k: int, last_block: int) -> None:
        """Naive insert walk reading every traversed block (ablation)."""
        store = self.posting_list.store
        name = self.posting_list.name
        pos = 0
        block_no = 0
        while block_no != last_block:
            entries = self.posting_list.read_block_postings(block_no)
            nb = entries.doc_ids[-1]
            if k <= nb:
                return
            slot = self.slot_for(nb, k)
            target = store.get_slot(name, block_no, slot)
            if target is None:
                node = self._path[pos]
                self._set_pointer(node, slot, last_block, pos)
                return
            block_no = target
            pos += 1

    def _set_pointer(
        self, node: _PathNode, slot: int, last_block: int, pos: int
    ) -> None:
        """Commit one pointer to WORM and update the in-memory path."""
        self.posting_list.store.set_slot(
            self.posting_list.name, node.block_no, slot, last_block
        )
        self.pointers_set += 1
        node.last_slot = slot
        node.last_target = last_block
        del self._path[pos + 1 :]
        self._path.append(_PathNode(last_block))

    def rebuild_path(self) -> None:
        """Reconstruct the writer-memory path from committed WORM state.

        Used when attaching to an existing list (e.g. after restart).
        Walks the chain of highest-set pointers from the head block; this
        is exactly the path future inserts extend.
        """
        store = self.posting_list.store
        name = self.posting_list.name
        self._path = []
        if not self.posting_list.num_blocks:
            return
        block_no = 0
        while True:
            last_slot = None
            last_target = None
            for slot in range(self.num_slots - 1, -1, -1):
                target = store.peek_slot(name, block_no, slot)
                if target is not None:
                    last_slot, last_target = slot, target
                    break
            self._path.append(_PathNode(block_no, last_slot, last_target))
            if last_target is None:
                return
            block_no = last_target

    # ------------------------------------------------------------------
    # read path — Lookup_block / FindGeq (certified readers)
    # ------------------------------------------------------------------
    def lookup(self, doc_id: int, *, cursor: Optional[PostingCursor] = None) -> bool:
        """Whether any posting carries ``doc_id`` (Lookup_block of Figure 7)."""
        if self.posting_list.num_blocks == 0:
            return False
        if cursor is None:
            cursor = self.posting_list.cursor()
        block_no = 0
        while True:
            entries = cursor.peek_block(block_no)
            nb = entries.doc_ids[-1]
            if doc_id <= nb:
                docs = entries.doc_ids
                idx = bisect_left(docs, doc_id)
                return idx < len(docs) and docs[idx] == doc_id
            slot = self.slot_for(nb, doc_id)
            target = self.posting_list.store.peek_slot(
                self.posting_list.name, block_no, slot
            )
            if target is None:
                return False
            self._check_jump(cursor, block_no, nb, slot, target)
            block_no = target

    def find_geq(self, cursor: PostingCursor, k: int) -> Optional[Posting]:
        """Position ``cursor`` at the first matching posting with ID >= ``k``.

        Returns that posting, or ``None`` when the cursor is exhausted
        (no remaining entry has ID >= ``k``).  Navigation starts from the
        head block via stored jump pointers; blocks already read by this
        cursor are free, so repeated calls during a zigzag join cost only
        the *new* blocks they touch — the paper's "blocks read" metric.
        """
        if cursor.exhausted:
            return None
        if cursor.current_doc >= k:
            return cursor.current
        # Cheap path: the target may be in the cursor's current block.
        cur_block, cur_idx = cursor.position
        entries = cursor.peek_block(cur_block)
        if entries.doc_ids[-1] >= k:
            idx = bisect_left(entries.doc_ids, k, lo=cur_idx)
            cursor.jump_to(cur_block, idx)
            return None if cursor.exhausted else cursor.current
        # If even the tail block tops out below k, nothing qualifies.
        tail_no = self.posting_list.num_blocks - 1
        if cursor.peek_block(tail_no).doc_ids[-1] < k:
            cursor.exhaust()
            return None
        target_block = self._navigate(cursor, k, start_block=0)
        if target_block is None:
            # No pointer leads to any ID >= k; entries may still exist in
            # trailing blocks past the pointer frontier (the open tail).
            cursor.seek_geq_sequential(k)
            return None if cursor.exhausted else cursor.current
        if target_block < cur_block:
            # The first occurrence of the target ID precedes this cursor's
            # position; everything from here forward already satisfies the
            # zigzag contract, so scan forward instead of rewinding.
            cursor.seek_geq_sequential(k)
            return None if cursor.exhausted else cursor.current
        entries = cursor.peek_block(target_block)
        docs = entries.doc_ids
        idx = bisect_left(docs, k)
        if idx >= len(docs):
            raise TamperDetectedError(
                f"find_geq({k}) navigated to block {target_block} holding "
                f"no ID >= {k}",
                location=f"posting list '{self.posting_list.name}', "
                f"block {target_block}",
                invariant="jump-target-range",
            )
        start_idx = idx if target_block > cur_block else max(idx, cur_idx)
        cursor.jump_to(target_block, start_idx)
        return None if cursor.exhausted else cursor.current

    def _navigate(
        self, cursor: PostingCursor, k: int, *, start_block: int
    ) -> Optional[int]:
        """Block-level FindGeq: block containing the first ID >= ``k``.

        Mirrors the recursive structure of Figure 7's ``FindGeqRec``: try
        the exact range pointer first; if its subtree holds nothing >= k,
        fall back to the first later non-NULL pointer at this block.
        """
        block_no = start_block
        memo = self.memo
        nb = memo.nb(block_no) if memo is not None else None
        if nb is None:
            nb = cursor.peek_block(block_no).doc_ids[-1]
            if memo is not None and block_no < self.posting_list.num_blocks - 1:
                # Only frozen (non-tail) blocks are memoized; the tail's
                # largest ID still grows with appends.
                memo.put_nb(block_no, nb)
        if k <= nb:
            return block_no
        slot = self.slot_for(nb, k)
        target = self.posting_list.store.peek_slot(
            self.posting_list.name, block_no, slot
        )
        if target is not None:
            self._check_jump(cursor, block_no, nb, slot, target)
            found = self._navigate(cursor, k, start_block=target)
            if found is not None:
                return found
        for later_slot in range(slot + 1, self.num_slots):
            target = self.posting_list.store.peek_slot(
                self.posting_list.name, block_no, later_slot
            )
            if target is not None:
                self._check_jump(cursor, block_no, nb, later_slot, target)
                # This block holds the smallest ID of the first occupied
                # range past k's, which is the first ID >= k overall.
                return target
        return None

    def _check_jump(
        self,
        cursor: PostingCursor,
        block_no: int,
        nb: int,
        slot: int,
        target: int,
    ) -> None:
        """Certified-reader checks on a followed pointer (tamper tripwire).

        With a jump memo attached, an edge that already passed the full
        checks this process lifetime is not re-verified: the slot is
        write-once, the source block is frozen, and the target's entries
        only grow, so every certified fact stays true.  Fresh (never
        followed) edges — including anything an attacker plants after
        startup — always run the complete tripwire.
        """
        self.pointers_followed += 1
        memo = self.memo
        if memo is not None and memo.edge_verified(block_no, slot, target):
            return
        if target <= block_no:
            raise TamperDetectedError(
                f"jump pointer from block {block_no} goes backwards to "
                f"{target}",
                location=f"posting list '{self.posting_list.name}', "
                f"block {block_no}, slot {slot}",
                invariant="jump-forward-only",
            )
        lo, hi = self.slot_range(nb, slot)
        target_docs = cursor.peek_block(target).doc_ids
        first_geq_lo = bisect_left(target_docs, lo)
        if not (first_geq_lo < len(target_docs) and target_docs[first_geq_lo] < hi):
            raise TamperDetectedError(
                f"jump pointer (slot {slot}) from block {block_no} "
                f"targets block {target} holding no ID in [{lo}, {hi})",
                location=f"posting list '{self.posting_list.name}', "
                f"block {block_no}, slot {slot}",
                invariant="jump-target-range",
            )
        if memo is not None:
            memo.record_edge(block_no, slot, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockJumpIndex('{self.posting_list.name}', B={self.branching}, "
            f"levels={self.levels}, pointers_set={self.pointers_set})"
        )
