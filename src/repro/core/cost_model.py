"""The workload cost model Q of Section 3.1.

For query frequencies ``qi`` and unmerged posting-list lengths ``ti``:

* unmerged workload cost: ``Q0 = Σ_i ti · qi``;
* merged workload cost over lists ``A_1 .. A_M``:
  ``Q = Σ_j (Σ_{k∈A_j} t_k)(Σ_{k∈A_j} q_k)`` — scanning the ``i``-th list
  is replaced by scanning everything merged with it.

Choosing the partition minimizing ``Q`` is NP-complete (the paper reduces
from *minimum sum of squares*: with ``qi = ti`` the objective becomes
``Σ_j (Σ_{k∈A_j} t_k)²``), hence the heuristics in
:mod:`repro.core.merge`.  Everything here is vectorized so that full
Figure-3 sweeps over 10⁵-term universes run in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.merge import TermAssignment
from repro.errors import IndexError_
from repro.workloads.stats import WorkloadStats


def unmerged_workload_cost(stats: WorkloadStats) -> float:
    """``Q0 = Σ ti·qi`` — the cost with one posting list per term."""
    return stats.total_unmerged_cost()


def merged_workload_cost(assignment: TermAssignment, stats: WorkloadStats) -> float:
    """``Q`` under ``assignment`` — Equation (1) of the paper."""
    if assignment.num_terms != stats.num_terms:
        raise IndexError_(
            f"assignment covers {assignment.num_terms} terms, stats cover "
            f"{stats.num_terms}"
        )
    list_t = assignment.aggregate(stats.ti)
    list_q = assignment.aggregate(stats.qi)
    return float((list_t * list_q).sum())


def cost_ratio(assignment: TermAssignment, stats: WorkloadStats) -> float:
    """``Q(merged) / Q(unmerged)`` — the y-axis of Figures 3(d)-3(g).

    Returns ``1.0`` for a degenerate workload with zero unmerged cost
    (nothing is ever scanned, so merging cannot slow it down).
    """
    base = unmerged_workload_cost(stats)
    if base == 0:
        return 1.0
    return merged_workload_cost(assignment, stats) / base


def per_query_costs(
    queries: Iterable[Sequence[int]],
    assignment: TermAssignment,
    stats: WorkloadStats,
) -> np.ndarray:
    """Scan cost of each query under ``assignment``.

    A (disjunctive) query scans the merged posting list of each of its
    terms; several query terms landing in the same physical list share a
    single scan.  The cost unit is posting entries scanned — the same unit
    as Q, so summing this array over the whole log reproduces the workload
    cost (up to shared-scan dedup).

    Used for the per-query distributions of Figures 3(h) and 3(i).
    """
    list_lengths = assignment.aggregate(stats.ti)
    costs: List[float] = []
    for terms in queries:
        lists = {assignment.list_for(int(t)) for t in terms}
        costs.append(float(sum(list_lengths[l] for l in lists)))
    return np.asarray(costs, dtype=np.float64)


def per_query_unmerged_costs(
    queries: Iterable[Sequence[int]], stats: WorkloadStats
) -> np.ndarray:
    """Scan cost of each query with no merging (each term its own list)."""
    costs: List[float] = []
    ti = stats.ti
    for terms in queries:
        costs.append(float(sum(int(ti[int(t)]) for t in set(terms))))
    return np.asarray(costs, dtype=np.float64)


def query_slowdowns(
    merged: np.ndarray, unmerged: np.ndarray, *, floor: float = 1.0
) -> np.ndarray:
    """Per-query slowdown ratios, ordered by *unmerged* query cost.

    Figure 3(i) plots slowdown against the query-cost percentile: cheap
    queries suffer the most (their tiny lists got merged into block-sized
    ones) while expensive queries are nearly unaffected.  Queries with
    zero unmerged cost (all terms absent from the corpus) are clamped to
    ``floor``.

    Returns the slowdown array sorted by ascending unmerged cost, so index
    ``p%`` of the way in is the Figure 3(i) x-axis percentile.
    """
    merged = np.asarray(merged, dtype=np.float64)
    unmerged = np.asarray(unmerged, dtype=np.float64)
    if merged.shape != unmerged.shape:
        raise IndexError_("merged and unmerged cost arrays must align")
    order = np.argsort(unmerged, kind="stable")
    safe = np.maximum(unmerged[order], 1.0)
    ratios = np.maximum(merged[order] / safe, floor)
    return ratios


def minimum_sum_of_squares_cost(parts: Sequence[Sequence[float]]) -> float:
    """Objective of the minimum-sum-of-squares problem: ``Σ (Σ part)²``.

    The special case of Q with ``qi = ti`` that establishes
    NP-completeness; exposed for the reduction tests.
    """
    return float(sum(sum(p) ** 2 for p in parts))


# ----------------------------------------------------------------------
# capacity prediction, calibrated from load-test snapshots
# ----------------------------------------------------------------------
#
# The workload-cost model above prices queries in postings scanned; the
# capacity model below converts *measured* whole-system throughput into
# a provisioning answer: how many shards and how many concurrent
# workers are needed to serve a target QPS at a target p99.  It is
# calibrated from ``BENCH_LOADTEST.json`` snapshots written by
# :mod:`repro.loadtest` (duck-typed dicts — this module stays
# independent of the harness), under two deliberately simple, monotone
# assumptions:
#
# * shards scale throughput linearly (PR 1's SHARD-SCALING benchmark is
#   the evidence at small K); a shard's usable rate at a latency target
#   tighter than the calibrated p99 degrades proportionally
#   (queueing-linear derating);
# * the concurrency needed to sustain a rate follows Little's law,
#   ``N = λ · W`` with ``W`` the calibrated mean search latency.


@dataclass(frozen=True)
class CapacityCalibration:
    """One calibrated operating point extracted from a snapshot."""

    qps_per_shard: float
    p99_ms: float
    mean_ms: float
    shards: int
    clients: int

    def __post_init__(self) -> None:
        if self.qps_per_shard <= 0 or self.p99_ms <= 0 or self.mean_ms <= 0:
            raise IndexError_(
                "calibration needs positive qps_per_shard, p99_ms, and "
                f"mean_ms; got {self}"
            )


@dataclass(frozen=True)
class CapacityPlan:
    """A provisioning recommendation for one (QPS, p99) target."""

    shards: int
    workers: int
    target_qps: float
    target_p99_ms: float
    predicted_qps: float
    predicted_p99_ms: float
    qps_per_shard: float

    def summary(self) -> str:
        """Human-readable plan (what the ``capacity`` subcommand prints)."""
        return (
            f"target {self.target_qps:.0f} qps @ p99 <= "
            f"{self.target_p99_ms:.1f} ms\n"
            f"  provision {self.shards} shard(s) x {self.workers} worker(s)\n"
            f"  predicted capacity {self.predicted_qps:.1f} qps "
            f"({self.qps_per_shard:.1f} usable qps/shard), "
            f"predicted p99 {self.predicted_p99_ms:.2f} ms"
        )


def _snapshot_calibration(snapshot: dict) -> CapacityCalibration:
    """Extract a :class:`CapacityCalibration` from one snapshot dict."""
    schema = snapshot.get("schema", "")
    if not str(schema).startswith("repro-loadtest/"):
        raise IndexError_(
            f"not a load-test snapshot (schema {schema!r}); capacity "
            "calibration needs repro-loadtest/v1 documents"
        )
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        raise IndexError_("load-test snapshot is missing 'metrics'")
    try:
        qps = float(metrics["qps"])
        shards = int(metrics.get("shards", 1)) or 1
        search = metrics["latency_ms"]["search"]
        p99_ms = float(search["p99_ms"])
        mean_ms = float(search["mean_ms"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexError_(
            f"load-test snapshot is missing calibration fields: {exc}"
        ) from exc
    config = snapshot.get("config", {})
    clients = int(config.get("clients", 1)) if isinstance(config, dict) else 1
    return CapacityCalibration(
        qps_per_shard=qps / shards,
        p99_ms=p99_ms,
        mean_ms=mean_ms,
        shards=shards,
        clients=clients,
    )


class CapacityModel:
    """Predict shards × workers for a throughput/latency target.

    Calibrate from one or more load-test snapshots (the best observed
    per-shard rate wins — other points are assumed to be the same
    system under less favourable conditions), then ask
    :meth:`predict_capacity` for a plan.  Both outputs are monotone in
    the targets: more QPS or a tighter p99 never yields fewer shards or
    workers.
    """

    def __init__(self, calibration: CapacityCalibration):
        self.calibration = calibration

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[dict]) -> "CapacityModel":
        """Calibrate from ``BENCH_LOADTEST.json`` documents."""
        points = [_snapshot_calibration(snap) for snap in snapshots]
        if not points:
            raise IndexError_("capacity calibration needs >= 1 snapshot")
        return cls(max(points, key=lambda p: p.qps_per_shard))

    def usable_qps_per_shard(self, target_p99_ms: float) -> float:
        """Per-shard rate the model credits at a given p99 target.

        At targets at or above the calibrated p99 a shard serves its
        full measured rate; tighter targets derate linearly (half the
        latency budget -> half the usable rate), which keeps the
        prediction pessimistic-but-monotone rather than optimistic.
        """
        cal = self.calibration
        return cal.qps_per_shard * min(1.0, target_p99_ms / cal.p99_ms)

    def predict_capacity(
        self, target_qps: float, target_p99_ms: float
    ) -> CapacityPlan:
        """The provisioning plan for ``target_qps`` at ``target_p99_ms``."""
        if target_qps <= 0:
            raise IndexError_(f"target_qps must be positive, got {target_qps}")
        if target_p99_ms <= 0:
            raise IndexError_(
                f"target_p99_ms must be positive, got {target_p99_ms}"
            )
        cal = self.calibration
        usable = self.usable_qps_per_shard(target_p99_ms)
        shards = max(1, int(np.ceil(target_qps / usable)))
        # Little's law: concurrency to sustain the rate at the
        # calibrated mean latency, but never fewer workers than shards
        # (each shard needs a fan-out lane to contribute).
        workers = max(
            shards, int(np.ceil(target_qps * (cal.mean_ms / 1000.0)))
        )
        return CapacityPlan(
            shards=shards,
            workers=workers,
            target_qps=target_qps,
            target_p99_ms=target_p99_ms,
            predicted_qps=shards * usable,
            predicted_p99_ms=min(cal.p99_ms, target_p99_ms),
            qps_per_shard=usable,
        )


def predict_capacity(
    snapshots, target_qps: float, target_p99_ms: float
) -> CapacityPlan:
    """One-call convenience: calibrate from snapshot dict(s) and predict.

    ``snapshots`` may be a single snapshot document or an iterable of
    them.
    """
    if isinstance(snapshots, dict):
        snapshots = [snapshots]
    model = CapacityModel.from_snapshots(snapshots)
    return model.predict_capacity(target_qps, target_p99_ms)
