"""The workload cost model Q of Section 3.1.

For query frequencies ``qi`` and unmerged posting-list lengths ``ti``:

* unmerged workload cost: ``Q0 = Σ_i ti · qi``;
* merged workload cost over lists ``A_1 .. A_M``:
  ``Q = Σ_j (Σ_{k∈A_j} t_k)(Σ_{k∈A_j} q_k)`` — scanning the ``i``-th list
  is replaced by scanning everything merged with it.

Choosing the partition minimizing ``Q`` is NP-complete (the paper reduces
from *minimum sum of squares*: with ``qi = ti`` the objective becomes
``Σ_j (Σ_{k∈A_j} t_k)²``), hence the heuristics in
:mod:`repro.core.merge`.  Everything here is vectorized so that full
Figure-3 sweeps over 10⁵-term universes run in milliseconds.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.core.merge import TermAssignment
from repro.errors import IndexError_
from repro.workloads.stats import WorkloadStats


def unmerged_workload_cost(stats: WorkloadStats) -> float:
    """``Q0 = Σ ti·qi`` — the cost with one posting list per term."""
    return stats.total_unmerged_cost()


def merged_workload_cost(assignment: TermAssignment, stats: WorkloadStats) -> float:
    """``Q`` under ``assignment`` — Equation (1) of the paper."""
    if assignment.num_terms != stats.num_terms:
        raise IndexError_(
            f"assignment covers {assignment.num_terms} terms, stats cover "
            f"{stats.num_terms}"
        )
    list_t = assignment.aggregate(stats.ti)
    list_q = assignment.aggregate(stats.qi)
    return float((list_t * list_q).sum())


def cost_ratio(assignment: TermAssignment, stats: WorkloadStats) -> float:
    """``Q(merged) / Q(unmerged)`` — the y-axis of Figures 3(d)-3(g).

    Returns ``1.0`` for a degenerate workload with zero unmerged cost
    (nothing is ever scanned, so merging cannot slow it down).
    """
    base = unmerged_workload_cost(stats)
    if base == 0:
        return 1.0
    return merged_workload_cost(assignment, stats) / base


def per_query_costs(
    queries: Iterable[Sequence[int]],
    assignment: TermAssignment,
    stats: WorkloadStats,
) -> np.ndarray:
    """Scan cost of each query under ``assignment``.

    A (disjunctive) query scans the merged posting list of each of its
    terms; several query terms landing in the same physical list share a
    single scan.  The cost unit is posting entries scanned — the same unit
    as Q, so summing this array over the whole log reproduces the workload
    cost (up to shared-scan dedup).

    Used for the per-query distributions of Figures 3(h) and 3(i).
    """
    list_lengths = assignment.aggregate(stats.ti)
    costs: List[float] = []
    for terms in queries:
        lists = {assignment.list_for(int(t)) for t in terms}
        costs.append(float(sum(list_lengths[l] for l in lists)))
    return np.asarray(costs, dtype=np.float64)


def per_query_unmerged_costs(
    queries: Iterable[Sequence[int]], stats: WorkloadStats
) -> np.ndarray:
    """Scan cost of each query with no merging (each term its own list)."""
    costs: List[float] = []
    ti = stats.ti
    for terms in queries:
        costs.append(float(sum(int(ti[int(t)]) for t in set(terms))))
    return np.asarray(costs, dtype=np.float64)


def query_slowdowns(
    merged: np.ndarray, unmerged: np.ndarray, *, floor: float = 1.0
) -> np.ndarray:
    """Per-query slowdown ratios, ordered by *unmerged* query cost.

    Figure 3(i) plots slowdown against the query-cost percentile: cheap
    queries suffer the most (their tiny lists got merged into block-sized
    ones) while expensive queries are nearly unaffected.  Queries with
    zero unmerged cost (all terms absent from the corpus) are clamped to
    ``floor``.

    Returns the slowdown array sorted by ascending unmerged cost, so index
    ``p%`` of the way in is the Figure 3(i) x-axis percentile.
    """
    merged = np.asarray(merged, dtype=np.float64)
    unmerged = np.asarray(unmerged, dtype=np.float64)
    if merged.shape != unmerged.shape:
        raise IndexError_("merged and unmerged cost arrays must align")
    order = np.argsort(unmerged, kind="stable")
    safe = np.maximum(unmerged[order], 1.0)
    ratios = np.maximum(merged[order] / safe, floor)
    return ratios


def minimum_sum_of_squares_cost(parts: Sequence[Sequence[float]]) -> float:
    """Objective of the minimum-sum-of-squares problem: ``Σ (Σ part)²``.

    The special case of Q with ``qi = ti`` that establishes
    NP-completeness; exposed for the reduction tests.
    """
    return float(sum(sum(p) ** 2 for p in parts))
