"""Epoch-based statistics learning and per-epoch indexes (Section 3.3).

The paper's popularity-aware merging heuristics need the frequencies
``ti`` / ``qi``, which are not known a priori.  Section 3.3's answer:

* the frequencies are **stable** over time and space — Figures 3(f)/3(g)
  show that statistics learned from the first 10% of the workload drive
  merging decisions for the entire index with almost no cost change;
* where they are less stable, divide time into **epochs**, maintain a
  separate index per epoch, and choose each epoch's merging (and whether
  to build a jump index) from the statistics of the previous epoch;
* queries fan out over all epochs; time-constrained queries only touch
  the epochs overlapping the requested interval.

:func:`learn_popular_terms` implements the learning step;
:class:`EpochIndexManager` implements the epoch lifecycle generically
over an index factory, so both the simulation harness and the full search
engine reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.stats import WorkloadStats


def learn_popular_terms(
    stats: WorkloadStats, k: int, *, by: str = "qi"
) -> np.ndarray:
    """Top-``k`` term IDs by the chosen statistic from (prefix) stats.

    ``by='qi'`` ranks by query frequency (Figure 3(d)/(f)); ``by='ti'``
    ranks by term/document frequency (Figure 3(e)/(g)).
    """
    if by == "qi":
        return stats.top_terms_by_qf(k)
    if by == "ti":
        return stats.top_terms_by_tf(k)
    raise WorkloadError(f"by must be 'qi' or 'ti', got {by!r}")


def prefix_term_frequencies(corpus, fraction: float) -> np.ndarray:
    """``ti`` measured over the first ``fraction`` of a corpus stream.

    The "first 10% of the documents crawled" statistic of Figure 3(g).
    """
    if not 0 < fraction <= 1:
        raise WorkloadError(f"fraction must be in (0, 1], got {fraction}")
    limit = max(1, int(corpus.config.num_docs * fraction))
    counts = np.zeros(corpus.config.vocabulary_size, dtype=np.int64)
    for doc in corpus.documents():
        if doc.doc_id - corpus.first_doc_id >= limit:
            break
        counts[doc.term_ids] += 1
    return counts


def prefix_query_frequencies(query_log, fraction: float) -> np.ndarray:
    """``qi`` measured over the first ``fraction`` of a query log.

    The "first 10% of the queries submitted" statistic of Figure 3(f).
    """
    if not 0 < fraction <= 1:
        raise WorkloadError(f"fraction must be in (0, 1], got {fraction}")
    limit = max(1, int(query_log.config.num_queries * fraction))
    counts = np.zeros(query_log.config.vocabulary_size, dtype=np.int64)
    for query in query_log.queries():
        if query.query_id >= limit:
            break
        for term in query.term_ids:
            counts[term] += 1
    return counts


@dataclass
class Epoch:
    """One closed or active epoch: its index plus observed statistics."""

    epoch_no: int
    index: object
    #: First document ID ingested in this epoch.
    first_doc_id: int
    #: Last document ID ingested (-1 while empty).
    last_doc_id: int = -1
    #: Documents ingested.
    doc_count: int = 0
    #: Observed term frequencies during this epoch (learning input).
    observed_ti: Optional[np.ndarray] = None
    #: Observed query frequencies during this epoch (learning input).
    observed_qi: Optional[np.ndarray] = None

    def covers_doc(self, doc_id: int) -> bool:
        """Whether ``doc_id`` was ingested during this epoch."""
        return self.first_doc_id <= doc_id <= self.last_doc_id


class EpochIndexManager:
    """Lifecycle manager for per-epoch indexes with statistics hand-off.

    Parameters
    ----------
    index_factory:
        ``factory(epoch_no, previous_epoch_stats) -> index``.  The factory
        decides, from the previous epoch's :class:`WorkloadStats` (or
        ``None`` for the first epoch), how the new epoch's index is merged
        and whether it carries a jump index — exactly the adaptation knob
        Section 3.3 describes.
    vocabulary_size:
        Size of the term universe for the per-epoch statistics arrays.
    docs_per_epoch:
        Automatic epoch roll threshold; ``None`` disables auto-rolling
        (call :meth:`new_epoch` manually).
    """

    def __init__(
        self,
        index_factory: Callable[[int, Optional[WorkloadStats]], object],
        *,
        vocabulary_size: int,
        docs_per_epoch: Optional[int] = None,
    ):
        if vocabulary_size <= 0:
            raise WorkloadError(
                f"vocabulary_size must be positive, got {vocabulary_size}"
            )
        if docs_per_epoch is not None and docs_per_epoch <= 0:
            raise WorkloadError(
                f"docs_per_epoch must be positive, got {docs_per_epoch}"
            )
        self._factory = index_factory
        self.vocabulary_size = vocabulary_size
        self.docs_per_epoch = docs_per_epoch
        self.epochs: List[Epoch] = []
        self._next_doc_id = 0
        self._start_epoch()

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------
    @property
    def current(self) -> Epoch:
        """The active (most recent) epoch."""
        return self.epochs[-1]

    def _previous_stats(self) -> Optional[WorkloadStats]:
        if not self.epochs:
            return None
        prev = self.epochs[-1]
        if prev.observed_ti is None or prev.doc_count == 0:
            return None
        qi = (
            prev.observed_qi
            if prev.observed_qi is not None
            else np.zeros(self.vocabulary_size, dtype=np.int64)
        )
        return WorkloadStats(ti=prev.observed_ti, qi=qi)

    def _start_epoch(self) -> None:
        stats = self._previous_stats()
        epoch_no = len(self.epochs)
        index = self._factory(epoch_no, stats)
        self.epochs.append(
            Epoch(
                epoch_no=epoch_no,
                index=index,
                first_doc_id=self._next_doc_id,
                observed_ti=np.zeros(self.vocabulary_size, dtype=np.int64),
                observed_qi=np.zeros(self.vocabulary_size, dtype=np.int64),
            )
        )

    def new_epoch(self) -> Epoch:
        """Close the current epoch and open the next one."""
        self._start_epoch()
        return self.current

    # ------------------------------------------------------------------
    # ingest / query fan-out
    # ------------------------------------------------------------------
    def add_document(self, term_ids: Sequence[int]) -> int:
        """Ingest one document into the current epoch's index.

        Returns the assigned (global, monotonically increasing) document
        ID.  Rolls the epoch first when the auto-roll threshold is hit.
        """
        if (
            self.docs_per_epoch is not None
            and self.current.doc_count >= self.docs_per_epoch
        ):
            self.new_epoch()
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        epoch = self.current
        epoch.index.add_document(doc_id, term_ids)
        epoch.last_doc_id = doc_id
        epoch.doc_count += 1
        epoch.observed_ti[np.asarray(list(set(term_ids)), dtype=np.int64)] += 1
        return doc_id

    def record_query(self, term_ids: Sequence[int]) -> None:
        """Feed one observed query into the current epoch's statistics."""
        for term in set(term_ids):
            self.current.observed_qi[int(term)] += 1

    def query_epochs(
        self,
        doc_id_range: Optional[Tuple[int, int]] = None,
    ) -> List[Epoch]:
        """Epochs a query must consult.

        With no range, all epochs (Section 3.3: "queries must be answered
        by scanning the indexes of all epochs").  With a document-ID /
        creation-time range, only the overlapping epochs.
        """
        if doc_id_range is None:
            return list(self.epochs)
        lo, hi = doc_id_range
        return [
            e
            for e in self.epochs
            if e.doc_count and not (e.last_doc_id < lo or e.first_doc_id > hi)
        ]

    def __len__(self) -> int:
        return len(self.epochs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochIndexManager(epochs={len(self.epochs)}, "
            f"docs={self._next_doc_id})"
        )
