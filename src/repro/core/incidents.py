"""Incident handling after tamper detection (the paper's future work).

Section 6: "One topic for future work is an elegant course of action
once malicious attempts have been detected (malicious index entries and
documents cannot simply be removed, as they reside on WORM)."

The course of action implemented here follows the WORM philosophy: you
cannot remove the malicious entries, so you *append* durable, auditable
knowledge about them —

* every detection is recorded in an append-only **incident log** on the
  WORM device (so Mala cannot erase the evidence that she was caught);
* fabricated document IDs exposed by result verification are
  **quarantined**: still physically present in the posting lists, but
  excluded from answer sets, with the exclusion itself justified by a
  logged incident an auditor can replay;
* the log is self-verifying — its records carry a strictly increasing
  sequence number, so truncation or reordering attempts surface the same
  way every other monotonicity violation does.

See :meth:`repro.search.engine.TrustworthySearchEngine.search_with_incident_handling`
for the query-path integration.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from repro.errors import TamperDetectedError
from repro.worm.storage import CachedWormStore

_LEN = struct.Struct("<H")


@dataclass(frozen=True)
class Incident:
    """One recorded detection."""

    seq: int
    kind: str
    location: str
    invariant: str
    description: str
    #: Document IDs quarantined by this incident (empty for pure alarms).
    quarantined_doc_ids: tuple = ()


class IncidentLog:
    """Append-only WORM log of tamper detections and quarantines.

    Parameters
    ----------
    store:
        WORM store holding the log.
    name:
        Log file name on the device.
    """

    def __init__(self, store: CachedWormStore, name: str = "incidents"):
        self.store = store
        self.name = name
        self._file = store.ensure_file(name)
        self._next_seq = 0
        self._quarantined: Set[int] = set()
        if self._file.num_blocks:
            for incident in self.incidents():
                self._next_seq = incident.seq + 1
                self._quarantined.update(incident.quarantined_doc_ids)

    def __len__(self) -> int:
        return self._next_seq

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        *,
        location: str = "",
        invariant: str = "",
        description: str = "",
        quarantine_doc_ids: Optional[List[int]] = None,
    ) -> Incident:
        """Append one incident; returns the committed record."""
        # Records never span blocks; budget the free-text field so the
        # whole record fits even on small-block devices.
        max_description = max(16, min(512, self.store.block_size - 192))
        incident = Incident(
            seq=self._next_seq,
            kind=kind,
            location=location[:96],
            invariant=invariant[:64],
            description=description[:max_description],
            quarantined_doc_ids=tuple(sorted(quarantine_doc_ids or [])),
        )
        payload = json.dumps(
            {
                "seq": incident.seq,
                "kind": incident.kind,
                "location": incident.location,
                "invariant": incident.invariant,
                "description": incident.description,
                "quarantined": list(incident.quarantined_doc_ids),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        record = _LEN.pack(len(payload)) + payload
        self.store.append_record(self.name, record)
        self._next_seq += 1
        self._quarantined.update(incident.quarantined_doc_ids)
        return incident

    def record_exception(self, exc: TamperDetectedError, *, kind: str = "tamper") -> Incident:
        """Record a :class:`TamperDetectedError` as it was raised."""
        return self.record(
            kind,
            location=exc.location,
            invariant=exc.invariant,
            description=str(exc),
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def incidents(self) -> Iterator[Incident]:
        """Yield every committed incident, verifying sequence integrity."""
        expected_seq = 0
        for block_no in range(self._file.num_blocks):
            payload = self.store.peek_block(self.name, block_no)
            offset = 0
            while offset + _LEN.size <= len(payload):
                (length,) = _LEN.unpack_from(payload, offset)
                offset += _LEN.size
                raw = payload[offset : offset + length]
                offset += length
                data = json.loads(raw.decode("utf-8"))
                if data["seq"] != expected_seq:
                    raise TamperDetectedError(
                        f"incident log record claims seq {data['seq']}, "
                        f"expected {expected_seq}",
                        location=f"incident log '{self.name}'",
                        invariant="incident-sequence",
                    )
                expected_seq += 1
                yield Incident(
                    seq=data["seq"],
                    kind=data["kind"],
                    location=data["location"],
                    invariant=data["invariant"],
                    description=data["description"],
                    quarantined_doc_ids=tuple(data["quarantined"]),
                )

    def is_quarantined(self, doc_id: int) -> bool:
        """Whether ``doc_id`` was quarantined by any recorded incident."""
        return doc_id in self._quarantined

    @property
    def quarantined_doc_ids(self) -> Set[int]:
        """Snapshot of all quarantined document IDs."""
        return set(self._quarantined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncidentLog('{self.name}', incidents={self._next_seq}, "
            f"quarantined={len(self._quarantined)})"
        )
