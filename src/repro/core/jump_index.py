"""The binary jump index of Section 4.1 (Figure 7, left column).

A jump index is a trustworthy index over a strictly monotonically
increasing integer sequence (document IDs, commit times).  Each node
carries one value and an array of *write-once* jump pointers: the ``i``-th
pointer of a node holding ``l`` points to the node with the smallest value
``l'`` such that ``l + 2**i <= l' < l + 2**(i+1)``.

Trust properties (all proved in the paper, all tested here):

* **Proposition 1**: a lookup follows pointers with strictly decreasing
  exponents ``i1 > i2 > ...``, so any operation takes at most
  ``floor(log2(k)) + 1`` follows — ``O(log2 N)``.
* **Proposition 2**: once inserted, an ID can always be looked up — the
  pointers on its path are on write-once storage and the lookup recomputes
  exactly the exponents the insert chose.
* **Proposition 3**: ``find_geq(k)`` never returns a value greater than
  some stored ``v >= k`` — no committed ID can be skipped, which is what
  makes zigzag joins trustworthy.

The adversary's surface is the same low-level API honest code uses:
:meth:`JumpIndex.append_node` and :meth:`JumpIndex.set_pointer` (append /
write-once-slot operations the WORM device permits).  Malicious values
don't corrupt answers; they trip the Figure-7 ``assert`` checks, raised
here as :class:`~repro.errors.TamperDetectedError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import (
    DocumentIdOrderError,
    IndexError_,
    TamperDetectedError,
    WormViolationError,
)

#: Sentinel distinguishing "no node" results.
NOT_FOUND = None


class JumpNode:
    """One jump-index node: a value plus write-once jump pointers.

    Pointer slots emulate the WORM device's write-once block slots: they
    may be assigned exactly once, by anyone, and never changed — exactly
    the paper's storage model for jump pointers (Section 4.3).
    """

    __slots__ = ("value", "payload", "_ptrs")

    def __init__(self, value: int, num_pointers: int, payload: Optional[int] = None):
        self.value = value
        #: Optional write-once application payload committed with the node
        #: (e.g. a log offset for commit-time indexes).
        self.payload = payload
        self._ptrs: List[Optional[int]] = [None] * num_pointers

    def pointer(self, i: int) -> Optional[int]:
        """Target node ID of pointer ``i`` (``None`` when unset)."""
        return self._ptrs[i]

    def set_pointer(self, i: int, target: int) -> None:
        """Assign pointer ``i``; write-once."""
        if self._ptrs[i] is not None:
            raise WormViolationError(
                f"jump pointer {i} of node holding {self.value} is already "
                f"set; WORM pointers are write-once"
            )
        self._ptrs[i] = target

    @property
    def num_pointers(self) -> int:
        """Number of pointer slots on this node."""
        return len(self._ptrs)


class JumpIndex:
    """Binary jump index over a strictly increasing integer sequence.

    Parameters
    ----------
    max_value_bits:
        ``log2(N)`` sizing of the pointer arrays; the default 32 matches
        the paper's ``N = 2**32`` document-ID space.
    """

    def __init__(self, *, max_value_bits: int = 32):
        if max_value_bits <= 0:
            raise IndexError_(
                f"max_value_bits must be positive, got {max_value_bits}"
            )
        self.max_value_bits = max_value_bits
        self._num_pointers = max_value_bits + 1
        self._nodes: List[JumpNode] = []
        #: Total pointer follows across all operations (complexity metric).
        self.pointer_follows = 0
        #: ``(node_id, exponent)`` steps of the most recent operation —
        #: the ``i1 > i2 > ...`` sequence of Proposition 1.
        self.last_path: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # low-level WORM-legal surface (honest code and Mala alike)
    # ------------------------------------------------------------------
    def append_node(self, value: int, payload: Optional[int] = None) -> int:
        """Append a node holding ``value`` (and optional payload); returns its ID.

        The device permits any append — semantic validity is checked at
        read time, not write time.
        """
        if value < 0 or value.bit_length() > self.max_value_bits:
            raise IndexError_(
                f"value {value} does not fit in {self.max_value_bits} bits"
            )
        self._nodes.append(JumpNode(value, self._num_pointers, payload))
        return len(self._nodes) - 1

    def set_pointer(self, node_id: int, i: int, target: int) -> None:
        """Assign pointer ``i`` of ``node_id`` to node ``target`` (write-once)."""
        if not 0 <= target < len(self._nodes):
            raise IndexError_(f"target node {target} does not exist")
        self._node(node_id).set_pointer(i, target)

    def node_value(self, node_id: int) -> int:
        """Value stored at ``node_id``."""
        return self._node(node_id).value

    def _node(self, node_id: int) -> JumpNode:
        try:
            return self._nodes[node_id]
        except IndexError:
            raise IndexError_(f"node {node_id} does not exist") from None

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def is_empty(self) -> bool:
        """Whether any node has been inserted."""
        return not self._nodes

    @property
    def head_value(self) -> int:
        """The smallest value — by construction the first node inserted."""
        if not self._nodes:
            raise IndexError_("jump index is empty")
        return self._nodes[0].value

    # ------------------------------------------------------------------
    # honest write path — Insert(k) of Figure 7
    # ------------------------------------------------------------------
    def insert(self, k: int, payload: Optional[int] = None) -> int:
        """Insert ``k`` (with optional payload); returns the new node's ID.

        Follows Figure 7's ``Insert(k)`` exactly: walk from the head
        choosing the exponent ``i`` with ``s + 2**i <= k < s + 2**(i+1)``;
        at the first NULL pointer, create the node and set the pointer —
        an append plus a write-once slot assignment, both WORM-legal.
        """
        if not self._nodes:
            return self.append_node(k, payload)
        node_id = 0
        s = self._nodes[0].value
        if s >= k:
            raise DocumentIdOrderError(
                f"insert of {k} violates strict monotonicity (head holds {s})"
            )
        self.last_path = []
        while True:
            i = self._exponent(s, k)
            target = self._nodes[node_id].pointer(i)
            if target is None:
                new_id = self.append_node(k, payload)
                self._nodes[node_id].set_pointer(i, new_id)
                return new_id
            self.pointer_follows += 1
            self.last_path.append((node_id, i))
            s_next = self._nodes[target].value
            if s_next >= k:
                # Honest inserts are strictly increasing, so every node on
                # the path holds a smaller value (Figure 7, step 15).
                raise DocumentIdOrderError(
                    f"insert of {k} is not strictly greater than stored "
                    f"{s_next}; document IDs must increase"
                )
            node_id, s = target, s_next

    # ------------------------------------------------------------------
    # read path — Lookup(k) of Figure 7
    # ------------------------------------------------------------------
    def lookup(self, k: int) -> bool:
        """Whether ``k`` was inserted (Proposition 2 guarantees no false negatives).

        Raises
        ------
        TamperDetectedError
            If a followed pointer violates the range invariant
            ``s + 2**i <= s' < s + 2**(i+1)`` — Mala left a trace.
        """
        if not self._nodes:
            return False
        node_id = 0
        s = self._nodes[0].value
        self.last_path = []
        while True:
            if s > k:
                return False
            if s == k:
                return True
            i = self._exponent(s, k)
            target = self._nodes[node_id].pointer(i)
            if target is None:
                return False
            self.pointer_follows += 1
            self.last_path.append((node_id, i))
            s_next = self._nodes[target].value
            self._check_range(s, i, s_next, f"lookup({k})")
            node_id, s = target, s_next

    def find_geq(self, k: int) -> Optional[int]:
        """Smallest stored value ``>= k``, or ``None`` (FindGeq of Figure 7).

        Proposition 3: if some stored ``v >= k`` exists, the result is
        never greater than ``v`` — committed IDs cannot be skipped.
        """
        node_id = self.find_geq_node(k)
        return None if node_id is NOT_FOUND else self._nodes[node_id].value

    def find_geq_node(self, k: int) -> Optional[int]:
        """Node-ID variant of :meth:`find_geq` (exposes the payload)."""
        if not self._nodes:
            return NOT_FOUND
        self.last_path = []
        return self._find_geq_rec(k, 0)

    def node_payload(self, node_id: int) -> Optional[int]:
        """Payload committed with ``node_id``."""
        return self._node(node_id).payload

    def _find_geq_rec(self, k: int, node_id: int) -> Optional[int]:
        """``FindGeqRec(k, s)`` of Figure 7, with tamper asserts.

        Returns the *node ID* holding the result (``None`` = NOT FOUND).
        """
        s = self._nodes[node_id].value
        if s >= k:
            return node_id
        i = self._exponent(s, k)
        target = self._nodes[node_id].pointer(i)
        if target is not None:
            self.pointer_follows += 1
            self.last_path.append((node_id, i))
            t = self._nodes[target].value
            self._check_range(s, i, t, f"find_geq({k})")
            res = self._find_geq_rec(k, target)
            if res is not NOT_FOUND:
                res_value = self._nodes[res].value
                if not s + (1 << i) <= res_value < s + (1 << (i + 1)):
                    raise TamperDetectedError(
                        f"find_geq({k}) surfaced {res_value} outside "
                        f"[{s + (1 << i)}, {s + (1 << (i + 1))}) — subtree "
                        "was cross-linked",
                        location=f"node holding {s}, pointer {i}",
                        invariant="jump-subtree-range",
                    )
                return res
        # No value >= k under pointer i; the first non-NULL later pointer
        # leads to the smallest value of the next occupied range.
        for j in range(i + 1, self._num_pointers):
            target = self._nodes[node_id].pointer(j)
            if target is not None:
                self.pointer_follows += 1
                self.last_path.append((node_id, j))
                t = self._nodes[target].value
                self._check_range(s, j, t, f"find_geq({k})")
                return target
        return NOT_FOUND

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _exponent(s: int, k: int) -> int:
        """The unique ``i`` with ``s + 2**i <= k < s + 2**(i+1)`` (``k > s``)."""
        return (k - s).bit_length() - 1

    def _check_range(self, s: int, i: int, t: int, op: str) -> None:
        """The Figure-7 assert: a followed pointer must land in its range."""
        if not s + (1 << i) <= t < s + (1 << (i + 1)):
            raise TamperDetectedError(
                f"{op} followed pointer {i} from {s} to {t}, outside "
                f"[{s + (1 << i)}, {s + (1 << (i + 1))})",
                location=f"node holding {s}, pointer {i}",
                invariant="jump-monotonicity",
            )

    def values(self) -> List[int]:
        """All stored values in insertion order (audit convenience)."""
        return [n.value for n in self._nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JumpIndex(nodes={len(self._nodes)}, bits={self.max_value_bits})"
