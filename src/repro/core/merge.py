"""Posting-list merging strategies (Section 3.3).

Merging many term posting lists into ``M`` physical lists — with ``M`` no
larger than the number of storage-cache blocks — is what makes real-time
trustworthy index update affordable: every posting append then hits the
non-volatile cache, costing on average one random I/O per document
(Section 3).

A strategy's output is a :class:`TermAssignment`: a total map from term ID
to physical list ID.  Strategies implemented:

* :class:`UniformHashMerge` — hash every term uniformly into ``M`` lists.
  The paper's practical recommendation ("uniform merging, being
  straightforward to implement, is likely to be the method of choice").
* :class:`PopularUnmergedMerge` — give each of the top-``k`` popular terms
  (by query frequency ``qi`` or term frequency ``ti``) a dedicated
  singleton list; hash the rest into the remaining ``M - k`` lists.  The
  "1000 terms" / "10000 terms" curves of Figures 3(d)/3(e).
* :class:`LearnedPopularMerge` — same, but the popular set is learned from
  a *prefix* of the workload (the Figures 3(f)/3(g) stability experiment
  and the epoch scheme of Section 3.3).
* :class:`GreedyCostMerge` — a cost-model-driven heuristic for the
  NP-complete optimal-merging problem (Section 3.1 reduces it from
  minimum sum of squares): balance terms across lists so the products
  ``(Σ t)(Σ q)`` stay small.  Not in the paper's evaluation; provided as
  the natural "how much headroom do the heuristics leave" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import IndexError_, WorkloadError


def _stable_hash(term_id: int, salt: int) -> int:
    """Deterministic 64-bit integer mix (splitmix64 finalizer).

    Python's builtin ``hash`` is randomized per process for strings and
    not guaranteed stable across versions for our purposes; merging
    decisions must be reproducible, so we mix explicitly.
    """
    x = (term_id + 0x9E3779B97F4A7C15 * (salt + 1)) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass
class TermAssignment:
    """A total map from term ID to physical (merged) posting-list ID.

    Attributes
    ----------
    list_ids:
        ``list_ids[term] = physical list`` array of length ``num_terms``.
    num_lists:
        Number of physical lists ``M``.
    """

    list_ids: np.ndarray
    num_lists: int

    def __post_init__(self) -> None:
        self.list_ids = np.asarray(self.list_ids, dtype=np.int64)
        if self.list_ids.ndim != 1:
            raise IndexError_("list_ids must be a 1-D array")
        if self.num_lists <= 0:
            raise IndexError_(f"num_lists must be positive, got {self.num_lists}")
        if len(self.list_ids) and (
            self.list_ids.min() < 0 or self.list_ids.max() >= self.num_lists
        ):
            raise IndexError_(
                f"list ids must lie in [0, {self.num_lists}); got range "
                f"[{self.list_ids.min()}, {self.list_ids.max()}]"
            )

    @property
    def num_terms(self) -> int:
        """Size of the term universe."""
        return len(self.list_ids)

    def list_for(self, term_id: int) -> int:
        """Physical list holding ``term_id``'s postings."""
        return int(self.list_ids[term_id])

    def terms_in_list(self, list_id: int) -> np.ndarray:
        """All term IDs assigned to physical list ``list_id``."""
        return np.nonzero(self.list_ids == list_id)[0]

    def terms_per_list(self) -> np.ndarray:
        """Histogram: number of terms assigned to each physical list."""
        return np.bincount(self.list_ids, minlength=self.num_lists)

    def aggregate(self, per_term: np.ndarray) -> np.ndarray:
        """Sum a per-term vector (e.g. ``ti``) into per-list totals.

        The workhorse behind the cost model: ``Σ_{k in A_i} t_k`` for every
        list ``i`` in one vectorized pass.
        """
        per_term = np.asarray(per_term, dtype=np.float64)
        if per_term.shape != self.list_ids.shape:
            raise IndexError_(
                f"per_term must have shape {self.list_ids.shape}, "
                f"got {per_term.shape}"
            )
        return np.bincount(self.list_ids, weights=per_term, minlength=self.num_lists)


class MergeStrategy:
    """Interface: derive a :class:`TermAssignment` for a term universe.

    Strategies must be *stable under universe growth*: for any
    ``n' > n``, ``assign(n')`` must map terms ``0 .. n-1`` exactly as
    ``assign(n)`` did — an incremental engine re-asks with a larger
    universe as its lexicon grows, and committed postings cannot move.
    Strategies built from full-universe statistics (e.g.
    :class:`GreedyCostMerge`) instead declare a fixed universe via
    :meth:`universe_size`.
    """

    def assign(self, num_terms: int) -> TermAssignment:
        """Produce the assignment for terms ``0 .. num_terms - 1``."""
        raise NotImplementedError

    def universe_size(self) -> Optional[int]:
        """Fixed universe this strategy was built for (``None`` = any)."""
        return None


class UniformHashMerge(MergeStrategy):
    """Hash every term uniformly into ``num_lists`` physical lists.

    The "0 term" curves of Figures 3(d)/3(e) and the scheme validated on
    the real search engine in Section 3.5.
    """

    def __init__(self, num_lists: int, *, salt: int = 0):
        if num_lists <= 0:
            raise IndexError_(f"num_lists must be positive, got {num_lists}")
        self.num_lists = num_lists
        self.salt = salt

    def assign(self, num_terms: int) -> TermAssignment:
        """Assign each term to ``hash(term) mod num_lists``."""
        ids = np.fromiter(
            (_stable_hash(t, self.salt) % self.num_lists for t in range(num_terms)),
            dtype=np.int64,
            count=num_terms,
        )
        return TermAssignment(list_ids=ids, num_lists=self.num_lists)


class PopularUnmergedMerge(MergeStrategy):
    """Dedicated singleton lists for popular terms; hash the rest.

    Parameters
    ----------
    num_lists:
        Total number of physical lists ``M`` (cache blocks).
    popular_terms:
        Term IDs that receive their own unmerged list (e.g. the top 1,000
        by ``qi``).  Must number strictly fewer than ``num_lists``.
    salt:
        Hash salt for the merged remainder.
    """

    def __init__(self, num_lists: int, popular_terms: Sequence[int], *, salt: int = 0):
        popular = np.asarray(list(popular_terms), dtype=np.int64)
        if len(np.unique(popular)) != len(popular):
            raise IndexError_("popular_terms contains duplicates")
        if num_lists <= len(popular):
            raise IndexError_(
                f"num_lists={num_lists} must exceed the {len(popular)} "
                "popular terms (each needs its own list, plus at least one "
                "merged list)"
            )
        self.num_lists = num_lists
        self.popular_terms = popular
        self.salt = salt

    def assign(self, num_terms: int) -> TermAssignment:
        """Popular terms get lists ``0..k-1``; the rest hash into ``k..M-1``."""
        k = len(self.popular_terms)
        merged_lists = self.num_lists - k
        ids = np.fromiter(
            (
                k + _stable_hash(t, self.salt) % merged_lists
                for t in range(num_terms)
            ),
            dtype=np.int64,
            count=num_terms,
        )
        in_range = self.popular_terms[self.popular_terms < num_terms]
        ids[in_range] = np.arange(len(in_range), dtype=np.int64)
        return TermAssignment(list_ids=ids, num_lists=self.num_lists)


class LearnedPopularMerge(MergeStrategy):
    """Popular-unmerged strategy with the popular set *learned* from a prefix.

    The Figures 3(f)/3(g) experiment: compute the most popular terms from
    the first fraction of the workload (documents crawled / queries
    submitted) and use them to make merging decisions for the entire
    index.  The learning itself happens in
    :func:`repro.core.epochs.learn_popular_terms`; this class just carries
    the resulting set plus provenance for reporting.
    """

    def __init__(
        self,
        num_lists: int,
        learned_popular_terms: Sequence[int],
        *,
        learned_from_fraction: float,
        by: str,
        salt: int = 0,
    ):
        if not 0 < learned_from_fraction <= 1:
            raise WorkloadError(
                f"learned_from_fraction must be in (0, 1], got {learned_from_fraction}"
            )
        if by not in ("qi", "ti"):
            raise WorkloadError(f"by must be 'qi' or 'ti', got {by!r}")
        self._inner = PopularUnmergedMerge(num_lists, learned_popular_terms, salt=salt)
        #: Fraction of the workload the popular set was learned from.
        self.learned_from_fraction = learned_from_fraction
        #: Which statistic ranked the popular terms ('qi' or 'ti').
        self.by = by

    @property
    def num_lists(self) -> int:
        """Total number of physical lists."""
        return self._inner.num_lists

    @property
    def popular_terms(self) -> np.ndarray:
        """The learned popular-term set."""
        return self._inner.popular_terms

    def assign(self, num_terms: int) -> TermAssignment:
        """Delegate to the popular-unmerged assignment."""
        return self._inner.assign(num_terms)


class GreedyCostMerge(MergeStrategy):
    """Cost-aware greedy heuristic for the NP-complete merging problem.

    Sorts terms by their cost contribution ``sqrt(ti * qi)`` descending
    and assigns each to the list where it least increases the workload
    cost ``(Σ t)(Σ q)``.  This is the longest-processing-time idea for the
    minimum-sum-of-squares problem the paper reduces from.

    Quadratic-ish in practice (``num_terms × num_lists`` for the heavy
    prefix), so it is applied exactly to the ``exact_top`` costliest terms
    and round-robins the cheap tail — the tail's contribution to Q is
    negligible under Zipf.
    """

    def __init__(
        self,
        num_lists: int,
        ti: np.ndarray,
        qi: np.ndarray,
        *,
        exact_top: int = 2000,
    ):
        if num_lists <= 0:
            raise IndexError_(f"num_lists must be positive, got {num_lists}")
        self.num_lists = num_lists
        self.ti = np.asarray(ti, dtype=np.float64)
        self.qi = np.asarray(qi, dtype=np.float64)
        if self.ti.shape != self.qi.shape:
            raise IndexError_("ti and qi must have equal shapes")
        self.exact_top = exact_top

    def universe_size(self) -> Optional[int]:
        """Fixed to the statistics arrays the strategy was built from."""
        return len(self.ti)

    def assign(self, num_terms: int) -> TermAssignment:
        """Greedy assignment of the costly prefix; round-robin tail."""
        if num_terms != len(self.ti):
            raise IndexError_(
                f"strategy was built for {len(self.ti)} terms, asked for {num_terms}"
            )
        weight = np.sqrt(self.ti * self.qi) + 1e-9 * (self.ti + self.qi)
        order = np.argsort(weight)[::-1]
        head = order[: self.exact_top]
        tail = order[self.exact_top :]
        ids = np.empty(num_terms, dtype=np.int64)
        list_t = np.zeros(self.num_lists, dtype=np.float64)
        list_q = np.zeros(self.num_lists, dtype=np.float64)
        for term in head:
            t, q = self.ti[term], self.qi[term]
            # Marginal increase of (Σt)(Σq) when adding this term to each list.
            delta = (list_t + t) * (list_q + q) - list_t * list_q
            target = int(np.argmin(delta))
            ids[term] = target
            list_t[target] += t
            list_q[target] += q
        # Round-robin the cheap tail over lists in ascending-load order,
        # so light/empty lists absorb it before the heavy head lists do.
        light_first = np.argsort(list_t * list_q, kind="stable").astype(np.int64)
        ids[tail] = light_first[np.arange(len(tail), dtype=np.int64) % self.num_lists]
        return TermAssignment(list_ids=ids, num_lists=self.num_lists)


def lists_for_cache(cache_size_bytes: int, block_size: int) -> int:
    """The paper's ``M = cache size / block size`` sizing rule (Section 3.4)."""
    if cache_size_bytes <= 0 or block_size <= 0:
        raise IndexError_("cache size and block size must be positive")
    return max(1, cache_size_bytes // block_size)
