"""Fixed-width posting encodings for merged posting lists.

A posting is one ``(document ID, term code)`` pair.  The paper budgets
"500 8-byte postings per document" (Section 2.3), so the canonical
encoding here is 8 bytes: a 4-byte document ID (the paper sizes N at
2^32, Section 4.5) plus a 4-byte term code.

The term code exists because of merging (Figure 1(b)): once several terms
share a posting list, "we must store (an encoding of) the keyword with
each entry in a merged list" to filter false positives.  The paper notes
the code needs only ``log2(q)`` bits for ``q`` merged terms (less with
Huffman coding) and excludes that refinement from its analysis; we do the
same, storing a fixed-width code and exposing the bit-count model in
:func:`term_code_bits` for the space discussion.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.errors import IndexError_

#: Size of one encoded posting in bytes (4-byte doc ID + 4-byte term code).
POSTING_SIZE = 8

#: Largest encodable document ID (N = 2^32, Section 4.5).
MAX_DOC_ID = 2**32 - 1

#: Largest encodable term code.
MAX_TERM_CODE = 2**32 - 1

_STRUCT = struct.Struct("<II")


@dataclass(frozen=True, order=True)
class Posting:
    """One decoded posting list entry.

    Ordering is by ``(doc_id, term_code)`` so sorted runs of postings sort
    primarily by document ID, the invariant every index here relies on.
    """

    doc_id: int
    term_code: int


def encode_posting(doc_id: int, term_code: int) -> bytes:
    """Encode a posting as :data:`POSTING_SIZE` little-endian bytes.

    Raises
    ------
    IndexError_
        If either field is out of its 32-bit range.
    """
    if not 0 <= doc_id <= MAX_DOC_ID:
        raise IndexError_(f"doc_id {doc_id} out of range [0, {MAX_DOC_ID}]")
    if not 0 <= term_code <= MAX_TERM_CODE:
        raise IndexError_(f"term_code {term_code} out of range [0, {MAX_TERM_CODE}]")
    return _STRUCT.pack(doc_id, term_code)


def decode_posting(payload: bytes, offset: int = 0) -> Posting:
    """Decode one posting from ``payload`` at ``offset``."""
    doc_id, term_code = _STRUCT.unpack_from(payload, offset)
    return Posting(doc_id, term_code)


def decode_postings(payload: bytes):
    """Decode a whole block's worth of postings into a list.

    ``payload`` must be a multiple of :data:`POSTING_SIZE` bytes long —
    posting lists never split an entry across blocks.
    """
    if len(payload) % POSTING_SIZE:
        raise IndexError_(
            f"posting region of {len(payload)} bytes is not a multiple of "
            f"{POSTING_SIZE}"
        )
    return [Posting(d, t) for d, t in _STRUCT.iter_unpack(payload)]


#: Largest term ID representable when frequency metadata shares the code
#: field (24 bits of term ID + 8 bits of capped frequency).
MAX_TERM_ID_WITH_TF = 2**24 - 1

#: Largest within-document frequency stored in the metadata byte.
MAX_PACKED_TF = 255


def pack_term_tf(term_id: int, tf: int) -> int:
    """Pack a term ID and its within-document frequency into one code.

    The paper's postings carry "additional metadata such as keyword
    frequency" alongside the document ID; this keeps the 8-byte posting
    budget by packing a saturating 8-bit frequency into the code field's
    high byte (term IDs then live in 24 bits — 16.7M terms, ample for
    the paper's >1M-term vocabulary).
    """
    if not 0 <= term_id <= MAX_TERM_ID_WITH_TF:
        raise IndexError_(
            f"term_id {term_id} out of packed range [0, {MAX_TERM_ID_WITH_TF}]"
        )
    if tf < 1:
        raise IndexError_(f"tf must be >= 1, got {tf}")
    return term_id | (min(tf, MAX_PACKED_TF) << 24)


def unpack_term_tf(code: int) -> "tuple[int, int]":
    """Inverse of :func:`pack_term_tf`: ``(term_id, tf)``.

    Codes written without packing (tf byte zero) decode as ``tf = 1`` so
    that mixed-era posting lists stay readable.
    """
    term_id = code & MAX_TERM_ID_WITH_TF
    tf = code >> 24
    return term_id, max(1, tf)


def term_code_bits(terms_merged: int) -> int:
    """Bits needed to disambiguate ``terms_merged`` terms in one list.

    The paper's ``log(q)``-bit model (Section 3).  Returns 0 for unmerged
    (single-term) lists, which need no code at all.
    """
    if terms_merged <= 0:
        raise IndexError_(f"terms_merged must be positive, got {terms_merged}")
    if terms_merged == 1:
        return 0
    return math.ceil(math.log2(terms_merged))
