"""Append-only block-structured posting lists on WORM storage.

A :class:`PostingList` is the durable unit of the trustworthy inverted
index: one WORM file of fixed-size blocks, each holding up to ``p``
encoded postings (plus optional write-once jump-pointer slots managed by
:class:`~repro.core.block_jump_index.BlockJumpIndex`).

Invariants enforced on the write path (honest writers):

* document IDs are appended in **non-decreasing** order — strictly
  increasing per term, but a merged list legitimately carries one entry
  per (document, term) pair, so equal consecutive IDs with different term
  codes occur;
* entries are never modified or removed (WORM semantics, enforced a layer
  below by the device).

Read-path bookkeeping: every block load is counted both in the storage
cache (insert-path experiments) and in a per-list / per-cursor counter
(query-path experiments, where the paper reports raw "blocks read").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DocumentIdOrderError, IndexError_, TamperDetectedError
from repro.core.posting import (
    MAX_TERM_ID_WITH_TF,
    POSTING_SIZE,
    Posting,
    encode_posting,
)
from repro.core.vecdecode import DecodedBlock
from repro.worm.storage import CachedWormStore


class PostingList:
    """One append-only posting list in a WORM file.

    Parameters
    ----------
    store:
        The cached WORM store holding the list.
    name:
        WORM file name (unique per list, e.g. ``"pl/00042"``).
    entries_per_block:
        Cap ``p`` on postings per block.  Defaults to the raw block
        capacity; jump-indexed lists pass a smaller value so the block
        also fits its pointer slots (Section 4.5's ``8p + 4(B-1)log_B(N)
        <= L`` budget).
    slot_count:
        Write-once pointer slots reserved per block (0 when no jump index
        is attached).
    """

    def __init__(
        self,
        store: CachedWormStore,
        name: str,
        *,
        entries_per_block: Optional[int] = None,
        slot_count: int = 0,
    ):
        max_entries = store.block_size // POSTING_SIZE
        if entries_per_block is None:
            entries_per_block = max_entries
        if not 0 < entries_per_block <= max_entries:
            raise IndexError_(
                f"entries_per_block must be in [1, {max_entries}], "
                f"got {entries_per_block}"
            )
        self.store = store
        self.name = name
        self.entries_per_block = entries_per_block
        #: Optional shared decoded-block cache (query read path only).
        #: Set by the engine when read caching is enabled; audits and
        #: restart recovery never consult it.
        self.read_cache = None
        #: Optional ``(blocks_counter, postings_counter)`` pair; when the
        #: engine attaches one, every block decode increments both (the
        #: ``repro_decode_*_total`` observability series).
        self.decode_metrics = None
        self._file = store.ensure_file(name, slot_count=slot_count)
        #: Total committed postings.
        self.count = 0
        #: Largest appended document ID (-1 when empty).
        self.last_doc_id = -1
        #: Number of postings in the (current) tail block.
        self._tail_entries = 0
        # Application-memory copy of each block's largest doc ID.  The
        # paper's Section 4.5 explicitly budgets this kind of metadata in
        # the *indexing code's* own memory; certified readers never trust
        # it and always re-derive largest IDs from block contents.
        self._block_max: List[int] = []
        if self._file.num_blocks:
            self._restore_from_worm()

    def _restore_from_worm(self) -> None:
        """Rebuild writer-memory state from committed blocks (reopen path).

        One uncounted pass — restart recovery is not part of any reported
        I/O figure.  Enforces the same order invariant as the write path;
        a violation here means the stored list was tampered with between
        sessions.
        """
        last = -1
        for block_no in range(self._file.num_blocks):
            entries = self.read_block_postings(block_no, counted=False)
            for doc_id in entries.doc_ids:
                if doc_id < last:
                    raise TamperDetectedError(
                        f"doc ID {doc_id} after {last}",
                        location=f"posting list '{self.name}', block {block_no}",
                        invariant="posting-monotonicity",
                    )
                last = doc_id
            self.count += len(entries)
            self._block_max.append(entries.doc_ids[-1] if len(entries) else last)
            self._tail_entries = len(entries)
        self.last_doc_id = last

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks."""
        return self._file.num_blocks

    def __len__(self) -> int:
        return self.count

    def block_max_hint(self, block_no: int) -> int:
        """Writer-memory hint of block ``block_no``'s largest doc ID.

        Not trusted at query time; used only by the insert path's
        tail-path optimization.
        """
        return self._block_max[block_no]

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, doc_id: int, term_code: int = 0) -> Tuple[int, int]:
        """Append one posting; returns ``(block_no, index_within_block)``.

        Raises
        ------
        DocumentIdOrderError
            If ``doc_id`` is smaller than the last appended ID.  Honest
            writers assign IDs from an increasing counter, so this is a
            caller bug, not tampering.
        """
        if doc_id < self.last_doc_id:
            raise DocumentIdOrderError(
                f"doc_id {doc_id} < last appended {self.last_doc_id} in "
                f"posting list '{self.name}'"
            )
        force_new = self._tail_entries >= self.entries_per_block
        payload = encode_posting(doc_id, term_code)
        block_no, offset = self.store.append_record(
            self.name, payload, force_new_block=force_new
        )
        index = offset // POSTING_SIZE
        if index == 0:
            self._tail_entries = 0
            self._block_max.append(doc_id)
        self._tail_entries += 1
        self._block_max[block_no] = doc_id
        self.count += 1
        self.last_doc_id = doc_id
        if self.read_cache is not None:
            # The tail block's decoded contents just changed; frozen
            # blocks are untouched, so this is the only key to drop.
            self.read_cache.invalidate(self.name, block_no)
        return block_no, index

    def append_many(
        self, entries: Iterable[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Append ``(doc_id, term_code)`` postings in one batched pass.

        Entries must arrive in non-decreasing doc-id order (enforced, as
        in :meth:`append`).  Every entry runs the exact same per-record
        cache lifecycle as a standalone append, so I/O accounting is
        identical entry-for-entry; batching only amortizes per-call
        bookkeeping.  Returns the position of the last appended posting.
        """
        position = (-1, -1)
        for doc_id, term_code in entries:
            position = self.append(doc_id, term_code)
        return position

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_block_postings(self, block_no: int, *, counted: bool = True) -> DecodedBlock:
        """Decode all postings of block ``block_no``.

        Returns a :class:`~repro.core.vecdecode.DecodedBlock` — parallel
        doc-ID / term-code columns decoded in one pass, compatible with
        the ``List[Posting]`` the scalar decoder used to return.

        ``counted=True`` routes the access through the storage cache so it
        contributes to I/O statistics; auditors pass ``counted=False``.
        This path never consults the read cache — use
        :meth:`load_block_postings` on the query path.
        """
        if counted:
            payload = self.store.read_block(self.name, block_no)
        else:
            payload = self.store.peek_block(self.name, block_no)
        entries = DecodedBlock.from_payload(payload)
        metrics = self.decode_metrics
        if metrics is not None:
            metrics[0].inc()
            metrics[1].inc(len(entries))
        return entries

    def load_block_postings(self, block_no: int) -> Tuple[DecodedBlock, bool]:
        """Query-path block load; returns ``(entries, served_from_cache)``.

        When a read cache is attached, frozen decoded blocks are served
        from memory (the tail block is cached too, but every append
        invalidates it, so stale data can never be returned).  The
        returned list must be treated as read-only.  Without a cache this
        is exactly an uncounted :meth:`read_block_postings`.
        """
        cache = self.read_cache
        if cache is not None:
            entries = cache.get(self.name, block_no)
            if entries is not None:
                return entries, True
        entries = self.read_block_postings(block_no, counted=False)
        if cache is not None:
            cache.put(self.name, block_no, entries)
        return entries, False

    def cursor(self, *, term_code: Optional[int] = None) -> "PostingCursor":
        """A forward cursor over the list, optionally term-filtered."""
        return PostingCursor(self, term_code=term_code)

    def scan(self, *, counted: bool = True, cached: bool = False) -> Iterator[Posting]:
        """Yield every posting in order (one counted read per block).

        ``cached=True`` serves blocks through the attached read cache
        (query path); audits keep the default and always hit the device.
        """
        for block_no in range(self.num_blocks):
            if cached:
                entries, _ = self.load_block_postings(block_no)
                yield from entries
            else:
                yield from self.read_block_postings(block_no, counted=counted)

    def scan_columns(
        self, *, counted: bool = True, cached: bool = False
    ) -> Iterator[Tuple[Sequence[int], Sequence[int]]]:
        """Yield ``(doc_ids, term_codes)`` columns per block, in order.

        The batch counterpart of :meth:`scan`: identical block-read
        accounting, but consumers iterate two flat integer columns per
        block instead of a ``Posting`` object stream.
        """
        for block_no in range(self.num_blocks):
            if cached:
                entries, _ = self.load_block_postings(block_no)
            else:
                entries = self.read_block_postings(block_no, counted=counted)
            yield entries.doc_ids, entries.term_codes

    def doc_ids(self, *, counted: bool = False) -> List[int]:
        """All document IDs in order (convenience for tests and audits)."""
        out: List[int] = []
        for docs, _codes in self.scan_columns(counted=counted):
            out.extend(docs)
        return out

    def verify_order(self) -> None:
        """Audit that stored doc IDs are non-decreasing.

        An honest writer can never produce a violation (``append`` checks
        it), so a stored violation means someone appended through a
        lower-level interface — tampering.
        """
        last = -1
        for block_no in range(self.num_blocks):
            entries = self.read_block_postings(block_no, counted=False)
            for doc_id in entries.doc_ids:
                if doc_id < last:
                    raise TamperDetectedError(
                        f"doc ID {doc_id} after {last}",
                        location=f"posting list '{self.name}', block {block_no}",
                        invariant="posting-monotonicity",
                    )
                last = doc_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PostingList('{self.name}', count={self.count}, "
            f"blocks={self.num_blocks})"
        )


class PostingCursor:
    """Forward-only iterator over a posting list with block-read counting.

    The cursor is the abstraction the zigzag join drives: it exposes the
    current posting, sequential advance, and (via an attached jump index)
    ``find_geq``.  Distinct blocks loaded are tracked in
    :attr:`blocks_read` — re-visiting a block already read during this
    cursor's lifetime is free, modelling the query processor's in-memory
    block cache.

    Parameters
    ----------
    posting_list:
        The list to iterate.
    term_code:
        When given, the cursor skips postings of other terms — the
        "remove false positives" filter a merged list requires.  The
        comparison masks off the packed-frequency metadata byte, so both
        raw term codes and :func:`~repro.core.posting.pack_term_tf`-coded
        postings filter correctly.
    """

    def __init__(self, posting_list: PostingList, *, term_code: Optional[int] = None):
        self.posting_list = posting_list
        self.term_code = term_code
        # Precomputed filter target: the masked term ID the cursor keeps.
        self._want = (
            None if term_code is None else term_code & MAX_TERM_ID_WITH_TF
        )
        #: Distinct block numbers loaded by this cursor.
        self.blocks_read: Set[int] = set()
        #: Block loads served by the list's shared read cache (0 when the
        #: engine runs cache-off).
        self.cache_hits = 0
        # Decoded blocks already paid for during this cursor's lifetime —
        # the query processor's in-memory block cache.
        self._decoded: dict = {}
        self._block_no = -1
        self._entries: DecodedBlock = DecodedBlock.from_payload(b"")
        self._docs: Sequence[int] = self._entries.doc_ids
        self._codes: Sequence[int] = self._entries.term_codes
        self._index = 0
        self._exhausted = posting_list.num_blocks == 0
        if not self._exhausted:
            self._load_block(0)
            self._settle()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Whether the cursor has moved past the last matching posting."""
        return self._exhausted

    @property
    def current(self) -> Posting:
        """The posting under the cursor.

        Raises
        ------
        IndexError_
            If the cursor is exhausted.
        """
        if self._exhausted:
            raise IndexError_(
                f"cursor over '{self.posting_list.name}' is exhausted"
            )
        return Posting(self._docs[self._index], self._codes[self._index])

    @property
    def current_doc(self) -> int:
        """Document ID under the cursor, without materializing a posting.

        Raises
        ------
        IndexError_
            If the cursor is exhausted.
        """
        if self._exhausted:
            raise IndexError_(
                f"cursor over '{self.posting_list.name}' is exhausted"
            )
        return self._docs[self._index]

    @property
    def position(self) -> Tuple[int, int]:
        """``(block_no, index_within_block)`` of the current posting."""
        return self._block_no, self._index

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Move to the next matching posting (sequentially)."""
        if self._exhausted:
            return
        self._index += 1
        self._settle()

    def seek_geq_sequential(self, doc_id: int) -> None:
        """Advance until ``current.doc_id >= doc_id`` (pure scan).

        This is the no-auxiliary-index FindGeq a scan-merge join uses;
        jump-indexed seeks live on
        :class:`~repro.core.block_jump_index.BlockJumpIndex`.

        Every block between the cursor and the target is still loaded
        (sequential semantics — identical block-read accounting to the
        element-wise scan), but within each block the position advances
        with one ``bisect`` over the sorted doc-ID column instead of
        per-posting steps.
        """
        while not self._exhausted:
            docs = self._docs
            if docs and docs[-1] >= doc_id:
                self._index = bisect_left(docs, doc_id, self._index)
                self._settle()
                return
            next_block = self._block_no + 1
            if next_block >= self.posting_list.num_blocks:
                self._exhausted = True
                return
            self._load_block(next_block)
            self._index = 0

    def exhaust(self) -> None:
        """Mark the cursor exhausted without scanning the remaining blocks.

        Used when an index proves no further matching entry exists (e.g.
        the tail block's largest ID is below a find_geq target).
        """
        self._exhausted = True

    def jump_to(self, block_no: int, index: int = 0) -> None:
        """Reposition at ``(block_no, index)`` (used by jump-index seeks)."""
        if block_no < self._block_no:
            raise IndexError_(
                f"cursor over '{self.posting_list.name}' cannot move "
                f"backwards (block {block_no} < {self._block_no})"
            )
        self._load_block(block_no)
        self._index = index
        self._exhausted = False
        self._settle()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _load_block(self, block_no: int) -> None:
        self._block_no = block_no
        entries = self.peek_block(block_no)
        self._entries = entries
        if isinstance(entries, DecodedBlock):
            self._docs = entries.doc_ids
            self._codes = entries.term_codes
        else:
            self._docs = [p.doc_id for p in entries]
            self._codes = [p.term_code for p in entries]

    def peek_block(self, block_no: int) -> DecodedBlock:
        """Load a block's entries *without* moving the cursor.

        Counts toward :attr:`blocks_read` the first time; afterwards the
        decoded block is served from the cursor's in-memory cache.  Jump
        indexes use this to navigate head-path blocks so that index
        traversal I/O and data I/O are accounted together, as in the
        paper's "number of blocks read" metric (Section 4.5).
        """
        entries = self._decoded.get(block_no)
        if entries is None:
            entries, from_cache = self.posting_list.load_block_postings(block_no)
            self._decoded[block_no] = entries
            self.blocks_read.add(block_no)
            if from_cache:
                self.cache_hits += 1
        return entries

    def block_entries(self) -> DecodedBlock:
        """Entries of the currently loaded block (already paid for)."""
        return self._entries

    def block_doc_ids(self) -> Sequence[int]:
        """Doc-ID column of the currently loaded block (already paid for)."""
        return self._docs

    def _settle(self) -> None:
        """Advance over block boundaries and filtered-out term codes."""
        want = self._want
        while True:
            codes = self._codes
            index = self._index
            if index >= len(codes):
                next_block = self._block_no + 1
                if next_block >= self.posting_list.num_blocks:
                    self._exhausted = True
                    return
                self._load_block(next_block)
                self._index = 0
                continue
            if want is not None:
                size = len(codes)
                while index < size and codes[index] & MAX_TERM_ID_WITH_TF != want:
                    index += 1
                self._index = index
                if index >= size:
                    continue
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "exhausted" if self._exhausted else f"at {self.position}"
        return f"PostingCursor('{self.posting_list.name}', {state})"
