"""Retention periods and trustworthy disposition (Section 2.2).

"While immutability is often specified as a requirement for records,
what is required in practice is that the records be 'term-immutable',
i.e., immutable for a specified retention period."

This module implements the end of a record's life:

* documents commit with a ``retention_until`` horizon; the WORM device
  refuses deletion before it (already enforced in
  :meth:`repro.worm.device.WormDevice.delete_file`);
* after expiry, :class:`RetentionManager` *disposes* of documents —
  deleting the document file while recording the disposition in an
  append-only WORM log.

The log is what keeps disposition trustworthy: index entries for a
disposed document cannot be removed (they are on WORM), so a query may
still surface its ID — and without a disposition record, a dangling ID
is indistinguishable from a posting-stuffing attack (Section 5).  The
log lets a certified reader classify every dangling ID as either
"legitimately disposed on date T, here is the record" or "fabricated —
raise the alarm".
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import TamperDetectedError
from repro.worm.storage import CachedWormStore

_RECORD = struct.Struct("<IQQ")  # doc_id, retention_until, disposed_at


@dataclass(frozen=True)
class Disposition:
    """One recorded disposal of an expired document."""

    doc_id: int
    retention_until: int
    disposed_at: int


class RetentionManager:
    """Tracks retention horizons and performs auditable disposition.

    Parameters
    ----------
    store:
        The WORM store holding both the documents and the disposition log.
    log_name:
        Disposition log file name.
    """

    def __init__(self, store: CachedWormStore, *, log_name: str = "dispositions"):
        self.store = store
        self.log_name = log_name
        self._file = store.ensure_file(log_name)
        self._dispositions: Dict[int, Disposition] = {}
        # Retention horizons learned during sweeps (doc_id -> horizon or
        # None for permanent documents), so repeated sweeps over a large
        # archive don't re-open every WORM file to re-read an unchanged
        # horizon.  Session-scoped: horizons are immutable once a
        # document commits, so the cache can never go stale.
        self._horizons: Dict[int, Optional[int]] = {}
        if self._file.num_blocks:
            for disposition in self.dispositions():
                self._dispositions[disposition.doc_id] = disposition

    def __len__(self) -> int:
        return len(self._dispositions)

    # ------------------------------------------------------------------
    # disposition
    # ------------------------------------------------------------------
    def dispose_expired(self, documents, *, now: int) -> List[int]:
        """Dispose of every committed document whose retention expired.

        ``documents`` is the engine's
        :class:`~repro.search.documents.DocumentStore`.  Returns the IDs
        disposed in this pass.  Documents without a retention horizon
        (``retention_until is None``) are permanent and never disposed.
        """
        missing = object()
        disposed: List[int] = []
        for doc_id in range(documents.next_doc_id):
            prior = self._dispositions.get(doc_id)
            if prior is not None:
                # Crash recovery: the log-then-delete pair below may have
                # been interrupted after the log append committed but
                # before the file deletion ran.  The record alone must
                # not make the sweep skip the document forever — that
                # would leave a "disposed" record for a still-readable
                # file, violating the documented "a re-run simply
                # completes" contract.  Finish the deletion here (the
                # logged horizon is >= the true one, so a `now` past the
                # logged horizon satisfies the WORM deletion check).
                if now >= prior.retention_until and documents.exists(doc_id):
                    self.store.device.delete_file(
                        documents.file_name(doc_id), now=now
                    )
                    self._horizons.pop(doc_id, None)
                    disposed.append(doc_id)
                continue
            horizon = self._horizons.get(doc_id, missing)
            if horizon is missing:
                # First time this sweep path sees the document: read its
                # horizon once and remember it (horizons are committed
                # with the record and never change).
                if not documents.exists(doc_id):
                    continue
                name = documents.file_name(doc_id)
                horizon = self.store.open_file(name).retention_until
                self._horizons[doc_id] = horizon
            if horizon is None or now < horizon:
                # Permanent, or not yet expired; later sweeps skip the
                # WORM open entirely via the horizon cache.
                continue
            # Log first, then delete: a crash between the two leaves a
            # disposition record for a still-present document, which a
            # re-run simply completes (see the recovery branch above);
            # the reverse order would leave an unexplained dangling ID.
            # Legacy archives may hold fractional horizons; the log packs
            # integers, and rounding *up* keeps the logged horizon at or
            # past the true one — truncation would understate retention
            # and let a record claim disposal before its horizon without
            # tripping the replay tamper check.
            self._log(doc_id, math.ceil(horizon), now)
            self.store.device.delete_file(documents.file_name(doc_id), now=now)
            disposed.append(doc_id)
            del self._horizons[doc_id]
        return disposed

    def _log(self, doc_id: int, retention_until: int, disposed_at: int) -> None:
        self.store.append_record(
            self.log_name, _RECORD.pack(doc_id, retention_until, disposed_at)
        )
        self._dispositions[doc_id] = Disposition(
            doc_id=doc_id, retention_until=retention_until, disposed_at=disposed_at
        )

    # ------------------------------------------------------------------
    # certified reads
    # ------------------------------------------------------------------
    def is_disposed(self, doc_id: int) -> bool:
        """Whether ``doc_id`` was legitimately disposed of."""
        return doc_id in self._dispositions

    def disposition_for(self, doc_id: int) -> Optional[Disposition]:
        """The disposition record for ``doc_id``, if any."""
        return self._dispositions.get(doc_id)

    def dispositions(self) -> Iterator[Disposition]:
        """Replay the WORM log, verifying its internal consistency."""
        for block_no in range(self._file.num_blocks):
            payload = self.store.peek_block(self.log_name, block_no)
            for doc_id, retention_until, disposed_at in _RECORD.iter_unpack(payload):
                if disposed_at < retention_until:
                    raise TamperDetectedError(
                        f"doc {doc_id} logged as disposed at {disposed_at}, "
                        f"before its retention horizon {retention_until}",
                        location=f"disposition log '{self.log_name}'",
                        invariant="retention-horizon",
                    )
                yield Disposition(
                    doc_id=doc_id,
                    retention_until=retention_until,
                    disposed_at=disposed_at,
                )

    def classify_dangling(self, doc_id: int) -> str:
        """Explain a document ID that an index returned but WORM lacks.

        Returns ``"disposed"`` (with an auditable record) or
        ``"fabricated"`` (posting stuffing — no legitimate explanation).
        """
        return "disposed" if self.is_disposed(doc_id) else "fabricated"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RetentionManager(dispositions={len(self._dispositions)})"
