"""Immutable WORM segments sealed from the in-memory tail.

A *segment* is one frozen batch of documents: the tail's postings,
regrouped under a Section-3 merging strategy and appended to the
segment's own family of merged WORM posting lists
(``engine/seg/<seg_no>/pl/<list_id>``).  Segments are never modified
after sealing — the WORM device would refuse anyway — which is what
makes the read path snapshot-friendly: a reader holding a list of
sealed segments plus a tail snapshot sees one consistent index no
matter what the sealer and merger do next.

The **manifest** (``engine/segments``) is the atomic commit point.
Sealing writes the segment's posting lists first and appends one
manifest record last; merging does the same with a record that names
its input segments.  A crash anywhere before the manifest append leaves
only orphan list files, which recovery ignores (the manifest is the
sole source of truth — orphans only occupy their segment number, see
:func:`next_seg_no`).  Replay validates the doc-range bookkeeping of
every record; an inconsistent manifest is indistinguishable from
tampering and is reported as such.

Merging is *online*: a merge rewrites several live segments' postings
into one new segment under a freshly chosen strategy and then retires
the inputs in a single manifest append, all while readers keep using
the old segment list they snapshotted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.block_jump_index import BlockJumpIndex
from repro.core.merge import PopularUnmergedMerge, UniformHashMerge
from repro.core.posting import MAX_TERM_ID_WITH_TF
from repro.core.posting_list import PostingList
from repro.errors import TamperDetectedError, WorkloadError
from repro.search.join import MergedListCursor, conjunctive_join

#: WORM file holding the manifest log.
MANIFEST_FILE = "engine/segments"

#: Name prefix of every segment-resident WORM file.
SEGMENT_PREFIX = "engine/seg/"

#: Assignment strategies a sealed segment can record.
STRATEGY_UNIFORM = 0
STRATEGY_POPULAR = 1

# opcode, seg_no, first_doc, last_doc, doc_count, num_lists, strategy,
# n_popular, n_inputs — followed by n_popular + n_inputs u32 values.
_HEADER = struct.Struct("<BIQQQIBHH")
_U32 = struct.Struct("<I")

_OP_SEAL = 1
_OP_MERGE = 2


def segment_list_name(seg_no: int, list_id: int) -> str:
    """The WORM file holding one merged list of one segment."""
    return f"{SEGMENT_PREFIX}{seg_no:06d}/pl/{list_id:08d}"


@dataclass(frozen=True)
class SegmentInfo:
    """One sealed segment's manifest record.

    ``popular_terms`` and ``strategy`` pin the term→list assignment the
    sealer used, so readers rebuild the exact same mapping in any later
    session.  ``inputs`` is empty for a seal and names the retired
    segments for a merge.
    """

    seg_no: int
    first_doc: int
    last_doc: int
    doc_count: int
    num_lists: int
    strategy: int
    popular_terms: Tuple[int, ...] = ()
    inputs: Tuple[int, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (CLI ``segments`` subcommand)."""
        return {
            "seg_no": self.seg_no,
            "first_doc": self.first_doc,
            "last_doc": self.last_doc,
            "doc_count": self.doc_count,
            "num_lists": self.num_lists,
            "strategy": (
                "popular" if self.strategy == STRATEGY_POPULAR else "uniform"
            ),
            "popular_terms": len(self.popular_terms),
            "merged_from": list(self.inputs),
        }


def _pack_record(info: SegmentInfo) -> bytes:
    opcode = _OP_MERGE if info.inputs else _OP_SEAL
    head = _HEADER.pack(
        opcode,
        info.seg_no,
        info.first_doc,
        info.last_doc,
        info.doc_count,
        info.num_lists,
        info.strategy,
        len(info.popular_terms),
        len(info.inputs),
    )
    tail = b"".join(
        _U32.pack(v) for v in (*info.popular_terms, *info.inputs)
    )
    return head + tail


def _unpack_records(payload: bytes, *, location: str) -> Iterator[SegmentInfo]:
    offset = 0
    while offset < len(payload):
        if offset + _HEADER.size > len(payload):
            raise TamperDetectedError(
                f"truncated manifest record at byte {offset}",
                location=location,
                invariant="segment-manifest",
            )
        (
            opcode,
            seg_no,
            first_doc,
            last_doc,
            doc_count,
            num_lists,
            strategy,
            n_popular,
            n_inputs,
        ) = _HEADER.unpack_from(payload, offset)
        offset += _HEADER.size
        extra = n_popular + n_inputs
        if opcode not in (_OP_SEAL, _OP_MERGE) or (
            offset + extra * _U32.size > len(payload)
        ):
            raise TamperDetectedError(
                f"malformed manifest record at byte {offset - _HEADER.size}",
                location=location,
                invariant="segment-manifest",
            )
        values = [
            _U32.unpack_from(payload, offset + i * _U32.size)[0]
            for i in range(extra)
        ]
        offset += extra * _U32.size
        inputs = tuple(values[n_popular:])
        if (opcode == _OP_MERGE) != bool(inputs):
            raise TamperDetectedError(
                f"manifest opcode {opcode} disagrees with its "
                f"{len(inputs)} input references",
                location=location,
                invariant="segment-manifest",
            )
        yield SegmentInfo(
            seg_no=seg_no,
            first_doc=first_doc,
            last_doc=last_doc,
            doc_count=doc_count,
            num_lists=num_lists,
            strategy=strategy,
            popular_terms=tuple(values[:n_popular]),
            inputs=inputs,
        )


class SegmentManifest:
    """Append-only WORM log of seal and merge events.

    Replaying the log yields the *live* segment list: a seal appends its
    segment; a merge replaces the contiguous run of live segments it
    names with the merged one.  Every transition is validated — ranges
    must stay disjoint and ascending — so a log that does not describe a
    reachable index state raises :class:`TamperDetectedError` instead of
    silently corrupting reads.
    """

    def __init__(self, store, *, name: str = MANIFEST_FILE):
        self.store = store
        self.name = name
        self._file = store.ensure_file(name)
        self._records: List[SegmentInfo] = []
        self._live: List[SegmentInfo] = []
        if self._file.num_blocks:
            payload = b"".join(
                store.peek_block(name, b)
                for b in range(self._file.num_blocks)
            )
            for info in _unpack_records(
                payload, location=f"segment manifest '{name}'"
            ):
                self._apply(info)
                self._records.append(info)

    # ------------------------------------------------------------------
    def live(self) -> List[SegmentInfo]:
        """Live segments in ascending doc-range order."""
        return list(self._live)

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def max_seg_no(self) -> int:
        """Highest segment number ever recorded (``-1`` when empty)."""
        return max((r.seg_no for r in self._records), default=-1)

    @property
    def sealed_through(self) -> int:
        """Highest doc id covered by a live segment (``-1`` when none)."""
        return self._live[-1].last_doc if self._live else -1

    # ------------------------------------------------------------------
    def append(self, info: SegmentInfo) -> None:
        """Validate, commit, and apply one seal/merge record.

        Validation runs *before* the WORM append so an inconsistent
        record is refused rather than committed and rejected at every
        future replay.
        """
        self._validate(info)
        self.store.append_record(self.name, _pack_record(info))
        self._apply(info, validated=True)
        self._records.append(info)

    def _validate(self, info: SegmentInfo) -> None:
        if info.doc_count < 1 or info.first_doc > info.last_doc:
            raise TamperDetectedError(
                f"segment {info.seg_no} has an empty or inverted doc "
                f"range [{info.first_doc}, {info.last_doc}]",
                location=f"segment manifest '{self.name}'",
                invariant="segment-manifest",
            )
        if any(r.seg_no == info.seg_no for r in self._records):
            raise TamperDetectedError(
                f"segment number {info.seg_no} reused",
                location=f"segment manifest '{self.name}'",
                invariant="segment-manifest",
            )
        if not info.inputs:
            if info.first_doc <= self.sealed_through:
                raise TamperDetectedError(
                    f"segment {info.seg_no} starts at doc "
                    f"{info.first_doc}, inside the sealed range "
                    f"(through {self.sealed_through})",
                    location=f"segment manifest '{self.name}'",
                    invariant="segment-manifest",
                )
            return
        run = self._input_run(info)
        if (
            info.first_doc != run[0].first_doc
            or info.last_doc != run[-1].last_doc
            or info.doc_count != sum(r.doc_count for r in run)
        ):
            raise TamperDetectedError(
                f"merged segment {info.seg_no} does not cover exactly "
                f"its inputs {info.inputs}",
                location=f"segment manifest '{self.name}'",
                invariant="segment-manifest",
            )

    def _input_run(self, info: SegmentInfo) -> List[SegmentInfo]:
        live_nos = [r.seg_no for r in self._live]
        try:
            start = live_nos.index(info.inputs[0])
        except ValueError:
            start = -1
        if (
            start < 0
            or live_nos[start : start + len(info.inputs)]
            != list(info.inputs)
        ):
            raise TamperDetectedError(
                f"merge record {info.seg_no} references segments "
                f"{info.inputs} that are not a contiguous live run "
                f"(live: {live_nos})",
                location=f"segment manifest '{self.name}'",
                invariant="segment-manifest",
            )
        return self._live[start : start + len(info.inputs)]

    def _apply(self, info: SegmentInfo, *, validated: bool = False) -> None:
        if not validated:
            self._validate(info)
        if not info.inputs:
            self._live.append(info)
            return
        retired = set(info.inputs)
        index = next(
            i
            for i, r in enumerate(self._live)
            if r.seg_no == info.inputs[0]
        )
        self._live = [r for r in self._live if r.seg_no not in retired]
        self._live.insert(index, info)


def next_seg_no(device, manifest: SegmentManifest) -> int:
    """The next unused segment number.

    Counts both manifest-recorded segments and *orphan* segment files —
    list files a crashed seal/merge left behind without a manifest
    record.  Orphans are dead weight on WORM (they cannot be deleted
    before their implicit horizon) but must never be overwritten, so
    their numbers stay burned.
    """
    highest = manifest.max_seg_no
    for name in device.list_files():
        if name.startswith(SEGMENT_PREFIX):
            head = name[len(SEGMENT_PREFIX) :].split("/", 1)[0]
            try:
                highest = max(highest, int(head))
            except ValueError:
                continue
    return highest + 1


def _assignment_for(info: SegmentInfo):
    if info.strategy == STRATEGY_POPULAR and info.popular_terms:
        return PopularUnmergedMerge(info.num_lists, list(info.popular_terms))
    return UniformHashMerge(info.num_lists)


class _LazyAssignment:
    """Term→list mapping grown on demand (mirrors the engine's).

    Strategies are stable under universe growth, so re-deriving a larger
    assignment as higher term ids appear never moves an assigned term.
    """

    def __init__(self, strategy):
        self._strategy = strategy
        self._assignment = None

    def list_for(self, term_id: int) -> int:
        if (
            self._assignment is None
            or self._assignment.num_terms <= term_id
        ):
            universe = max(1024, 2 * (term_id + 1))
            self._assignment = self._strategy.assign(universe)
        return self._assignment.list_for(term_id)


def write_segment_lists(
    store,
    seg_no: int,
    postings_by_term: Dict[int, List[Tuple[int, int]]],
    *,
    num_lists: int,
    strategy: int,
    popular_terms: Sequence[int],
    branching: Optional[int],
) -> int:
    """Write segment ``seg_no``'s merged posting lists; returns the
    posting count.  Pure data write — the caller commits the manifest
    record afterwards (the atomic step)."""
    assign = _LazyAssignment(
        _assignment_for(
            SegmentInfo(
                seg_no=seg_no,
                first_doc=0,
                last_doc=0,
                doc_count=1,
                num_lists=num_lists,
                strategy=strategy,
                popular_terms=tuple(popular_terms),
            )
        )
    )
    postings_by_list: Dict[int, List[Tuple[int, int]]] = {}
    total = 0
    for term_id in sorted(postings_by_term):
        entries = postings_by_term[term_id]
        postings_by_list.setdefault(assign.list_for(term_id), []).extend(
            entries
        )
        total += len(entries)
    for list_id in sorted(postings_by_list):
        # Ascending (doc, term) order — the same order the legacy
        # synchronous path appends in, so monotonicity invariants and
        # jump-pointer placement are identical.
        entries = sorted(
            postings_by_list[list_id],
            key=lambda e: (e[0], e[1] & MAX_TERM_ID_WITH_TF),
        )
        name = segment_list_name(seg_no, list_id)
        if branching is not None:
            BlockJumpIndex.create(store, name, branching=branching).insert_many(
                entries
            )
        else:
            PostingList(store, name).append_many(entries)
    return total


class SealedSegment:
    """Read-side handle of one sealed segment.

    Lazily attaches the segment's posting lists (and jump indexes) and
    resolves term→list through the assignment pinned in the manifest
    record.  Handles plug into the engine's read cache exactly like the
    legacy merged lists: decoded-block and jump-memo tiers key on the
    segment-scoped file names.
    """

    def __init__(
        self,
        store,
        info: SegmentInfo,
        *,
        branching: Optional[int],
        read_cache=None,
        decode_metrics=None,
    ):
        self.store = store
        self.info = info
        self.branching = branching
        self.read_cache = read_cache
        self.decode_metrics = decode_metrics
        self._assign = _LazyAssignment(_assignment_for(info))
        self._lists: Dict[int, PostingList] = {}
        self._jumps: Dict[int, BlockJumpIndex] = {}

    # ------------------------------------------------------------------
    def list_for(self, term_id: int) -> int:
        return self._assign.list_for(term_id)

    def _attach(self, list_id: int) -> Optional[PostingList]:
        posting_list = self._lists.get(list_id)
        if posting_list is None:
            name = segment_list_name(self.info.seg_no, list_id)
            if not self.store.device.exists(name):
                return None
            if self.branching is not None:
                jump = BlockJumpIndex.create(
                    self.store, name, branching=self.branching
                )
                posting_list = jump.posting_list
                self._jumps[list_id] = jump
                if self.read_cache is not None:
                    jump.memo = self.read_cache.memo_for(name)
            else:
                posting_list = PostingList(self.store, name)
            if self.read_cache is not None:
                posting_list.read_cache = self.read_cache.blocks
            if self.decode_metrics is not None:
                posting_list.decode_metrics = self.decode_metrics
            self._lists[list_id] = posting_list
        return posting_list

    # ------------------------------------------------------------------
    # query paths
    # ------------------------------------------------------------------
    def conjunctive_doc_ids(
        self, term_ids: Sequence[int]
    ) -> Tuple[List[int], int, int]:
        """Documents in this segment containing *all* terms.

        Returns ``(doc_ids, seeks, blocks_read)``; an absent or empty
        list short-circuits to no matches.
        """
        cursors: List[MergedListCursor] = []
        for term_id in term_ids:
            list_id = self.list_for(term_id)
            posting_list = self._attach(list_id)
            if posting_list is None or not len(posting_list):
                return [], 0, 0
            cursors.append(
                MergedListCursor(
                    posting_list,
                    term_code=term_id,
                    jump_index=self._jumps.get(list_id),
                )
            )
        doc_ids, blocks = conjunctive_join(cursors)
        return doc_ids, sum(c.seeks for c in cursors), blocks

    def collect_candidates(
        self,
        wanted: Sequence[int],
        candidates: Dict[int, Dict[int, int]],
        *,
        cached: bool = False,
    ) -> int:
        """Max-merge the wanted terms' postings into ``candidates``
        (disjunctive path); returns entries scanned."""
        wanted_set = set(wanted)
        entries = 0
        for list_id in sorted({self.list_for(t) for t in wanted_set}):
            posting_list = self._attach(list_id)
            if posting_list is None:
                continue
            # Columnar scan: per block, two flat integer columns instead
            # of a Posting object per entry; the unpack is inlined.
            for docs, codes in posting_list.scan_columns(
                counted=False, cached=cached
            ):
                entries += len(docs)
                for doc_id, code in zip(docs, codes):
                    term_id = code & MAX_TERM_ID_WITH_TF
                    if term_id in wanted_set:
                        tf_map = candidates.setdefault(doc_id, {})
                        tf = code >> 24
                        if tf < 1:
                            tf = 1
                        if tf > tf_map.get(term_id, 0):
                            tf_map[term_id] = tf
        return entries

    # ------------------------------------------------------------------
    # maintenance / audit
    # ------------------------------------------------------------------
    def list_file_names(self) -> List[str]:
        """Every committed list file of this segment (sorted)."""
        prefix = f"{SEGMENT_PREFIX}{self.info.seg_no:06d}/"
        return sorted(
            name
            for name in self.store.device.list_files()
            if name.startswith(prefix)
        )

    def attached_lists(
        self,
    ) -> Iterator[Tuple[PostingList, Optional[BlockJumpIndex]]]:
        """Attach and yield every committed ``(list, jump)`` pair."""
        for name in self.list_file_names():
            list_id = int(name.rsplit("/", 1)[1])
            posting_list = self._attach(list_id)
            if posting_list is not None:
                yield posting_list, self._jumps.get(list_id)

    def postings_by_term(self) -> Dict[int, List[Tuple[int, int]]]:
        """All postings regrouped per term, doc order (merge input).

        Uncached scan: merging is maintenance and must not evict the
        query working set from the decoded-block tier.
        """
        grouped: Dict[int, List[Tuple[int, int]]] = {}
        for posting_list, _ in self.attached_lists():
            for posting in posting_list.scan(counted=False):
                term_id = posting.term_code & MAX_TERM_ID_WITH_TF
                grouped.setdefault(term_id, []).append(
                    (posting.doc_id, posting.term_code)
                )
        return grouped

    def posting_count(self) -> int:
        return sum(len(pl) for pl, _ in self.attached_lists())

    def block_count(self) -> int:
        return sum(pl.num_blocks for pl, _ in self.attached_lists())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SealedSegment(no={self.info.seg_no}, "
            f"docs=[{self.info.first_doc},{self.info.last_doc}])"
        )


def choose_popular_terms(
    counts: Dict[int, int], k: int, num_lists: int
) -> Tuple[int, ...]:
    """The ``k`` most posting-heavy terms (ties broken by term id).

    Clamped so at least one hashed list remains
    (:class:`~repro.core.merge.PopularUnmergedMerge` requires
    ``len(popular) < num_lists``).
    """
    k = max(0, min(k, num_lists - 1, len(counts)))
    if k == 0:
        return ()
    ranked = sorted(counts, key=lambda t: (-counts[t], t))
    return tuple(sorted(ranked[:k]))


def validate_seal_strategy(name: str) -> str:
    """Validate an ``EngineConfig.seal_strategy`` value."""
    if name not in ("uniform", "popular", "epoch"):
        raise WorkloadError(
            f"unknown seal strategy '{name}'; choose from "
            f"'uniform', 'popular', 'epoch'"
        )
    return name
