"""Jump-index space-overhead model (Section 4.5, Figure 8(a)).

A jump-indexed posting-list block of size ``L`` holds ``p`` 8-byte
postings and ``(B-1) * ceil(log_B(N))`` 4-byte jump pointers, subject to

    8*p + 4*(B-1)*log_B(N) <= L

The paper sets ``N = 2**32`` ("roughly 4 billion, which should be adequate
for typical business usage") and reports, e.g., 11% overhead for
``B = 32`` and ``L = 8 KB``.  These functions are the analytic source for
the Figure 8(a) benchmark and for sizing real posting lists in
:class:`~repro.core.block_jump_index.BlockJumpIndex`.
"""

from __future__ import annotations


from repro.errors import IndexError_

#: Bytes per jump pointer (block addresses; Section 4.5 assumes 4 bytes).
POINTER_SIZE = 4

#: Bytes per posting entry (Section 4.5 assumes 8 bytes).
POSTING_BYTES = 8

#: The paper's document-ID space: N = 2**32.
DEFAULT_N = 2**32


def levels(branching: int, n: int = DEFAULT_N) -> int:
    """``ceil(log_B(N))`` — number of pointer levels per block."""
    if branching < 2:
        raise IndexError_(f"branching must be >= 2, got {branching}")
    if n < 2:
        raise IndexError_(f"N must be >= 2, got {n}")
    count = 0
    reach = 1
    while reach < n:
        reach *= branching
        count += 1
    return count


def jump_pointers_per_block(branching: int, n: int = DEFAULT_N) -> int:
    """``(B-1) * ceil(log_B(N))`` pointers stored in every block."""
    return (branching - 1) * levels(branching, n)


def pointer_bytes_per_block(branching: int, n: int = DEFAULT_N) -> int:
    """Bytes of pointer space reserved per block."""
    return POINTER_SIZE * jump_pointers_per_block(branching, n)


def postings_per_block(
    block_size: int, branching: int, n: int = DEFAULT_N
) -> int:
    """Largest ``p`` satisfying the block budget ``8p + 4(B-1)log_B(N) <= L``.

    Raises
    ------
    IndexError_
        If the pointers alone exceed the block — the configuration is
        unusable (e.g. huge ``B`` with a tiny block).
    """
    if block_size <= 0:
        raise IndexError_(f"block_size must be positive, got {block_size}")
    budget = block_size - pointer_bytes_per_block(branching, n)
    p = budget // POSTING_BYTES
    if p < 1:
        raise IndexError_(
            f"block of {block_size} bytes cannot fit any posting beside "
            f"{jump_pointers_per_block(branching, n)} pointers (B={branching})"
        )
    return p


def space_overhead(block_size: int, branching: int, n: int = DEFAULT_N) -> float:
    """Pointer space as a fraction of posting space (Figure 8(a)'s y-axis).

    ``overhead = pointer_bytes / (p * 8)`` for the largest feasible ``p``.
    """
    p = postings_per_block(block_size, branching, n)
    return pointer_bytes_per_block(branching, n) / (p * POSTING_BYTES)


def disjunctive_slowdown(block_size: int, branching: int, n: int = DEFAULT_N) -> float:
    """Scan slowdown a jump index imposes on disjunctive workloads.

    Section 4.5: "jump indexes slow down disjunctive query workloads by
    the same factor as the space overhead" — a sequential scan reads the
    pointer bytes along with the postings.  E.g. 1.5% for B=2 and 11% for
    B=32 at 8 KB blocks.
    """
    return space_overhead(block_size, branching, n)
