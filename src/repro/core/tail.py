"""The mutable in-memory tail of a write–read decoupled index.

With tail mode enabled (``EngineConfig.tail_max_docs``), ingest no
longer appends postings to the merged WORM lists synchronously.  Each
document commits to WORM exactly as before — the document bytes, the
commit-time log, and the lexicon are journaled through the existing WAL,
which is what makes the tail *durable*: everything in it is derived
data, rebuilt from those logs on restart (see
``TrustworthySearchEngine._restore_state``).  What the tail buys is a
fast, allocation-only index update on the single-writer path, so
sustained ingest stops stalling queries behind posting-list I/O.

A sealer periodically freezes the tail into an immutable WORM *segment*
(:mod:`repro.core.segments`) and clears it; queries always see the union
of sealed segments and the live tail.

Concurrency contract
--------------------
The tail is written by exactly one writer at a time — the same
single-writer discipline the WORM append path already requires, and the
one the service layer (writer-preferring lock) and the load-test
harness both enforce.  Readers take :meth:`MutableTailIndex.snapshot`,
which is a constant-time capture of the current dict references:

* :meth:`clear` (sealing) replaces the dicts wholesale, so a snapshot
  taken before a seal stays valid forever (copy-on-seal);
* :meth:`add` mutates in place, so snapshots are only isolated from
  concurrent *adds* when readers exclude the writer — which the
  reader-writer lock guarantees wherever the engine is driven
  concurrently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.posting import unpack_term_tf
from repro.errors import WorkloadError


class TailSnapshot:
    """An immutable read view of the tail at one instant.

    Holds references to the tail's internal dicts (cheap — no copying);
    see the module docstring for when those references are stable.
    """

    __slots__ = ("generation", "last_doc", "_postings", "_docs")

    def __init__(
        self,
        generation: int,
        last_doc: Optional[int],
        postings: Dict[int, List[Tuple[int, int]]],
        docs: Dict[int, Dict[int, int]],
    ):
        self.generation = generation
        self.last_doc = last_doc
        self._postings = postings
        self._docs = docs

    def postings_for(self, term_id: int) -> Sequence[Tuple[int, int]]:
        """``(doc_id, packed_code)`` entries of ``term_id``, doc order."""
        return self._postings.get(term_id, ())

    def collect_candidates(
        self,
        wanted: Iterable[int],
        candidates: Dict[int, Dict[int, int]],
    ) -> int:
        """Max-merge the wanted terms' tail postings into ``candidates``
        (the disjunctive path); returns entries scanned."""
        entries = 0
        for term_id in sorted(set(wanted)):
            for doc_id, code in self._postings.get(term_id, ()):
                unpacked_id, tf = unpack_term_tf(code)
                tf_map = candidates.setdefault(doc_id, {})
                tf_map[unpacked_id] = max(tf_map.get(unpacked_id, 0), tf)
                entries += 1
        return entries

    def docs_with_all(self, term_ids: Sequence[int]) -> List[int]:
        """Tail documents containing *all* of ``term_ids`` (doc order)."""
        if not term_ids:
            return []
        # Iterate the rarest term's postings; membership-check the rest.
        rarest = min(term_ids, key=lambda t: len(self._postings.get(t, ())))
        others = [t for t in term_ids if t != rarest]
        return [
            doc_id
            for doc_id, _ in self._postings.get(rarest, ())
            if all(t in self._docs[doc_id] for t in others)
        ]

    @property
    def doc_count(self) -> int:
        return len(self._docs)


class MutableTailIndex:
    """Per-term postings of documents not yet sealed into a segment.

    Postings store the same packed ``term_code`` bytes the merged WORM
    lists do (:func:`repro.core.posting.pack_term_tf`), so tf clamping
    and unpacking behave byte-for-byte like the legacy synchronous path.
    """

    def __init__(self) -> None:
        self._postings: Dict[int, List[Tuple[int, int]]] = {}
        self._docs: Dict[int, Dict[int, int]] = {}
        self._num_postings = 0
        #: Bumped on every structural change (seal/clear).  A component
        #: of the tier-2 result-cache fingerprint: cached results are
        #: conservatively invalidated across seals.
        self.generation = 0

    # ------------------------------------------------------------------
    # write path (single writer)
    # ------------------------------------------------------------------
    def add(self, doc_id: int, codes: Mapping[int, int]) -> None:
        """Register ``doc_id`` with its ``term_id -> packed_code`` map.

        Document IDs must arrive in strictly increasing order — the
        monotonicity invariant every trustworthy index here relies on.
        """
        last = self.last_doc
        if last is not None and doc_id <= last:
            raise WorkloadError(
                f"tail doc ids must be strictly increasing; got {doc_id} "
                f"after {last}"
            )
        self._docs[doc_id] = dict(codes)
        for term_id in sorted(codes):
            self._postings.setdefault(term_id, []).append(
                (doc_id, codes[term_id])
            )
        self._num_postings += len(codes)

    def clear(self) -> None:
        """Drop everything (after sealing) and bump the generation.

        Replaces the dicts instead of clearing them so outstanding
        snapshots keep their pre-seal view (copy-on-seal).
        """
        self._postings = {}
        self._docs = {}
        self._num_postings = 0
        self.generation += 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def snapshot(self) -> TailSnapshot:
        """A constant-time immutable view (see the module docstring)."""
        return TailSnapshot(
            self.generation, self.last_doc, self._postings, self._docs
        )

    @property
    def doc_count(self) -> int:
        return len(self._docs)

    @property
    def posting_count(self) -> int:
        return self._num_postings

    @property
    def first_doc(self) -> Optional[int]:
        return next(iter(self._docs), None)

    @property
    def last_doc(self) -> Optional[int]:
        return next(reversed(self._docs), None)

    def term_counts(self) -> Dict[int, int]:
        """``term_id -> posting count`` (popularity input for sealing)."""
        return {t: len(entries) for t, entries in self._postings.items()}

    def postings_by_term(self) -> Dict[int, List[Tuple[int, int]]]:
        """A defensive copy of all postings, for the sealer."""
        return {t: list(entries) for t, entries in self._postings.items()}

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutableTailIndex(docs={len(self._docs)}, "
            f"postings={self._num_postings}, gen={self.generation})"
        )
