"""Huffman model for per-entry keyword encodings (Section 3, optional).

When posting lists are merged, each entry carries "(an encoding of) the
keyword", costing ``log2(q)`` bits for ``q`` merged terms.  The paper
notes: "This overhead can be reduced further if an encoding scheme like
Huffman encoding is used, since keyword occurrences within merged
posting lists are unlikely to be uniformly distributed" — and excludes
the refinement from its analysis.

This module implements that refinement *as a model*: given the posting
counts of the terms sharing a list, it builds the optimal prefix code
and reports the expected code length, quantifying how much of the
``log2(q)``-bit budget Zipfian skew gives back.  The storage layer keeps
fixed-width codes (as the paper's analysis does); the model feeds the
space accounting and the ABL-TERMCODE ablation benchmark.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.errors import IndexError_


@dataclass
class HuffmanCode:
    """An optimal prefix code over a term-frequency profile.

    Attributes
    ----------
    lengths:
        Code length in bits per term (term -> bits).
    counts:
        The posting counts the code was built from.
    """

    lengths: Dict[int, int]
    counts: Dict[int, int]

    @property
    def num_terms(self) -> int:
        """Number of coded terms (q)."""
        return len(self.lengths)

    def expected_bits(self) -> float:
        """Posting-count-weighted mean code length.

        The per-entry cost a merged list would actually pay, against the
        paper's fixed ``ceil(log2(q))``.
        """
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return (
            sum(self.lengths[t] * c for t, c in self.counts.items()) / total
        )

    def fixed_width_bits(self) -> int:
        """The fixed-width cost the paper's analysis assumes."""
        if self.num_terms <= 1:
            return 0
        return math.ceil(math.log2(self.num_terms))

    def savings_fraction(self) -> float:
        """Fraction of the fixed-width budget the Huffman code saves."""
        fixed = self.fixed_width_bits()
        if fixed == 0:
            return 0.0
        return max(0.0, 1.0 - self.expected_bits() / fixed)


def build_huffman_code(posting_counts: Mapping[int, int]) -> HuffmanCode:
    """Build the optimal prefix code for one merged list's term mix.

    Parameters
    ----------
    posting_counts:
        term -> number of postings that term contributes to the list.
        Zero-count terms are excluded (they never appear in an entry, so
        they need no code).
    """
    counts = {int(t): int(c) for t, c in posting_counts.items() if c > 0}
    if not counts:
        raise IndexError_("cannot build a code over zero postings")
    if len(counts) == 1:
        term = next(iter(counts))
        return HuffmanCode(lengths={term: 0}, counts=counts)
    # Standard Huffman: merge the two lightest subtrees until one remains;
    # a term's depth is how many merges its subtree went through.
    heap = [(c, i, (t,)) for i, (t, c) in enumerate(sorted(counts.items()))]
    heapq.heapify(heap)
    lengths = {t: 0 for t in counts}
    tiebreak = len(heap)
    while len(heap) > 1:
        c1, _, terms1 = heapq.heappop(heap)
        c2, _, terms2 = heapq.heappop(heap)
        for t in terms1 + terms2:
            lengths[t] += 1
        heapq.heappush(heap, (c1 + c2, tiebreak, terms1 + terms2))
        tiebreak += 1
    return HuffmanCode(lengths=lengths, counts=counts)


def entropy_bits(posting_counts: Mapping[int, int]) -> float:
    """Shannon entropy of the term mix — the code-length lower bound."""
    total = sum(c for c in posting_counts.values() if c > 0)
    if total <= 0:
        return 0.0
    h = 0.0
    for c in posting_counts.values():
        if c > 0:
            p = c / total
            h -= p * math.log2(p)
    return h


def merged_list_code_stats(
    term_ids: Sequence[int], posting_counts: Sequence[int]
) -> HuffmanCode:
    """Convenience wrapper pairing parallel term/count sequences."""
    if len(term_ids) != len(posting_counts):
        raise IndexError_("term_ids and posting_counts must align")
    return build_huffman_code(dict(zip(map(int, term_ids), map(int, posting_counts))))
