"""Trustworthy commit-time index (Section 5).

Investigators supply target time ranges ("Nov.–Dec. 2001"); supporting
them trustworthily requires an index on document commit times such that
Mala can neither retroactively insert records "committed" in an earlier
period nor eliminate any entry from a time-range query result.

:class:`CommitTimeIndex` delivers both guarantees with the paper's own
machinery: an append-only WORM log of ``(commit_time, doc_id)`` records —
both components monotonic, so any retro-dated append is a monotonicity
violation detectable at read time — plus a binary jump index over the
distinct commit times whose node payloads are log offsets, giving
``O(log N)`` trustworthy range queries (the jump index's Proposition 3
guarantees no committed entry can be skipped).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.core.jump_index import JumpIndex
from repro.errors import DocumentIdOrderError, TamperDetectedError
from repro.worm.storage import CachedWormStore

_RECORD = struct.Struct("<QI")
#: Bytes per (commit_time, doc_id) log record: 8-byte time + 4-byte doc ID.
RECORD_SIZE = _RECORD.size


class CommitTimeIndex:
    """Jump-indexed append-only log of document commit times.

    Parameters
    ----------
    store:
        WORM store holding the log file.
    name:
        Log file name on the device.
    max_time_bits:
        Sizing of the commit-time space for the jump index (64-bit epoch
        timestamps by default).
    """

    def __init__(
        self,
        store: CachedWormStore,
        name: str = "commit-times",
        *,
        max_time_bits: int = 48,
    ):
        self.store = store
        self.name = name
        self._file = store.ensure_file(name)
        self._jump = JumpIndex(max_value_bits=max_time_bits)
        #: Number of committed records.
        self.count = 0
        self._last_time = -1
        self._last_doc_id = -1
        self._records_per_block = store.block_size // RECORD_SIZE
        if self._file.num_blocks:
            self._restore_from_worm()

    def _restore_from_worm(self) -> None:
        """Rebuild the jump index and counters from the committed log.

        Restart recovery: one uncounted pass that re-applies the same
        monotonicity checks as ingest, so a log tampered with between
        sessions fails loudly here rather than distorting later queries.
        """
        offset = 0
        for block_no in range(self._file.num_blocks):
            payload = self.store.peek_block(self.name, block_no)
            for commit_time, doc_id in _RECORD.iter_unpack(payload):
                if commit_time < self._last_time or doc_id <= self._last_doc_id:
                    raise TamperDetectedError(
                        f"commit log record {offset} ({commit_time}, "
                        f"{doc_id}) violates monotonicity after "
                        f"({self._last_time}, {self._last_doc_id})",
                        location=f"commit log '{self.name}', record {offset}",
                        invariant="commit-time-monotonicity",
                    )
                if commit_time > self._last_time:
                    self._jump.insert(commit_time, payload=offset)
                self._last_time = commit_time
                self._last_doc_id = doc_id
                offset += 1
        self.count = offset

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def record_commit(self, doc_id: int, commit_time: int) -> None:
        """Append one commit record; real-time, like the posting lists.

        ``commit_time`` must be non-decreasing and ``doc_id`` strictly
        increasing — the physical truth an honest ingest pipeline
        produces.  Violations are caller bugs
        (:class:`~repro.errors.DocumentIdOrderError`); *stored* violations
        found later are tampering.
        """
        if commit_time < self._last_time:
            raise DocumentIdOrderError(
                f"commit time {commit_time} precedes last committed "
                f"{self._last_time}; retro-dating is not a legal ingest"
            )
        if doc_id <= self._last_doc_id:
            raise DocumentIdOrderError(
                f"doc_id {doc_id} must exceed last committed {self._last_doc_id}"
            )
        offset = self.count
        self.store.append_record(self.name, _RECORD.pack(commit_time, doc_id))
        if commit_time > self._last_time:
            # First record at this time: index it with its log offset.
            self._jump.insert(commit_time, payload=offset)
        self._last_time = commit_time
        self._last_doc_id = doc_id
        self.count += 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _read_record(self, offset: int) -> Tuple[int, int]:
        """Decode log record ``offset`` (counted block read)."""
        block_no, idx = divmod(offset, self._records_per_block)
        payload = self.store.read_block(self.name, block_no)
        return _RECORD.unpack_from(payload, idx * RECORD_SIZE)

    def _committed_records(self) -> int:
        """Log extent derived from WORM state, not writer memory.

        A certified reader must scan everything actually committed —
        including records Mala appended around the honest writer, whose
        in-memory count would not include them.
        """
        worm_file = self.store.open_file(self.name)
        return worm_file.total_bytes() // RECORD_SIZE

    def docs_in_range(self, t_start: int, t_end: int) -> List[int]:
        """Document IDs committed with ``t_start <= time <= t_end``.

        Trust guarantees: the start position comes from the jump index
        (no entry can be skipped, Proposition 3) and the subsequent scan
        verifies monotonicity of both fields, so a retro-dated append
        surfaces as :class:`~repro.errors.TamperDetectedError` instead of
        silently distorting the answer.
        """
        if t_end < t_start:
            return []
        node_id = self._jump.find_geq_node(t_start)
        if node_id is None:
            return []
        start_offset = self._jump.node_payload(node_id)
        start_time = self._jump.node_value(node_id)
        if start_time > t_end:
            return []
        docs: List[int] = []
        prev_time, prev_doc = -1, -1
        for offset in range(start_offset, self._committed_records()):
            commit_time, doc_id = self._read_record(offset)
            if commit_time < prev_time or doc_id <= prev_doc:
                raise TamperDetectedError(
                    f"commit log record {offset} ({commit_time}, {doc_id}) "
                    f"violates monotonicity after ({prev_time}, {prev_doc})",
                    location=f"commit log '{self.name}', record {offset}",
                    invariant="commit-time-monotonicity",
                )
            if offset == start_offset and commit_time != start_time:
                raise TamperDetectedError(
                    f"jump node for time {start_time} points at record "
                    f"{offset} holding time {commit_time}",
                    location=f"commit log '{self.name}', record {offset}",
                    invariant="commit-time-jump-payload",
                )
            if commit_time > t_end:
                break
            docs.append(doc_id)
            prev_time, prev_doc = commit_time, doc_id
        return docs

    def iter_records(self):
        """Yield every committed ``(commit_time, doc_id)`` pair in order.

        Uncounted; used by restart recovery and offline audits.
        """
        for block_no in range(self._file.num_blocks):
            payload = self.store.peek_block(self.name, block_no)
            yield from _RECORD.iter_unpack(payload)

    def first_commit_geq(self, t: int) -> Optional[int]:
        """Earliest indexed commit time ``>= t`` (``None`` if none)."""
        return self._jump.find_geq(t)

    @property
    def last_commit_time(self) -> int:
        """Most recent committed time (-1 while empty)."""
        return self._last_time

    def verify(self) -> None:
        """Full-log audit: monotonicity of every record.

        Offline pass for auditors; uses uncounted reads.
        """
        prev_time, prev_doc = -1, -1
        worm_file = self.store.open_file(self.name)
        offset = 0
        for block_no in range(worm_file.num_blocks):
            payload = self.store.peek_block(self.name, block_no)
            for commit_time, doc_id in _RECORD.iter_unpack(payload):
                if commit_time < prev_time or doc_id <= prev_doc:
                    raise TamperDetectedError(
                        f"commit log record {offset} ({commit_time}, "
                        f"{doc_id}) violates monotonicity after "
                        f"({prev_time}, {prev_doc})",
                        location=f"commit log '{self.name}', record {offset}",
                        invariant="commit-time-monotonicity",
                    )
                prev_time, prev_doc = commit_time, doc_id
                offset += 1

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommitTimeIndex('{self.name}', records={self.count})"
