"""Columnar posting-block decode: one pass, no per-posting objects.

The scalar decoder (:func:`repro.core.posting.decode_postings`) builds
one :class:`~repro.core.posting.Posting` object per entry — a dataclass
allocation plus two attribute stores for every 8 bytes read, which is
the dominant cost of the read hot path once blocks are cached.

This module decodes a whole block's payload in a single C-level pass
into two parallel ``array`` columns — document IDs and term codes — by
reinterpreting the fixed-width little-endian ``<II`` posting layout as a
flat vector of 32-bit words and taking stride-2 slices.  No Python-level
loop touches the bytes, and no per-posting object exists unless a caller
actually asks for one.

:class:`DecodedBlock` wraps the two columns and behaves like the
``List[Posting]`` the scalar decoder returns (length, indexing, slicing,
iteration, equality), so every existing call site keeps working while
batch consumers — cursor seeks, conjunction galloping, candidate
collection, bulk scoring — read the columns directly.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, List, Tuple

from repro.core.posting import POSTING_SIZE, _STRUCT, Posting
from repro.errors import IndexError_

#: The raw payload is little-endian; a big-endian host must byte-swap
#: the bulk-loaded words before they read as doc IDs / term codes.
_SWAP = sys.byteorder == "big"

#: ``array('I')`` maps to the C ``unsigned int``; the stride-slice fast
#: path needs it to be exactly the 4-byte posting field width.  On the
#: (practically nonexistent) platform where it is not, fall back to a
#: portable ``struct`` scan that produces identical columns.
_FAST = array("I").itemsize == 4


def decode_columns(payload: bytes) -> Tuple[array, array]:
    """Decode a posting payload into ``(doc_ids, term_codes)`` columns.

    Equivalent to ``zip(*decode_postings(payload))`` but performed as
    one bulk ``array.frombytes`` plus two stride slices — no per-entry
    Python work.

    Raises
    ------
    IndexError_
        If the payload is not a multiple of :data:`POSTING_SIZE` bytes —
        posting lists never split an entry across blocks, so a misfit
        length means corruption.
    """
    if len(payload) % POSTING_SIZE:
        raise IndexError_(
            f"posting region of {len(payload)} bytes is not a multiple of "
            f"{POSTING_SIZE}"
        )
    if _FAST:
        words = array("I")
        words.frombytes(payload)
        if _SWAP:
            words.byteswap()
        return words[0::2], words[1::2]
    doc_ids = array("L")
    term_codes = array("L")
    for doc_id, term_code in _STRUCT.iter_unpack(payload):
        doc_ids.append(doc_id)
        term_codes.append(term_code)
    return doc_ids, term_codes


class DecodedBlock:
    """One decoded posting block as parallel doc-ID / term-code columns.

    A drop-in stand-in for the ``List[Posting]`` the scalar decoder
    returns: it supports ``len``, indexing (negative too), slicing,
    iteration, and equality against any posting sequence.  ``Posting``
    objects are materialized lazily, only when an element is requested;
    batch consumers use :attr:`doc_ids` / :attr:`term_codes` directly.

    The doc-ID column is sorted (the posting-list invariant), so
    :meth:`first_geq` answers ordered seeks with one ``bisect``.
    """

    __slots__ = ("doc_ids", "term_codes")

    def __init__(self, doc_ids: array, term_codes: array):
        self.doc_ids = doc_ids
        self.term_codes = term_codes

    @classmethod
    def from_payload(cls, payload: bytes) -> "DecodedBlock":
        """Decode ``payload`` (validated like the scalar decoder)."""
        return cls(*decode_columns(payload))

    @classmethod
    def from_postings(cls, postings: Iterable[Posting]) -> "DecodedBlock":
        """Build columns from an in-memory posting sequence."""
        doc_ids = array("I" if _FAST else "L")
        term_codes = array("I" if _FAST else "L")
        for posting in postings:
            doc_ids.append(posting.doc_id)
            term_codes.append(posting.term_code)
        return cls(doc_ids, term_codes)

    # -- List[Posting] compatibility -----------------------------------
    def __len__(self) -> int:
        return len(self.doc_ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                Posting(doc_id, term_code)
                for doc_id, term_code in zip(
                    self.doc_ids[index], self.term_codes[index]
                )
            ]
        return Posting(self.doc_ids[index], self.term_codes[index])

    def __iter__(self) -> Iterator[Posting]:
        return map(Posting, self.doc_ids, self.term_codes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DecodedBlock):
            return (
                self.doc_ids == other.doc_ids
                and self.term_codes == other.term_codes
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                entry == posting for entry, posting in zip(self, other)
            )
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"DecodedBlock({len(self)} postings)"

    # -- batch accessors ------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Resident size of the two columns, for cache accounting."""
        return (
            self.doc_ids.itemsize + self.term_codes.itemsize
        ) * len(self.doc_ids)

    def to_postings(self) -> List[Posting]:
        """Materialize the scalar form (audits, compatibility shims)."""
        return list(self)

    def first_geq(self, doc_id: int, lo: int = 0) -> int:
        """Index of the first entry with ``doc_id >=`` the target.

        One ``bisect`` over the sorted doc-ID column; returns
        ``len(self)`` when every entry is smaller.
        """
        return bisect_left(self.doc_ids, doc_id, lo)
