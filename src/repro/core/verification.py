"""Certified-reader auditors (Sections 2.1, 4.3, 5).

Bob runs a certified search engine; these are the checks it (and an
offline auditor) performs so that Mala's WORM-legal manipulations —
appends of spurious entries, malicious pointer assignments, posting-list
stuffing — are *detected* rather than silently distorting answers.

Auditors come in two flavours:

* raising — the query-path checks inside the index structures raise
  :class:`~repro.errors.TamperDetectedError` the moment a violation is
  observed (the paper's ``assert`` lines);
* reporting — the offline :func:`audit_posting_list` /
  :func:`audit_search_result` passes collect *all* violations into an
  :class:`AuditReport`, the artifact an investigator would file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.block_jump_index import BlockJumpIndex
from repro.core.posting_list import PostingList


@dataclass
class AuditReport:
    """Outcome of an offline audit pass.

    Attributes
    ----------
    subject:
        What was audited (file name, query string, ...).
    violations:
        Human-readable descriptions of every invariant violation found;
        empty means the subject is consistent with honest operation.
    entries_checked:
        Volume audited, for the report's paper trail.
    """

    subject: str
    violations: List[str] = field(default_factory=list)
    entries_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the audit found no sign of tampering."""
        return not self.violations

    def add(self, violation: str) -> None:
        """Record one violation."""
        self.violations.append(violation)

    def to_dict(self) -> dict:
        """JSON-serializable form (for case files and tooling)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "entries_checked": self.entries_checked,
            "violations": list(self.violations),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"AuditReport('{self.subject}', {status})"


def audit_posting_list(
    posting_list: PostingList,
    jump_index: Optional[BlockJumpIndex] = None,
) -> AuditReport:
    """Offline audit of one posting list (and its jump pointers, if any).

    Checks:

    * document IDs are non-decreasing across the entire list (a violation
      means a low-level append bypassed the honest writer — the
      binary-search attack of Section 4 leaves exactly this trace);
    * every set jump pointer goes forward and targets a block containing
      an ID inside the pointer's range (Section 4.3's monotonicity
      property).

    Uses uncounted reads (audits are not part of any reported figure).
    """
    report = AuditReport(subject=f"posting list '{posting_list.name}'")
    last = -1
    block_last: List[int] = []
    for block_no in range(posting_list.num_blocks):
        entries = posting_list.read_block_postings(block_no, counted=False)
        for posting in entries:
            report.entries_checked += 1
            if posting.doc_id < last:
                report.add(
                    f"block {block_no}: doc ID {posting.doc_id} after {last} "
                    "(append-order violation)"
                )
            last = max(last, posting.doc_id)
        block_last.append(entries[-1].doc_id if entries else -1)
    if jump_index is not None:
        _audit_jump_pointers(posting_list, jump_index, block_last, report)
    return report


def _audit_jump_pointers(
    posting_list: PostingList,
    jump_index: BlockJumpIndex,
    block_last: List[int],
    report: AuditReport,
) -> None:
    """Check every committed jump pointer against its range invariant."""
    store = posting_list.store
    for block_no in range(posting_list.num_blocks):
        nb = block_last[block_no]
        for slot in range(jump_index.num_slots):
            target = store.peek_slot(posting_list.name, block_no, slot)
            if target is None:
                continue
            report.entries_checked += 1
            if target <= block_no:
                report.add(
                    f"block {block_no} slot {slot}: pointer goes backwards "
                    f"to block {target}"
                )
                continue
            if target >= posting_list.num_blocks:
                report.add(
                    f"block {block_no} slot {slot}: pointer targets "
                    f"nonexistent block {target}"
                )
                continue
            lo, hi = jump_index.slot_range(nb, slot)
            entries = posting_list.read_block_postings(target, counted=False)
            if not any(lo <= p.doc_id < hi for p in entries):
                report.add(
                    f"block {block_no} slot {slot}: target block {target} "
                    f"holds no ID in [{lo}, {hi})"
                )


def audit_search_result(
    result_doc_ids: Sequence[int],
    query_terms: Sequence[str],
    *,
    document_exists,
    document_contains,
) -> AuditReport:
    """Detect posting-list stuffing in a query result (Section 5).

    Mala may append postings whose document IDs do not exist or whose
    documents do not contain the query keywords, hoping to bury the
    incriminating record in noise.  The certified engine cross-checks
    every returned ID against the (WORM-resident, hence trustworthy)
    documents themselves:

    Parameters
    ----------
    result_doc_ids:
        The IDs the index produced.
    query_terms:
        The keywords the user asked for.
    document_exists:
        ``f(doc_id) -> bool`` — the document is actually on WORM.
    document_contains:
        ``f(doc_id, term) -> bool`` — the stored document contains the
        term.  Checked for at least one query term per document (the
        disjunctive matching contract).
    """
    report = AuditReport(subject=f"result for query {list(query_terms)!r}")
    for doc_id in result_doc_ids:
        report.entries_checked += 1
        if not document_exists(doc_id):
            report.add(
                f"doc {doc_id}: posting refers to a nonexistent document "
                "(stuffed posting)"
            )
            continue
        if not any(document_contains(doc_id, term) for term in query_terms):
            report.add(
                f"doc {doc_id}: document contains none of the query terms "
                "(stuffed posting)"
            )
    return report
