"""Exception hierarchy shared across all :mod:`repro` subpackages.

The hierarchy mirrors the paper's trust boundaries:

* :class:`WormViolationError` — an operation attempted to rewrite committed
  data on the WORM device.  The (simulated) device refuses, exactly as the
  paper's storage model assumes ("the WORM device operates properly, i.e.,
  it never overwrites data", Section 2.1).

* :class:`TamperDetectedError` — a *certified reader* (search engine,
  auditor) found index state that violates an invariant that honest writers
  always maintain (e.g. the monotonicity asserts of the jump-index
  algorithms in Figure 7).  This is the "report of attempted malicious
  activity" the paper calls for and is the signal Bob acts on.

Everything else derives from :class:`ReproError` so applications can catch
library errors with a single except clause without swallowing genuine bugs
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class WormError(ReproError):
    """Base class for errors raised by the WORM storage substrate."""


class WormViolationError(WormError):
    """An operation attempted to overwrite or delete committed WORM data.

    Raised by the simulated device itself.  Under the paper's threat model
    the device is trusted to enforce this, so honest *and* malicious code
    alike receive this error when attempting rewrites; Mala's only remaining
    avenue is appending new data, which the index structures are designed to
    make harmless (detectable at read time).
    """


class UnknownFileError(WormError):
    """A referenced WORM file does not exist on the device."""


class FileExistsOnWormError(WormError):
    """Attempted to create a WORM file under a name that is already taken."""


class BlockBoundsError(WormError):
    """A block read or append referenced bytes outside the block."""


class TamperDetectedError(ReproError):
    """A certified reader detected index state violating a trust invariant.

    Carries enough context for an audit trail: *where* the violation was
    observed and *which* invariant failed.  The paper (Section 6) notes that
    "attempted malicious activity is easy to detect, in the form of a
    violation of a monotonicity property" — this exception is that report.
    """

    def __init__(self, message: str, *, location: str = "", invariant: str = ""):
        super().__init__(message)
        #: Human-readable locator, e.g. ``"posting list 'enron', block 12"``.
        self.location = location
        #: Short name of the violated invariant, e.g. ``"jump-monotonicity"``.
        self.invariant = invariant


class IndexError_(ReproError):
    """Base class for index-structure errors that are *not* tampering.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class DocumentIdOrderError(IndexError_):
    """A document ID insert was not strictly monotonically increasing.

    Honest writers assign document IDs from an increasing counter
    (Section 4.1), so hitting this during ingest is a caller bug; hitting a
    *stored* order violation during reads raises
    :class:`TamperDetectedError` instead.
    """


class QueryError(ReproError):
    """A query was malformed or referenced unsupported features."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""
