"""Bob's toolkit: a certified, evidence-preserving investigation session.

The paper's reader "Bob" (a regulatory authority) is "sufficiently
cautious that he will check to make sure he is running a certified
version of the search engine" (Section 2.1).  This module is that
certified session, assembled from the library's verified read paths:

* every query is run with result verification against the WORM-resident
  documents (Section 5);
* tamper alarms do not abort the investigation — they become case-file
  findings, with the affected query re-run under incident handling;
* a full structural audit (posting lists, jump pointers, commit log) can
  be folded into the same case file;
* the case file is exportable as JSON: queries run, verified results,
  alarms raised, audit outcomes — the paper trail an investigation needs.

Example
-------
>>> from repro import TrustworthySearchEngine
>>> from repro.investigate import Investigation
>>> engine = TrustworthySearchEngine()
>>> _ = engine.index_document("imclone memo for stewart")
>>> case = Investigation(engine, case_id="SEC-2002-001")
>>> hits = case.search("+imclone +stewart")
>>> [h.doc_id for h in hits]
[0]
>>> case.run_full_audit()
True
>>> sorted(case.case_file()) #doctest: +NORMALIZE_WHITESPACE
['alarms', 'audits', 'case_id', 'documents_retrieved', 'queries']
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import TamperDetectedError
from repro.search.engine import SearchResult, TrustworthySearchEngine


@dataclass
class _QueryRecord:
    """One query of the investigation, with its verified outcome."""

    query: str
    result_doc_ids: List[int]
    verified: bool
    alarm: Optional[str] = None


class Investigation:
    """A certified read-only session over a trustworthy archive.

    Parameters
    ----------
    engine:
        The archive's engine.  The investigation only reads (queries,
        audits); the single exception is the engine's incident log, which
        grows when tampering is exposed — appending evidence is the one
        WORM-compatible response to detection.
    case_id:
        Identifier stamped into the exported case file.
    """

    def __init__(self, engine: TrustworthySearchEngine, *, case_id: str = "case"):
        self.engine = engine
        self.case_id = case_id
        self._queries: List[_QueryRecord] = []
        self._alarms: List[Dict[str, str]] = []
        self._audits: List[dict] = []
        self._documents: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def search(self, query: str, *, top_k: int = 20) -> List[SearchResult]:
        """Run a verified query; alarms become findings, not failures.

        Uses the engine's incident-handling path: stuffing is exposed,
        quarantined, and recorded; the returned results are verified
        against the WORM documents.
        """
        try:
            results, report = self.engine.search_with_incident_handling(
                query, top_k=top_k
            )
            alarm = None if report.ok else "; ".join(report.violations)
        except TamperDetectedError as exc:
            # Structural tampering (bad jump pointer, corrupted log):
            # record it; the query has no trustworthy answer to give.
            self._alarms.append(
                {
                    "query": query,
                    "invariant": exc.invariant,
                    "location": exc.location,
                    "detail": str(exc),
                }
            )
            self._queries.append(
                _QueryRecord(
                    query=query, result_doc_ids=[], verified=False,
                    alarm=str(exc),
                )
            )
            return []
        if alarm:
            self._alarms.append({"query": query, "detail": alarm})
        self._queries.append(
            _QueryRecord(
                query=query,
                result_doc_ids=[r.doc_id for r in results],
                verified=True,
                alarm=alarm,
            )
        )
        return results

    def retrieve(self, doc_id: int) -> str:
        """Fetch a document's committed text into the case file."""
        text = self.engine.documents.get(doc_id).text
        self._documents[doc_id] = text
        return text

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    def run_full_audit(self) -> bool:
        """Structural audit of the whole archive; returns overall health."""
        from repro.adversary.detection import full_engine_audit

        reports = full_engine_audit(self.engine)
        self._audits.extend(r.to_dict() for r in reports)
        return all(r.ok for r in reports)

    # ------------------------------------------------------------------
    # the case file
    # ------------------------------------------------------------------
    @property
    def alarm_count(self) -> int:
        """Number of tampering findings so far."""
        return len(self._alarms)

    def case_file(self) -> dict:
        """The investigation's full record, JSON-serializable."""
        return {
            "case_id": self.case_id,
            "queries": [
                {
                    "query": q.query,
                    "results": q.result_doc_ids,
                    "verified": q.verified,
                    "alarm": q.alarm,
                }
                for q in self._queries
            ],
            "alarms": list(self._alarms),
            "audits": list(self._audits),
            "documents_retrieved": {
                str(doc_id): text for doc_id, text in self._documents.items()
            },
        }

    def export(self, path: str) -> None:
        """Write the case file to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.case_file(), handle, indent=2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Investigation('{self.case_id}', queries={len(self._queries)}, "
            f"alarms={len(self._alarms)})"
        )
