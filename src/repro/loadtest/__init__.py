"""Whole-system load testing: concurrent traffic, latency accounting,
capacity calibration, and a committed performance trajectory.

Per-figure benchmarks measure one mechanism at a time; this package
measures the *system*: N client threads of mixed search/ingest traffic
(open- or closed-loop, Zipfian query popularity with optional drift)
driven against a sharded engine, with p50/p95/p99 latency recorded by a
thread-safe reservoir recorder and throughput pulled from the metrics
registry.  Results serialize to a schema-versioned ``BENCH_LOADTEST.json``
snapshot committed per PR, and :mod:`repro.loadtest.compare` diffs two
snapshots under per-metric tolerance bands so CI can fail on regression.

See :mod:`repro.loadtest.harness` for the driver,
:mod:`repro.loadtest.recorder` for latency accounting,
:mod:`repro.loadtest.snapshot` for the snapshot format, and
:func:`repro.core.cost_model.CapacityModel` for the capacity predictor
calibrated from snapshots.
"""

from repro.loadtest.compare import DEFAULT_BANDS, ToleranceBand, compare_snapshots
from repro.loadtest.harness import (
    LoadTestConfig,
    LoadTestHarness,
    LoadTestResult,
    run_load_test,
)
from repro.loadtest.recorder import LatencyRecorder, LatencySummary
from repro.loadtest.snapshot import (
    SNAPSHOT_SCHEMA,
    read_snapshot,
    write_snapshot,
)
from repro.loadtest.transport import (
    HTTPTransport,
    RateLimitedError,
    ServiceClientError,
    ServiceOverloadedError,
    ServiceProtocolError,
)

__all__ = [
    "DEFAULT_BANDS",
    "HTTPTransport",
    "LatencyRecorder",
    "LatencySummary",
    "LoadTestConfig",
    "LoadTestHarness",
    "LoadTestResult",
    "RateLimitedError",
    "SNAPSHOT_SCHEMA",
    "ServiceClientError",
    "ServiceOverloadedError",
    "ServiceProtocolError",
    "ToleranceBand",
    "compare_snapshots",
    "read_snapshot",
    "run_load_test",
    "write_snapshot",
]
