"""``python -m repro.loadtest`` — the snapshot comparer CLI.

Equivalent to :mod:`repro.loadtest.compare`'s ``main`` (running the
submodule directly works too, but this entry point avoids runpy's
re-import warning since the package ``__init__`` already imports the
comparer).
"""

import sys

from repro.loadtest.compare import main

if __name__ == "__main__":
    sys.exit(main())
