"""Diff two load-test snapshots under per-metric tolerance bands.

Load-test numbers are wall-clock measurements: byte-exact comparison
(what :mod:`benchmarks.check_expectations` does for the deterministic
figures) would fail on every run.  Instead each guarded metric carries a
:class:`ToleranceBand` — how much worse the fresh run may be before it
counts as a regression, and (for throughput) how much better before it
counts as a stale baseline worth recommitting.  The default bands are
deliberately wide (CI runners are noisy neighbours); the policy is
documented in ``docs/LOADTEST.md``.

Usable as a library (:func:`compare_snapshots`) or a CLI::

    python -m repro.loadtest.compare BASELINE.json FRESH.json \\
        [--band qps=0.4] [--band latency_ms.search.p99_ms=4.0]

Exit status: 0 when every band holds, 1 on regression, 2 on bad input —
the contract CI's ``loadtest-smoke`` job relies on.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.loadtest.snapshot import read_snapshot


@dataclass(frozen=True)
class ToleranceBand:
    """How far a metric may move from baseline before failing.

    Attributes
    ----------
    min_ratio:
        Lower bound on ``fresh / baseline`` (throughput floors);
        ``None`` leaves the downside unguarded.
    max_ratio:
        Upper bound on ``fresh / baseline`` (latency ceilings);
        ``None`` leaves the upside unguarded.
    max_abs:
        Absolute ceiling on the fresh value, applied regardless of the
        baseline (used for ``error_rate``, where baseline 0 makes
        ratios meaningless).
    higher_is_better:
        Direction, for the report text only.
    """

    min_ratio: Optional[float] = None
    max_ratio: Optional[float] = None
    max_abs: Optional[float] = None
    higher_is_better: bool = True

    def check(
        self, metric: str, baseline: float, fresh: float
    ) -> Optional[str]:
        """``None`` when within band; a violation message otherwise."""
        if self.max_abs is not None and fresh > self.max_abs:
            return (
                f"{metric}: {fresh:.6g} exceeds the absolute ceiling "
                f"{self.max_abs:.6g}"
            )
        if baseline <= 0:
            # No meaningful ratio; the absolute ceiling (if any) ruled.
            return None
        ratio = fresh / baseline
        if self.min_ratio is not None and ratio < self.min_ratio:
            return (
                f"{metric}: {fresh:.6g} is {ratio:.2f}x the baseline "
                f"{baseline:.6g} (floor {self.min_ratio:.2f}x)"
            )
        if self.max_ratio is not None and ratio > self.max_ratio:
            return (
                f"{metric}: {fresh:.6g} is {ratio:.2f}x the baseline "
                f"{baseline:.6g} (ceiling {self.max_ratio:.2f}x)"
            )
        return None


#: Default policy: throughput may not halve, tail latency may not
#: quadruple, and the error rate stays (near) zero.  Wide on purpose —
#: the committed baseline and the CI runner are different machines.
DEFAULT_BANDS: Dict[str, ToleranceBand] = {
    "qps": ToleranceBand(min_ratio=0.4),
    "ingest_docs_per_s": ToleranceBand(min_ratio=0.3),
    "ingest_mb_per_s": ToleranceBand(min_ratio=0.3),
    "error_rate": ToleranceBand(max_abs=0.001, higher_is_better=False),
    "latency_ms.search.p50_ms": ToleranceBand(
        max_ratio=4.0, higher_is_better=False
    ),
    "latency_ms.search.p95_ms": ToleranceBand(
        max_ratio=4.0, higher_is_better=False
    ),
    "latency_ms.search.p99_ms": ToleranceBand(
        max_ratio=5.0, higher_is_better=False
    ),
    "latency_ms.ingest.p99_ms": ToleranceBand(
        max_ratio=5.0, higher_is_better=False
    ),
}


def _metric_value(metrics: Dict[str, object], dotted: str) -> Optional[float]:
    """Resolve ``a.b.c`` inside the snapshot's metrics dict."""
    node: object = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare_snapshots(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    *,
    bands: Optional[Dict[str, ToleranceBand]] = None,
) -> Tuple[List[str], List[str]]:
    """``(violations, report_lines)`` for two snapshot documents.

    Every banded metric present in *both* snapshots is checked; a metric
    missing from the fresh snapshot is itself a violation (the harness
    stopped reporting something the policy guards).  Config drift
    (different seed, clients, or mix) is flagged too: bands are only
    meaningful between runs of the same workload.
    """
    bands = DEFAULT_BANDS if bands is None else bands
    violations: List[str] = []
    report: List[str] = []
    base_cfg = baseline.get("config", {})
    fresh_cfg = fresh.get("config", {})
    for knob in ("seed", "clients", "mix", "duration", "arrival_rate"):
        if base_cfg.get(knob) != fresh_cfg.get(knob):
            violations.append(
                f"config.{knob}: baseline {base_cfg.get(knob)!r} vs fresh "
                f"{fresh_cfg.get(knob)!r} — snapshots are not comparable"
            )
    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    for metric in sorted(bands):
        band = bands[metric]
        base_value = _metric_value(base_metrics, metric)
        fresh_value = _metric_value(fresh_metrics, metric)
        if base_value is None:
            report.append(f"SKIP     {metric}: not in baseline")
            continue
        if fresh_value is None:
            violations.append(f"{metric}: missing from the fresh snapshot")
            continue
        problem = band.check(metric, base_value, fresh_value)
        verdict = "FAIL" if problem else "OK  "
        report.append(
            f"{verdict}     {metric}: {base_value:.6g} -> {fresh_value:.6g}"
        )
        if problem:
            violations.append(problem)
    return violations, report


def parse_band_override(spec: str) -> Tuple[str, ToleranceBand]:
    """Parse a ``--band metric=ratio`` override.

    The ratio replaces the guarded side of the default band for that
    metric: the floor for higher-is-better metrics, the ceiling
    otherwise.  Unknown metrics get a latency-style ceiling band.
    """
    if "=" not in spec:
        raise WorkloadError(f"--band must look like metric=ratio, got '{spec}'")
    metric, _, raw = spec.partition("=")
    metric = metric.strip()
    try:
        ratio = float(raw)
    except ValueError:
        raise WorkloadError(
            f"--band ratio must be a number, got '{raw}'"
        ) from None
    if ratio <= 0:
        raise WorkloadError(f"--band ratio must be positive, got {ratio}")
    default = DEFAULT_BANDS.get(metric)
    if default is not None and default.higher_is_better:
        return metric, ToleranceBand(min_ratio=ratio)
    return metric, ToleranceBand(max_ratio=ratio, higher_is_better=False)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadtest.compare",
        description="Diff two BENCH_LOADTEST.json snapshots with tolerance bands",
    )
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("fresh", help="freshly generated snapshot")
    parser.add_argument(
        "--band",
        action="append",
        default=[],
        metavar="METRIC=RATIO",
        help="override one metric's band ratio (repeatable), e.g. qps=0.4",
    )
    args = parser.parse_args(argv)
    try:
        baseline = read_snapshot(args.baseline)
        fresh = read_snapshot(args.fresh)
        bands = dict(DEFAULT_BANDS)
        for spec in args.band:
            metric, band = parse_band_override(spec)
            bands[metric] = band
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    violations, report = compare_snapshots(baseline, fresh, bands=bands)
    for line in report:
        print(line)
    if violations:
        print(f"\n{len(violations)} regression(s) beyond tolerance:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nall banded metrics within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
