"""Concurrent whole-system load harness: mixed search/ingest traffic.

The per-figure benchmarks measure one mechanism in deterministic counts;
this harness measures the assembled system in wall-clock terms, the way
the paper's Section 7 / Figure 4 measures end-to-end runtime.  ``N``
client threads drive a mixed stream of search and ingest operations
against an engine (sharded or not):

* **closed loop** — each client issues its next operation the moment
  the previous one returns; measures the system's saturated throughput.
* **open loop** (``arrival_rate`` set) — operations arrive on a seeded
  Poisson schedule independent of completions; latency is measured from
  the *scheduled* arrival, so queueing delay under overload is charged
  to the system, not hidden (the coordinated-omission trap).

Queries follow a Zipfian popularity profile over the preloaded corpus
vocabulary (:mod:`repro.workloads.queries`), optionally drifting between
epochs (:mod:`repro.workloads.drift`); ingested documents come from the
same synthetic corpus generator the figure benchmarks use.  The workload
plan — every query string, document body, op kind, and arrival offset —
is generated up front and is fully deterministic under ``seed``; only
the measured timings vary run to run.

Concurrency model: searches run fully concurrent under a shared lock;
ingest takes the exclusive side of a reader-writer lock
(:class:`~repro.service.locks.ReadWriteLock` — the same discipline the
archive service enforces), because the engine's append path (journal
tail, lexicon, router clock) is single-writer by design.  That matches
the production shape of a WORM archive — many investigators, one
committing pipeline — and keeps the error rate structurally zero
instead of racily small.  A target that already serialises its own
writers (e.g. :class:`~repro.loadtest.transport.HTTPTransport` driving
a running service) opts out by exposing ``needs_write_lock = False``;
the harness then issues operations unlocked and lets the service's
admission control do its job.

Latency lands in per-client, per-kind :class:`~repro.loadtest.recorder.
LatencyRecorder` reservoirs, merged after the run (the merge-equals-
global property is what makes that sound).  Ingest MB/s is pulled from
the engine's PR 3 :class:`~repro.observability.metrics.MetricsRegistry`
(``repro_ingest_bytes_total``) when present, falling back to the
harness's own byte accounting for unmetered engines.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import WorkloadError
from repro.loadtest.recorder import LatencyRecorder, LatencySummary
from repro.observability.adapters import counter_value
from repro.service.locks import NullRequestLock, ReadWriteLock
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.drift import DriftConfig, DriftingWorkload
from repro.workloads.queries import QueryLogConfig, QueryLogGenerator
from repro.workloads.vocabulary import Vocabulary

#: Snapshot metric name the harness reads for ingest throughput.
INGEST_BYTES_COUNTER = "repro_ingest_bytes_total"


@dataclass(frozen=True)
class LoadTestConfig:
    """Parameters of one load-test run.

    Attributes
    ----------
    clients:
        Number of concurrent client threads.
    duration:
        Wall-clock run length in seconds.
    mix:
        Fraction of operations that are searches; the rest are ingests.
    arrival_rate:
        Total operations/second across all clients for open-loop mode;
        ``None`` runs closed-loop (back-to-back per client).
    seed:
        Master determinism seed for the workload plan.
    top_k:
        Results requested per search.
    preload_docs:
        Documents indexed before the clock starts (the searchable base).
    ingest_pool:
        Distinct documents prepared for ingest ops (cycled if exhausted).
    vocabulary_size:
        Term universe shared by corpus and queries.
    zipf_s:
        Skew of both the document and query popularity profiles.
    drift_stride:
        ``> 0`` rotates query popularity between epochs mid-run
        (:class:`~repro.workloads.drift.DriftingWorkload`); ``0`` keeps
        one stable profile.
    drift_epochs:
        Number of popularity epochs the plan cycles through when
        drifting.
    plan_ops_per_client:
        Length of each client's pre-generated op stream; clients cycle
        it if a fast machine exhausts the plan before the deadline.
    recorder_capacity:
        Reservoir size of each latency recorder.
    """

    clients: int = 4
    duration: float = 5.0
    mix: float = 0.9
    arrival_rate: Optional[float] = None
    seed: int = 42
    top_k: int = 10
    preload_docs: int = 300
    ingest_pool: int = 400
    vocabulary_size: int = 2_000
    zipf_s: float = 1.1
    drift_stride: int = 0
    drift_epochs: int = 4
    plan_ops_per_client: int = 4_000
    recorder_capacity: int = 50_000

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise WorkloadError(f"clients must be >= 1, got {self.clients}")
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration}")
        if not 0.0 <= self.mix <= 1.0:
            raise WorkloadError(f"mix must be in [0, 1], got {self.mix}")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise WorkloadError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.preload_docs < 1:
            raise WorkloadError(
                f"preload_docs must be >= 1, got {self.preload_docs}"
            )
        if self.drift_stride < 0:
            raise WorkloadError(
                f"drift_stride must be >= 0, got {self.drift_stride}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the knobs that shape the workload."""
        return {
            "clients": self.clients,
            "duration": self.duration,
            "mix": self.mix,
            "arrival_rate": self.arrival_rate,
            "seed": self.seed,
            "top_k": self.top_k,
            "preload_docs": self.preload_docs,
            "vocabulary_size": self.vocabulary_size,
            "zipf_s": self.zipf_s,
            "drift_stride": self.drift_stride,
        }


@dataclass
class LoadTestResult:
    """Everything one run measured, ready for snapshotting."""

    config: LoadTestConfig
    mode: str
    wall_seconds: float
    operations: int
    searches: int
    ingests: int
    errors: int
    qps: float
    ingest_docs_per_s: float
    ingest_mb_per_s: float
    ingest_bytes: int
    shards: int
    search_latency: LatencySummary
    ingest_latency: LatencySummary
    error_messages: List[str] = field(default_factory=list)
    #: Exception class name -> count, so a nonzero error rate in a CI
    #: snapshot is diagnosable from the artifact alone.
    error_classes: Dict[str, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        """Errors per issued operation (0.0 for an idle run)."""
        return self.errors / self.operations if self.operations else 0.0

    def to_dict(self) -> Dict[str, object]:
        """The metrics body of a ``BENCH_LOADTEST.json`` snapshot."""
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "operations": self.operations,
            "searches": self.searches,
            "ingests": self.ingests,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "errors_by_class": dict(sorted(self.error_classes.items())),
            "qps": self.qps,
            "ingest_docs_per_s": self.ingest_docs_per_s,
            "ingest_mb_per_s": self.ingest_mb_per_s,
            "shards": self.shards,
            "latency_ms": {
                "search": self.search_latency.to_dict(),
                "ingest": self.ingest_latency.to_dict(),
            },
        }

    def summary(self) -> str:
        """Human-readable one-run report (what the CLI prints)."""
        s = self.search_latency
        i = self.ingest_latency
        lines = [
            f"load test ({self.mode} loop): {self.config.clients} clients, "
            f"{self.wall_seconds:.2f}s wall, {self.shards} shard(s)",
            f"  operations  {self.operations}  "
            f"(searches {self.searches}, ingests {self.ingests}, "
            f"errors {self.errors})",
            f"  search      {self.qps:8.1f} qps   "
            f"p50 {s.p50 * 1000:7.2f} ms   p95 {s.p95 * 1000:7.2f} ms   "
            f"p99 {s.p99 * 1000:7.2f} ms",
            f"  ingest      {self.ingest_docs_per_s:8.1f} docs/s  "
            f"{self.ingest_mb_per_s:6.3f} MB/s   "
            f"p50 {i.p50 * 1000:7.2f} ms   p99 {i.p99 * 1000:7.2f} ms",
        ]
        if self.error_classes:
            breakdown = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(self.error_classes.items())
            )
            lines.append(f"  errors      {breakdown}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _Op:
    """One planned operation: a search query or a document to ingest."""

    kind: str  # "search" | "ingest"
    payload: str


class LoadTestHarness:
    """Drive a deterministic mixed workload against ``engine``.

    Parameters
    ----------
    engine:
        Anything with ``search(query, top_k=...)`` and
        ``index_batch(texts)`` — a
        :class:`~repro.sharding.engine.ShardedSearchEngine` or a single
        :class:`~repro.search.engine.TrustworthySearchEngine`.
    config:
        The run parameters; see :class:`LoadTestConfig`.
    preload:
        Index the preload corpus into ``engine`` before running
        (default).  Pass ``False`` when the engine is already populated
        — the query stream still targets the synthetic vocabulary.
    """

    def __init__(self, engine, config: Optional[LoadTestConfig] = None, *, preload: bool = True):
        self.engine = engine
        self.config = config or LoadTestConfig()
        self._vocabulary = Vocabulary(self.config.vocabulary_size)
        self._plans: Optional[List[List[_Op]]] = None
        self._preload = preload

    # ------------------------------------------------------------------
    # workload plan
    # ------------------------------------------------------------------
    def _corpus_texts(self) -> List[str]:
        """Preload + ingest-pool documents, rendered to text."""
        cfg = self.config
        generator = CorpusGenerator(
            CorpusConfig(
                num_docs=cfg.preload_docs + cfg.ingest_pool,
                vocabulary_size=cfg.vocabulary_size,
                mean_terms_per_doc=40.0,
                zipf_s=cfg.zipf_s,
                seed=cfg.seed,
            )
        )
        return [doc.text(self._vocabulary) for doc in generator]

    def _query_texts(self, count: int) -> List[str]:
        """``count`` query strings under the configured popularity."""
        cfg = self.config
        if cfg.drift_stride > 0:
            drift = DriftingWorkload(
                DriftConfig(
                    vocabulary_size=cfg.vocabulary_size,
                    num_epochs=cfg.drift_epochs,
                    queries_per_epoch=max(1, count // cfg.drift_epochs + 1),
                    hot_pool_size=max(2, cfg.vocabulary_size // 20),
                    drift_stride=min(
                        cfg.drift_stride, max(2, cfg.vocabulary_size // 20)
                    ),
                    zipf_s=cfg.zipf_s,
                    seed=cfg.seed,
                )
            )
            queries = [
                q.text(self._vocabulary)
                for epoch in drift.epochs()
                for q in epoch.queries
            ]
        else:
            generator = QueryLogGenerator(
                QueryLogConfig(
                    num_queries=count,
                    vocabulary_size=cfg.vocabulary_size,
                    zipf_s=cfg.zipf_s,
                    seed=cfg.seed,
                )
            )
            queries = [q.text(self._vocabulary) for q in generator]
        return queries[:count] if len(queries) >= count else queries

    def build_plan(self) -> List[List[_Op]]:
        """Per-client operation streams (deterministic under the seed)."""
        if self._plans is not None:
            return self._plans
        cfg = self.config
        texts = self._corpus_texts()
        ingest_texts = texts[cfg.preload_docs :] or texts[:1]
        total_ops = cfg.clients * cfg.plan_ops_per_client
        queries = self._query_texts(max(1, total_ops))
        plans: List[List[_Op]] = []
        query_cursor = 0
        ingest_cursor = 0
        for client in range(cfg.clients):
            rng = random.Random((cfg.seed << 10) ^ client)
            ops: List[_Op] = []
            for _ in range(cfg.plan_ops_per_client):
                if rng.random() < cfg.mix:
                    ops.append(
                        _Op("search", queries[query_cursor % len(queries)])
                    )
                    query_cursor += 1
                else:
                    ops.append(
                        _Op(
                            "ingest",
                            ingest_texts[ingest_cursor % len(ingest_texts)],
                        )
                    )
                    ingest_cursor += 1
            plans.append(ops)
        self._plans = plans
        return plans

    def preload(self) -> int:
        """Index the preload corpus; returns the document count."""
        texts = self._corpus_texts()[: self.config.preload_docs]
        self.engine.index_batch(texts)
        return len(texts)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> LoadTestResult:
        """Execute the configured run and return its measurements."""
        cfg = self.config
        plans = self.build_plan()
        if self._preload:
            self.preload()
        ingest_bytes_before = counter_value(
            getattr(self.engine, "metrics", None), INGEST_BYTES_COUNTER
        )
        # Engines need the harness to serialise writers; a transport to
        # a running service brings its own serialisation and opts out.
        if getattr(self.engine, "needs_write_lock", True):
            lock = ReadWriteLock()
        else:
            lock = NullRequestLock()
        search_recorders = [
            LatencyRecorder(cfg.recorder_capacity, seed=cfg.seed + i)
            for i in range(cfg.clients)
        ]
        ingest_recorders = [
            LatencyRecorder(cfg.recorder_capacity, seed=cfg.seed + 1000 + i)
            for i in range(cfg.clients)
        ]
        counts = [[0, 0, 0, 0] for _ in range(cfg.clients)]  # srch,ing,err,bytes
        error_tallies = [Counter() for _ in range(cfg.clients)]
        errors: List[str] = []
        errors_lock = threading.Lock()
        start_barrier = threading.Barrier(cfg.clients + 1)
        per_client_rate = (
            cfg.arrival_rate / cfg.clients if cfg.arrival_rate else None
        )

        def client_loop(client_id: int) -> None:
            ops = plans[client_id]
            search_rec = search_recorders[client_id]
            ingest_rec = ingest_recorders[client_id]
            tally = counts[client_id]
            error_tally = error_tallies[client_id]
            arrival_rng = random.Random((cfg.seed << 20) ^ (client_id + 1))
            start_barrier.wait()
            begin = time.perf_counter()
            deadline = begin + cfg.duration
            next_arrival = begin
            index = 0
            while True:
                now = time.perf_counter()
                if now >= deadline:
                    break
                if per_client_rate is not None:
                    # Open loop: honour the schedule; latency is charged
                    # from the scheduled arrival, queueing included.
                    if next_arrival > now:
                        time.sleep(min(next_arrival - now, deadline - now))
                        now = time.perf_counter()
                        if now >= deadline:
                            break
                    issued_at = next_arrival
                    next_arrival += arrival_rng.expovariate(per_client_rate)
                else:
                    issued_at = now
                op = ops[index % len(ops)]
                index += 1
                try:
                    if op.kind == "search":
                        lock.acquire_read()
                        try:
                            self.engine.search(op.payload, top_k=cfg.top_k)
                        finally:
                            lock.release_read()
                        search_rec.record(time.perf_counter() - issued_at)
                        tally[0] += 1
                    else:
                        lock.acquire_write()
                        try:
                            self.engine.index_batch([op.payload])
                        finally:
                            lock.release_write()
                        ingest_rec.record(time.perf_counter() - issued_at)
                        tally[1] += 1
                        tally[3] += len(op.payload.encode("utf-8"))
                except Exception as exc:  # noqa: BLE001 - load test must survive
                    tally[2] += 1
                    error_tally[type(exc).__name__] += 1
                    with errors_lock:
                        if len(errors) < 20:
                            errors.append(f"{op.kind}: {exc!r}")

        threads = [
            threading.Thread(
                target=client_loop, args=(i,), name=f"loadtest-client-{i}"
            )
            for i in range(cfg.clients)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start

        searches = sum(t[0] for t in counts)
        ingests = sum(t[1] for t in counts)
        error_count = sum(t[2] for t in counts)
        local_bytes = sum(t[3] for t in counts)
        ingest_bytes_after = counter_value(
            getattr(self.engine, "metrics", None), INGEST_BYTES_COUNTER
        )
        if ingest_bytes_after is not None and ingest_bytes_before is not None:
            ingest_bytes = int(ingest_bytes_after - ingest_bytes_before)
        else:
            ingest_bytes = local_bytes
        return LoadTestResult(
            config=cfg,
            mode="open" if cfg.arrival_rate else "closed",
            wall_seconds=wall,
            operations=searches + ingests + error_count,
            searches=searches,
            ingests=ingests,
            errors=error_count,
            qps=searches / wall if wall > 0 else 0.0,
            ingest_docs_per_s=ingests / wall if wall > 0 else 0.0,
            ingest_mb_per_s=(
                ingest_bytes / (1024.0 * 1024.0) / wall if wall > 0 else 0.0
            ),
            ingest_bytes=ingest_bytes,
            shards=getattr(self.engine, "num_shards", 1),
            search_latency=LatencyRecorder.merged(
                search_recorders, seed=cfg.seed
            ).summary(),
            ingest_latency=LatencyRecorder.merged(
                ingest_recorders, seed=cfg.seed
            ).summary(),
            error_messages=errors,
            error_classes=dict(
                sorted(sum(error_tallies, Counter()).items())
            ),
        )


def run_load_test(
    engine, config: Optional[LoadTestConfig] = None, *, preload: bool = True
) -> LoadTestResult:
    """One-call convenience: build a harness for ``engine`` and run it."""
    return LoadTestHarness(engine, config, preload=preload).run()
