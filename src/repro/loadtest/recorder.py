"""Thread-safe latency recording with deterministic percentiles.

:class:`LatencyRecorder` keeps a bounded reservoir of observations
(Vitter's Algorithm R) so a multi-hour run records in O(capacity)
memory, while short runs — anything that fits the reservoir — keep
*every* sample and report exact percentiles.  Two properties the test
suite enforces:

* **determinism**: given the same observation sequence and seed, the
  reservoir (and therefore every percentile) is identical run to run;
* **mergeability**: merging per-client recorders whose combined sample
  count fits the capacity equals one global recorder fed the union —
  so per-thread recording (no shared lock on the hot path beyond each
  recorder's own) loses nothing.

Percentiles use the nearest-rank definition on the sorted reservoir,
which is exact for retained samples and never interpolates values that
were not observed.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import WorkloadError


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one recorder (latencies in seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def to_dict(self, *, scale: float = 1000.0) -> Dict[str, float]:
        """JSON-friendly dict; ``scale`` converts seconds (default: to ms)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * scale,
            "min_ms": self.minimum * scale,
            "max_ms": self.maximum * scale,
            "p50_ms": self.p50 * scale,
            "p95_ms": self.p95 * scale,
            "p99_ms": self.p99 * scale,
        }


_EMPTY_SUMMARY = LatencySummary(
    count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0, p99=0.0
)


def _nearest_rank(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (0 if empty)."""
    if not sorted_samples:
        return 0.0
    if q == 0:
        return sorted_samples[0]
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class LatencyRecorder:
    """Bounded-memory, thread-safe reservoir of latency observations.

    Parameters
    ----------
    capacity:
        Reservoir size.  Runs recording at most ``capacity`` samples
        report exact percentiles; beyond that the reservoir is a
        uniform random sample (Algorithm R) and percentiles are
        estimates.
    seed:
        Seeds the (per-recorder) replacement RNG, making the reservoir
        deterministic for a fixed observation sequence.
    """

    def __init__(self, capacity: int = 50_000, *, seed: int = 0):
        if capacity <= 0:
            raise WorkloadError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        if seconds < 0:
            raise WorkloadError(f"latency must be non-negative, got {seconds}")
        with self._lock:
            self._count += 1
            self._sum += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                # Algorithm R: keep each of the n observations seen so
                # far with probability capacity/n.
                slot = self._rng.randrange(self._count)
                if slot < self.capacity:
                    self._samples[slot] = seconds

    def record_many(self, latencies: Iterable[float]) -> None:
        """Record a batch of observations (test/calibration convenience)."""
        for value in latencies:
            self.record(value)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyRecorder") -> None:
        """Fold ``other``'s observations into this recorder.

        When the combined retained samples fit this recorder's capacity
        the merge is exact (the reservoirs are unions); otherwise the
        overflow is down-sampled deterministically under this
        recorder's seed.
        """
        with other._lock:
            other_samples = list(other._samples)
            other_count = other._count
            other_sum = other._sum
            other_min = other._min
            other_max = other._max
        with self._lock:
            self._count += other_count
            self._sum += other_sum
            if other_min is not None and (self._min is None or other_min < self._min):
                self._min = other_min
            if other_max is not None and (self._max is None or other_max > self._max):
                self._max = other_max
            combined = self._samples + other_samples
            if len(combined) <= self.capacity:
                self._samples = combined
            else:
                rng = random.Random(self.seed)
                self._samples = rng.sample(combined, self.capacity)

    @classmethod
    def merged(
        cls,
        recorders: Sequence["LatencyRecorder"],
        *,
        capacity: Optional[int] = None,
        seed: int = 0,
    ) -> "LatencyRecorder":
        """One recorder holding the union of ``recorders``."""
        if capacity is None:
            capacity = max((r.capacity for r in recorders), default=50_000)
        out = cls(capacity, seed=seed)
        for recorder in recorders:
            out.merge(recorder)
        return out

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations recorded (not just those retained)."""
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100] over the reservoir."""
        if not 0 <= q <= 100:
            raise WorkloadError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        return _nearest_rank(samples, q)

    def summary(self) -> LatencySummary:
        """Count, mean, min/max, and p50/p95/p99 of everything recorded."""
        with self._lock:
            if self._count == 0:
                return _EMPTY_SUMMARY
            samples = sorted(self._samples)
            count = self._count
            mean = self._sum / self._count
            minimum = self._min if self._min is not None else 0.0
            maximum = self._max if self._max is not None else 0.0
        return LatencySummary(
            count=count,
            mean=mean,
            minimum=minimum,
            maximum=maximum,
            p50=_nearest_rank(samples, 50),
            p95=_nearest_rank(samples, 95),
            p99=_nearest_rank(samples, 99),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyRecorder(count={self.count}, "
            f"capacity={self.capacity}, seed={self.seed})"
        )
