"""The ``BENCH_LOADTEST.json`` snapshot format.

One snapshot is the machine-readable record of one load-test run,
committed at the repo root per PR so the whole-system throughput/latency
trajectory is visible in review.  The layout is schema-versioned
(``repro-loadtest/v1``) so :mod:`repro.loadtest.compare` and the
capacity model can refuse inputs they do not understand instead of
misreading them.

Layout::

    {
      "schema": "repro-loadtest/v1",
      "seed": 42,
      "config": { clients, duration, mix, arrival_rate, ... },
      "metrics": {
        "qps": ..., "error_rate": ..., "ingest_mb_per_s": ...,
        "latency_ms": {"search": {"p50_ms": ..., ...}, "ingest": {...}},
        ...
      }
    }

Wall-clock numbers inside ``metrics`` vary run to run; the committed
snapshot is compared under the tolerance bands documented in
``docs/LOADTEST.md``, never byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.errors import WorkloadError

#: Version tag every snapshot carries.
SNAPSHOT_SCHEMA = "repro-loadtest/v1"


def snapshot_document(result) -> Dict[str, object]:
    """Build the snapshot dict for a
    :class:`~repro.loadtest.harness.LoadTestResult`."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "seed": result.config.seed,
        "config": result.config.to_dict(),
        "metrics": result.to_dict(),
    }


def write_snapshot(result, path: str) -> Dict[str, object]:
    """Serialize ``result`` to ``path``; returns the written document.

    Keys are sorted and the file ends in a newline so regenerating an
    identical measurement produces an identical file.
    """
    document = snapshot_document(result)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def read_snapshot(path: str) -> Dict[str, object]:
    """Load and schema-check a snapshot file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise WorkloadError(f"cannot read snapshot '{path}': {exc}") from exc
    except json.JSONDecodeError as exc:
        raise WorkloadError(
            f"snapshot '{path}' is not valid JSON: {exc}"
        ) from exc
    return validate_snapshot(document, source=path)


def validate_snapshot(
    document: Dict[str, object], *, source: Optional[str] = None
) -> Dict[str, object]:
    """Check the schema tag and required sections of a snapshot dict."""
    where = f" '{source}'" if source else ""
    if not isinstance(document, dict):
        raise WorkloadError(f"snapshot{where} must be a JSON object")
    schema = document.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise WorkloadError(
            f"snapshot{where} has schema {schema!r}; expected "
            f"{SNAPSHOT_SCHEMA!r}"
        )
    for section in ("config", "metrics"):
        if not isinstance(document.get(section), dict):
            raise WorkloadError(f"snapshot{where} is missing '{section}'")
    metrics = document["metrics"]
    latency = metrics.get("latency_ms")
    if not isinstance(latency, dict) or "search" not in latency:
        raise WorkloadError(
            f"snapshot{where} is missing 'metrics.latency_ms.search'"
        )
    return document
