"""HTTP client transport: drive the archive service with the load harness.

:class:`~repro.loadtest.harness.LoadTestHarness` duck-types its target —
anything with ``search(query, top_k=...)`` and ``index_batch(texts)``.
:class:`HTTPTransport` satisfies that protocol over the wire, so the
same deterministic workload plan that measures the in-process engine
measures a running :mod:`repro.service` endpoint (``repro-search
loadtest --endpoint http://...``), queueing delay, admission control,
and serialisation included.

Each client thread keeps one persistent ``http.client.HTTPConnection``
(the service speaks HTTP/1.1 keep-alive), reconnecting transparently
when the server closes an idle connection.  Non-2xx answers raise typed
exceptions — :class:`RateLimitedError` for 429, :class:`ServiceOverloadedError`
for 503 — whose class names land in the harness's per-class error
counter, so a nonzero error rate in a snapshot names its cause.

The transport sets ``needs_write_lock = False``: the service's own
reader-writer discipline is the thing under test, and a client-side
write lock would fake a serialisation the server never sees.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """Base class for archive-service client failures."""


class RateLimitedError(ServiceClientError):
    """The service answered 429: the tenant is over its request rate."""

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceOverloadedError(ServiceClientError):
    """The service answered 503: queue full, draining, or shedding load."""

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceProtocolError(ServiceClientError):
    """The service answered something other than the v1 protocol."""


class TransportSearchResult:
    """One wire-format hit, shaped like an engine ``SearchResult``."""

    __slots__ = ("doc_id", "score")

    def __init__(self, doc_id: int, score: float):
        self.doc_id = doc_id
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransportSearchResult(doc_id={self.doc_id}, score={self.score})"


class HTTPTransport:
    """Engine-protocol adapter over a running archive service.

    Parameters
    ----------
    endpoint:
        Base URL, e.g. ``http://127.0.0.1:8080``.
    timeout:
        Per-request socket timeout in seconds.
    tenant:
        Value for the ``X-Repro-Tenant`` header (rate-limit identity);
        ``None`` sends no header (the service charges ``default``).
    """

    #: The harness must not serialise ingest client-side: the service's
    #: reader-writer lock is the real one.
    needs_write_lock = False

    def __init__(
        self,
        endpoint: str,
        *,
        timeout: float = 30.0,
        tenant: Optional[str] = None,
    ):
        parts = urlsplit(endpoint if "//" in endpoint else f"//{endpoint}")
        if parts.scheme not in ("", "http"):
            raise ServiceClientError(
                f"unsupported scheme '{parts.scheme}' (http only)"
            )
        if not parts.hostname:
            raise ServiceClientError(f"endpoint '{endpoint}' has no host")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self.tenant = tenant
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()
        self._health: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            connection.connect()
            # Request bodies go out as separate segments; Nagle plus
            # delayed ACK would add ~40 ms per loopback round trip.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
            self._local.connection = None

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        for attempt in (0, 1):
            try:
                connection = self._connection()
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()  # drain: keep-alive needs a clean socket
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as exc:
                # A server-closed keep-alive connection surfaces here on
                # the next request; one reconnect retry is safe for it.
                self._drop_connection()
                if attempt:
                    raise ServiceClientError(
                        f"{method} {path} failed: {type(exc).__name__}: {exc}"
                    ) from exc
        response_headers = {k: v for k, v in response.getheaders()}
        if response.getheader("Connection", "").lower() == "close":
            self._drop_connection()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            try:
                document = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceProtocolError(
                    f"{method} {path}: unparseable JSON answer: {exc}"
                ) from exc
        else:
            document = {"text": raw.decode("utf-8", errors="replace")}
        return response.status, document, response_headers

    def _call(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        status, document, headers = self._request(method, path, payload)
        if 200 <= status < 300:
            return document
        error = document.get("error", {}) if isinstance(document, dict) else {}
        message = (
            f"{method} {path} -> {status}: "
            f"{error.get('message', 'no detail')}"
        )
        retry_after = _parse_retry_after(headers.get("Retry-After"))
        if status == 429:
            raise RateLimitedError(message, retry_after=retry_after)
        if status == 503:
            raise ServiceOverloadedError(message, retry_after=retry_after)
        raise ServiceProtocolError(message)

    # ------------------------------------------------------------------
    # engine protocol (what the harness calls)
    # ------------------------------------------------------------------
    def search(
        self, query: str, *, top_k: int = 10, verify: bool = False
    ) -> List[TransportSearchResult]:
        """POST /search; returns hits shaped like engine results."""
        document = self._call(
            "POST",
            "/search",
            {"query": query, "top_k": top_k, "verify": verify},
        )
        return [
            TransportSearchResult(int(hit["doc_id"]), float(hit["score"]))
            for hit in document.get("results", [])
        ]

    def index_batch(
        self,
        texts: Sequence[str],
        *,
        commit_times: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """POST /ingest; returns the assigned global document IDs.

        Batches larger than the service's per-request document cap
        (:data:`repro.service.protocol.MAX_INGEST_DOCUMENTS`) are split
        into multiple requests transparently — the harness's preload
        can exceed one request's worth.
        """
        from repro.service.protocol import MAX_INGEST_DOCUMENTS

        texts = list(texts)
        doc_ids: List[int] = []
        for start in range(0, len(texts), MAX_INGEST_DOCUMENTS):
            payload: Dict[str, object] = {
                "documents": texts[start : start + MAX_INGEST_DOCUMENTS]
            }
            if commit_times is not None:
                payload["commit_times"] = list(
                    commit_times[start : start + MAX_INGEST_DOCUMENTS]
                )
            document = self._call("POST", "/ingest", payload)
            doc_ids.extend(int(doc_id) for doc_id in document.get("doc_ids", []))
        return doc_ids

    # ------------------------------------------------------------------
    # service introspection
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """GET /healthz (cached after the first success)."""
        if self._health is None:
            self._health = self._call("GET", "/healthz")
        return self._health

    @property
    def num_shards(self) -> int:
        """Shard count reported by the service (for snapshots)."""
        try:
            return int(self.healthz().get("shards", 1))
        except ServiceClientError:
            return 1

    def close(self) -> None:
        """Close every per-thread connection this transport opened."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()

    def __enter__(self) -> "HTTPTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HTTPTransport(http://{self.host}:{self.port})"


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None
