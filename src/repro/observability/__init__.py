"""Observability: metrics registry, query tracing, and layer adapters.

Dependency-free instrumentation for the trustworthy search engine.  See
:mod:`repro.observability.metrics` for the registry,
:mod:`repro.observability.trace` for per-query span recording, and
:mod:`repro.observability.adapters` for exporting the storage, cache,
journal, and fault-injection layers' existing counters.
"""

from repro.observability.adapters import (
    counter_value,
    engine_metrics,
    export_archive,
    export_faults,
    export_journal,
    export_loadtest,
    export_read_cache,
    export_service,
    export_store,
    metrics_document,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.observability.trace import QueryTrace, Span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "QueryTrace",
    "Span",
    "counter_value",
    "engine_metrics",
    "export_archive",
    "export_faults",
    "export_journal",
    "export_loadtest",
    "export_read_cache",
    "export_service",
    "export_store",
    "metrics_document",
]
