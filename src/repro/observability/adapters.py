"""Export the engine's existing counters into a metrics registry.

The storage, cache, journal, and fault-injection layers each keep their
own authoritative counters (:class:`~repro.worm.iostats.IoStats`,
:class:`~repro.worm.cache.CacheStats`, the WAL sequence number in
:class:`~repro.worm.persistent.JournaledWormDevice`,
:class:`~repro.worm.faults.FaultPlan.counts`).  These adapters *set*
registry series from those sources at snapshot time — the source objects
stay authoritative and pay no double-count risk — so one
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot` covers
every layer next to the live query/ingest instrumentation.

Everything here duck-types its inputs (``hasattr`` probes for journal
and fault state) so the module imports no engine, sharding, or worm
code and can never create an import cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: Label value used for the coordinator store of a sharded engine.
COORDINATOR = "coordinator"


def export_store(registry, store, *, shard: str = "0") -> None:
    """Export one :class:`~repro.worm.storage.CachedWormStore`'s counters.

    Covers storage I/O, cache behaviour, and — when the underlying
    device is journaled and/or fault-injecting — WAL and fault-hit
    counters.  ``shard`` labels every series ("0", "1", ... for shard
    stores, :data:`COORDINATOR` for cross-shard state).
    """
    if not registry.enabled:
        return
    shard = str(shard)
    io = store.io
    stats = store.cache.stats
    for name, help_text, value in (
        (
            "repro_store_block_reads_total",
            "Random block reads charged to this store",
            io.block_reads,
        ),
        (
            "repro_store_block_writes_total",
            "Random block writes charged to this store",
            io.block_writes,
        ),
        ("repro_cache_hits_total", "Storage-cache hits", stats.hits),
        ("repro_cache_misses_total", "Storage-cache misses", stats.misses),
        (
            "repro_cache_evictions_total",
            "Storage-cache evictions (LRU write-outs)",
            stats.evictions,
        ),
        (
            "repro_cache_full_flushes_total",
            "Tail blocks written out because they filled",
            stats.full_flushes,
        ),
    ):
        registry.counter(name, help_text, labels=("shard",)).labels(
            shard=shard
        ).set(value)
    registry.gauge(
        "repro_cache_hit_rate",
        "Fraction of storage-cache accesses that hit",
        labels=("shard",),
    ).labels(shard=shard).set(stats.hit_rate)
    registry.gauge(
        "repro_cache_resident_blocks",
        "Blocks currently resident in the storage cache",
        labels=("shard",),
    ).labels(shard=shard).set(len(store.cache))
    export_journal(registry, store.device, shard=shard)
    export_faults(registry, store.device, shard=shard)


def export_journal(registry, device, *, shard: str = "0") -> None:
    """Export WAL counters of a journaled device (no-op for others)."""
    if not registry.enabled or not hasattr(device, "journal_bytes"):
        return
    shard = str(shard)
    registry.counter(
        "repro_journal_records_total",
        "Journal records committed (the WAL sequence number)",
        labels=("shard",),
    ).labels(shard=shard).set(device.records)
    registry.gauge(
        "repro_journal_bytes",
        "Committed journal size in bytes",
        labels=("shard",),
    ).labels(shard=shard).set(device.journal_bytes)
    registry.gauge(
        "repro_journal_pending_records",
        "Records awaiting the next group-commit fsync",
        labels=("shard",),
    ).labels(shard=shard).set(device.pending_records)


def export_faults(registry, device, *, shard: str = "0") -> None:
    """Export fault-injection hit counts (no-op without a fault plan)."""
    if not registry.enabled:
        return
    plan = getattr(device, "plan", None)
    counts = getattr(plan, "counts", None)
    if counts is None:
        return
    shard = str(shard)
    family = registry.counter(
        "repro_fault_point_calls_total",
        "Times each instrumented fault point was reached",
        labels=("shard", "point"),
    )
    for point, calls in counts.items():
        family.labels(shard=shard, point=point).set(calls)
    registry.gauge(
        "repro_fault_crashed",
        "Whether the fault plan has simulated a crash (0/1)",
        labels=("shard",),
    ).labels(shard=shard).set(1 if getattr(plan, "crashed", False) else 0)


def export_read_cache(registry, read_cache, *, shard: str = "0") -> None:
    """Export a read-path cache's per-tier counters (no-op when off).

    ``read_cache`` is an engine's
    :class:`~repro.search.readcache.ReadCache` (or ``None`` when read
    caching is disabled); duck-typed through ``as_dict()`` so this
    module keeps importing no engine code.  Emits one series per tier
    (``tier="blocks" | "results" | "jump_memo"``) for hits, misses,
    evictions, and invalidations, plus block-tier residency gauges.
    """
    if not registry.enabled or read_cache is None:
        return
    shard = str(shard)
    tiers = read_cache.as_dict()
    for counter_key, help_text in (
        ("hits", "Read-cache hits"),
        ("misses", "Read-cache misses"),
        ("evictions", "Read-cache evictions"),
        ("invalidations", "Read-cache invalidations (append-driven)"),
    ):
        family = registry.counter(
            f"repro_readcache_{counter_key}_total",
            f"{help_text}, per tier",
            labels=("shard", "tier"),
        )
        for tier in ("blocks", "results", "jump_memo"):
            family.labels(shard=shard, tier=tier).set(tiers[tier][counter_key])
    registry.gauge(
        "repro_readcache_resident_blocks",
        "Decoded posting blocks resident in the read cache",
        labels=("shard",),
    ).labels(shard=shard).set(tiers["blocks"]["resident"])
    registry.gauge(
        "repro_readcache_resident_bytes",
        "Approximate bytes held by the decoded-block tier",
        labels=("shard",),
    ).labels(shard=shard).set(tiers["blocks"]["resident_bytes"])


def counter_value(registry, name: str, **labels: object) -> Optional[float]:
    """Current value of one counter/gauge series, or ``None`` if absent.

    The read-side complement of the exporters above: the load-test
    harness uses it to pull authoritative totals (e.g. ingested bytes)
    back out of a registry without reaching into engine internals.
    Returns ``None`` for a missing registry, a disabled one, an
    unregistered name, or an unbound label set — callers fall back to
    their own accounting.
    """
    if registry is None or not getattr(registry, "enabled", False):
        return None
    for family in registry.families():
        if family.name != name:
            continue
        wanted = {key: str(value) for key, value in labels.items()}
        for label_map, series in family.series():
            if label_map == wanted:
                return float(series.value)
        return None
    return None


def export_loadtest(registry, result, *, run: str = "default") -> None:
    """Export a load-test result's headline numbers as gauges.

    ``result`` is a :class:`~repro.loadtest.harness.LoadTestResult`,
    duck-typed through ``to_dict()`` so this module keeps importing no
    engine or harness code.  One series per metric, labelled by ``run``
    so several configurations can share a registry.
    """
    if not registry.enabled:
        return
    run = str(run)
    doc = result.to_dict()
    flat = {
        "qps": doc["qps"],
        "ingest_docs_per_s": doc["ingest_docs_per_s"],
        "ingest_mb_per_s": doc["ingest_mb_per_s"],
        "error_rate": doc["error_rate"],
        "operations": doc["operations"],
        "search_p50_ms": doc["latency_ms"]["search"]["p50_ms"],
        "search_p95_ms": doc["latency_ms"]["search"]["p95_ms"],
        "search_p99_ms": doc["latency_ms"]["search"]["p99_ms"],
        "ingest_p99_ms": doc["latency_ms"]["ingest"]["p99_ms"],
    }
    for key, value in flat.items():
        registry.gauge(
            f"repro_loadtest_{key}",
            f"Load-test result '{key}' (see repro.loadtest)",
            labels=("run",),
        ).labels(run=run).set(value)


def export_service(registry, service_stats: Dict[str, object]) -> None:
    """Export the archive service's admission-control state as gauges.

    ``service_stats`` is :meth:`repro.service.server.ArchiveService.stats`
    — a plain dict, duck-typed so this module keeps importing no service
    code.  Counters and latency histograms are registered live by the
    service itself (they are events, not state); this adapter covers the
    point-in-time side: queue depth, in-flight requests, tenant count,
    drain flag, and uptime, refreshed at scrape time like every other
    exporter here.
    """
    if not registry.enabled:
        return
    for key, help_text in (
        ("queue_depth", "Requests waiting for an execution slot"),
        ("inflight", "Requests currently executing"),
        ("tenants", "Distinct tenants with a rate-limit bucket"),
        ("draining", "Whether the service is draining (0/1)"),
        ("uptime_seconds", "Seconds since the service opened its engine"),
    ):
        value = service_stats.get(key)
        if value is None:
            continue
        registry.gauge(
            f"repro_service_{key}", help_text
        ).set(float(value))


def export_archive(registry, archive_stats: Dict[str, object]) -> None:
    """Export the numeric fields of ``archive_stats()`` as gauges."""
    if not registry.enabled:
        return
    for key, value in archive_stats.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.gauge(
            f"repro_archive_{key}",
            f"Archive stat '{key}' (see archive_stats())",
        ).set(value)


def engine_metrics(engine):
    """Refresh every adapter export for ``engine`` and return its registry.

    Accepts either a :class:`~repro.search.engine.TrustworthySearchEngine`
    or a :class:`~repro.sharding.engine.ShardedSearchEngine` (duck-typed
    on the ``shards`` attribute); after this call the registry's snapshot
    covers the storage, cache, journal, index, and query layers.
    """
    registry = engine.metrics
    if not registry.enabled:
        return registry
    shards = getattr(engine, "shards", None)
    if shards is not None:
        for index, shard in enumerate(shards):
            export_store(registry, shard.store, shard=index)
            export_read_cache(
                registry, getattr(shard, "read_cache", None), shard=index
            )
        export_store(registry, engine.coordinator, shard=COORDINATOR)
    else:
        export_store(registry, engine.store, shard="0")
        export_read_cache(
            registry, getattr(engine, "read_cache", None), shard="0"
        )
    export_archive(registry, engine.archive_stats())
    return registry


def metrics_document(
    engine, *, traces: Optional[Iterable] = None
) -> Dict[str, object]:
    """One stable JSON document: refreshed metrics plus optional traces.

    This is what ``--metrics-json`` writes; ``schema`` versions the
    layout so downstream tooling can detect format changes.
    """
    registry = engine_metrics(engine)
    return {
        "schema": "repro-metrics/v1",
        "metrics": registry.snapshot(),
        "traces": [trace.to_dict() for trace in (traces or [])],
    }
