"""A dependency-free metrics registry: counters, gauges, histograms.

The paper's evaluation is *accounting* — cache hits, blocks read per
query, insert I/Os — and the engine already counts all of it, but in
scattered objects (:class:`~repro.worm.iostats.IoStats`,
:class:`~repro.worm.cache.CacheStats`, per-cursor block sets, journal
sequence numbers).  :class:`MetricsRegistry` gives those counters one
home with named registration and label support, so a single snapshot
covers the storage, cache, index, and query layers, and one text
rendering serves a Prometheus scrape.

Design constraints:

* **dependency-free** — standard library only;
* **cheap on the hot path** — incrementing a bound series is one
  attribute add; label resolution is a dict lookup callers can hoist
  out of loops by binding children once (``family.labels(shard="0")``);
* **optional** — :class:`NullMetricsRegistry` satisfies the same
  interface with no-ops, so instrumented code runs unmetered without
  branches (and the overhead benchmark can measure the difference).

Series mutation is not locked: under CPython's GIL the float/int adds
here are close enough to atomic for observability purposes, and every
multi-threaded caller in this codebase (the shard fan-out) touches
per-shard labelled series from exactly one thread.  Series *creation*
is locked so concurrent first-touches of one label set cannot lose
increments.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default latency buckets (seconds): 100 µs to 2.5 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class MetricsError(ReproError):
    """Invalid metric registration or label usage."""


class Counter:
    """One monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0 to stay a counter)."""
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the running total.

        For adapter use only: existing engine counters (``IoStats``,
        journal sequence numbers, ...) are authoritative elsewhere, so
        their exported series are *set* from the source of truth at
        snapshot time rather than incremented in two places.
        """
        self.value = value


class Gauge:
    """One series that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Assign the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """One fixed-bucket histogram series (cumulative ``le`` semantics)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


_SERIES_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with a fixed label schema and one series per label set.

    Obtained from a :class:`MetricsRegistry`; call :meth:`labels` to bind
    a concrete series (hoist the binding out of hot loops).  Families
    declared without labels proxy the series interface directly, so
    ``registry.counter("x").inc()`` works.
    """

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_series", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._series: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object):
        """The series for one concrete label assignment (created on first use)."""
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise MetricsError(
                f"metric '{self.name}' requires labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            ) from exc
        if len(labels) != len(self.label_names):
            raise MetricsError(
                f"metric '{self.name}' requires labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    if self.kind == "histogram":
                        series = Histogram(self.buckets)
                    else:
                        series = _SERIES_TYPES[self.kind]()
                    self._series[key] = series
        return series

    # Label-free convenience: the family acts as its own single series.
    def _default(self):
        if self.label_names:
            raise MetricsError(
                f"metric '{self.name}' is labelled by "
                f"{list(self.label_names)}; bind a series with .labels()"
            )
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """All series as ``(label dict, series)`` pairs, sorted by labels."""
        return [
            (dict(zip(self.label_names, key)), self._series[key])
            for key in sorted(self._series)
        ]


class MetricsRegistry:
    """Named registration of counters, gauges, and histograms.

    Registration is idempotent: asking for an existing name with the
    same kind and label schema returns the existing family (so shards
    sharing one registry all bind the same families); a conflicting
    re-registration raises :class:`MetricsError`.
    """

    #: Instrumented code may consult this to skip pure-measurement work
    #: (clock reads) when metrics are off; see :class:`NullMetricsRegistry`.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        bucket_bounds = tuple(buckets) if buckets is not None else None
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != label_names:
                    raise MetricsError(
                        f"metric '{name}' already registered as "
                        f"{existing.kind}{list(existing.label_names)}; "
                        f"cannot re-register as {kind}{list(label_names)}"
                    )
                return existing
            family = MetricFamily(name, kind, help_text, label_names, bucket_bounds)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", *, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", *, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(name, "histogram", help_text, labels, buckets)

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A stable, JSON-serializable document of every series.

        Families are keyed by name; series are sorted by label values,
        so two snapshots of identical state serialize identically.
        """
        doc: Dict[str, object] = {}
        for family in self.families():
            series_docs = []
            for label_map, series in family.series():
                entry: Dict[str, object] = {"labels": label_map}
                if family.kind == "histogram":
                    entry["count"] = series.count
                    entry["sum"] = series.sum
                    entry["buckets"] = {
                        _le_label(bound): count
                        for bound, count in _cumulative(series)
                    }
                else:
                    entry["value"] = series.value
                series_docs.append(entry)
            doc[family.name] = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series_docs,
            }
        return doc

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_map, series in family.series():
                if family.kind == "histogram":
                    for bound, count in _cumulative(series):
                        labels = _render_labels({**label_map, "le": _le_label(bound)})
                        lines.append(f"{family.name}_bucket{labels} {count}")
                    labels = _render_labels(label_map)
                    lines.append(f"{family.name}_sum{labels} {_fmt(series.sum)}")
                    lines.append(f"{family.name}_count{labels} {series.count}")
                else:
                    labels = _render_labels(label_map)
                    lines.append(f"{family.name}{labels} {_fmt(series.value)}")
        return "\n".join(lines) + "\n"


class _NullSeries:
    """Absorbs every series operation; its own ``labels`` target."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: object) -> "_NullSeries":
        return self


_NULL_SERIES = _NullSeries()


class NullMetricsRegistry:
    """A :class:`MetricsRegistry` stand-in whose metrics discard everything.

    Instrumented components accept a registry at construction; passing
    this one runs them unmetered with zero bookkeeping — the baseline
    side of the observability overhead benchmark.
    """

    enabled = False

    def counter(self, name, help_text: str = "", *, labels=()):
        return _NULL_SERIES

    def gauge(self, name, help_text: str = "", *, labels=()):
        return _NULL_SERIES

    def histogram(self, name, help_text: str = "", *, labels=(), buckets=()):
        return _NULL_SERIES

    def families(self):
        return []

    def snapshot(self):
        return {}

    def render_prometheus(self):
        return ""


def _cumulative(histogram: Histogram):
    """``(bound, cumulative count)`` pairs ending with the +Inf bucket."""
    running = 0
    out = []
    for bound, count in zip(histogram.bounds, histogram.bucket_counts):
        running += count
        out.append((bound, running))
    out.append((float("inf"), histogram.count))
    return out


def _le_label(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _fmt(bound)


def _fmt(value: float) -> str:
    """Render numbers the Prometheus way (integers without a decimal)."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def _render_labels(label_map: Dict[str, str]) -> str:
    if not label_map:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in label_map.items()
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
