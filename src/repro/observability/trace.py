"""Per-query span recording: the query path as a tree of timed stages.

A :class:`QueryTrace` is handed to ``search`` and threaded down the
query path; each stage opens a :class:`Span` (parse → term/list
resolution → join/scan → ranking → verification, plus one span per
shard on the fan-out path) and attaches its micro-costs as attributes —
seeks, blocks read, jump-pointer follows, candidate counts.  The result
is the paper's accounting at per-query granularity instead of
per-experiment.

Spans form a tree via parent indices; recording is append-only under a
lock so the sharded executor's worker threads can add spans
concurrently.  ``to_dict()`` is stable (insertion-ordered spans, sorted
attributes) so traces can be committed as JSON fixtures.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional


class Span:
    """One timed stage of a query, with arbitrary numeric/string attributes."""

    __slots__ = ("name", "start", "end", "attrs", "parent", "index")

    def __init__(
        self,
        name: str,
        start: float,
        parent: Optional[int],
        index: int,
        attrs: Dict[str, object],
    ):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.parent = parent
        self.index = index

    @property
    def seconds(self) -> float:
        """Span duration (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def note(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms, {self.attrs})"


class QueryTrace:
    """Span recorder for one query execution.

    Use as::

        trace = QueryTrace("stewart waksal")
        engine.search("stewart waksal", trace=trace)
        print(trace.pretty())

    The context-manager :meth:`span` nests spans per thread of control;
    the executor's worker threads use :meth:`record` to add completed
    shard spans without touching the coordinator's span stack.
    """

    def __init__(self, query: str = ""):
        self.query = query
        self.spans: List[Span] = []
        self._t0 = perf_counter()
        self._lock = threading.Lock()
        self._stack: List[int] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs: object) -> Span:
        """Open a nested span; close it with :meth:`finish`."""
        now = perf_counter() - self._t0
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            span = Span(name, now, parent, len(self.spans), dict(attrs))
            self.spans.append(span)
            self._stack.append(span.index)
        return span

    def finish(self, span: Span) -> None:
        """Close a span opened with :meth:`begin`."""
        span.end = perf_counter() - self._t0
        with self._lock:
            if self._stack and self._stack[-1] == span.index:
                self._stack.pop()
            elif span.index in self._stack:
                self._stack.remove(span.index)

    def span(self, name: str, **attrs: object) -> "_SpanContext":
        """Context manager: open a span, close it on exit."""
        return _SpanContext(self, name, attrs)

    def record(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Optional[int] = None,
        **attrs: object,
    ) -> Span:
        """Add an already-timed span (``start``/``end`` are perf_counter values).

        Thread-safe and stack-free: worker threads report completed
        stages without interleaving with the coordinator's nesting.
        """
        with self._lock:
            span = Span(
                name, start - self._t0, parent, len(self.spans), dict(attrs)
            )
            span.end = end - self._t0
            self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Wall-clock span of the whole recorded trace."""
        ends = [s.end for s in self.spans if s.end is not None]
        if not ends:
            return 0.0
        return max(ends) - min(s.start for s in self.spans)

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-serializable form of the trace."""
        return {
            "query": self.query,
            "total_seconds": self.total_seconds,
            "spans": [
                {
                    "name": span.name,
                    "parent": span.parent,
                    "start_seconds": span.start,
                    "seconds": span.seconds,
                    "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
                }
                for span in self.spans
            ],
        }

    def pretty(self) -> str:
        """Indented human-readable rendering of the span tree."""

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        depth: Dict[int, int] = {}
        lines = [f"trace {self.query!r}  ({self.total_seconds * 1e3:.3f} ms)"]
        for span in self.spans:
            level = 0 if span.parent is None else depth.get(span.parent, 0) + 1
            depth[span.index] = level
            attrs = " ".join(
                f"{k}={fmt(span.attrs[k])}" for k in sorted(span.attrs)
            )
            lines.append(
                f"{'  ' * (level + 1)}{span.name:<12} "
                f"{span.seconds * 1e3:8.3f} ms"
                + (f"  {attrs}" if attrs else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTrace({self.query!r}, spans={len(self.spans)})"


class _SpanContext:
    """Context manager wrapper used by :meth:`QueryTrace.span`."""

    __slots__ = ("_trace", "_name", "_attrs", "span")

    def __init__(self, trace: QueryTrace, name: str, attrs: Dict[str, object]):
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._trace.begin(self._name, **self._attrs)
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._trace.finish(self.span)
