"""Keyword search engine built on the trustworthy index.

The paper validates its scheme inside IBM's Trevi intranet engine; this
subpackage is our equivalent substrate:

* :mod:`repro.search.analyzer` — tokenization and stopwording;
* :mod:`repro.search.documents` — the WORM-resident document store (the
  "conventional WORM for the documents themselves", Section 2.2);
* :mod:`repro.search.ranking` — Okapi BM25 and cosine scorers
  (Section 3.1 cites both as the similarity measures in use);
* :mod:`repro.search.query` — query model: disjunctive, conjunctive and
  commit-time-constrained queries;
* :mod:`repro.search.join` — zigzag (Figure 5) and scan-merge joins over
  seekable posting cursors, with blocks-read accounting;
* :mod:`repro.search.engine` — :class:`TrustworthySearchEngine`, the
  end-to-end public API: real-time trustworthy ingest, ranked search,
  conjunctive joins, time-range filtering and result verification.
"""

from repro.search.analyzer import Analyzer
from repro.search.documents import Document, DocumentStore
from repro.search.engine import EngineConfig, SearchResult, TrustworthySearchEngine
from repro.search.epoched import EpochedSearchEngine, EpochPolicy
from repro.search.profiling import (
    QueryProfile,
    ShardedQueryProfile,
    profile_query,
    profile_sharded_query,
    recommend_configuration,
)
from repro.search.join import (
    MemoryCursor,
    MergedListCursor,
    TreeCursor,
    conjunctive_join,
    sequential_conjunctive,
    zigzag,
)
from repro.search.query import Query, QueryMode, parse_query
from repro.search.ranking import BM25Scorer, CosineScorer, CollectionStats
from repro.search.readcache import (
    DecodedBlockCache,
    JumpMemo,
    QueryResultCache,
    ReadCache,
)

__all__ = [
    "Analyzer",
    "BM25Scorer",
    "CollectionStats",
    "CosineScorer",
    "DecodedBlockCache",
    "Document",
    "DocumentStore",
    "EngineConfig",
    "EpochPolicy",
    "EpochedSearchEngine",
    "JumpMemo",
    "MemoryCursor",
    "MergedListCursor",
    "Query",
    "QueryMode",
    "QueryProfile",
    "QueryResultCache",
    "ReadCache",
    "SearchResult",
    "ShardedQueryProfile",
    "TreeCursor",
    "TrustworthySearchEngine",
    "conjunctive_join",
    "parse_query",
    "profile_query",
    "profile_sharded_query",
    "recommend_configuration",
    "sequential_conjunctive",
    "zigzag",
]
