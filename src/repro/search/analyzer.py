"""Tokenization for document ingest and queries.

Deliberately simple — lowercase word extraction with a small stopword
list — because nothing in the paper's evaluation depends on linguistic
sophistication; what matters is that documents and queries pass through
the *same* analysis so posting lists and query terms agree.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List

_TOKEN = re.compile(r"[a-z0-9]+")

#: English function words excluded from indexing; small on purpose — a
#: records-retention index must err on the side of indexing too much.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """a an and are as at be but by for if in into is it no not of on or
    such that the their then there these they this to was will with""".split()
)


class Analyzer:
    """Lowercasing word tokenizer with stopword removal.

    Parameters
    ----------
    stopwords:
        Terms to drop; pass an empty set to index everything.
    min_length:
        Minimum token length retained (single letters are rarely useful
        search keys).
    """

    def __init__(
        self,
        *,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
        min_length: int = 2,
    ):
        self.stopwords = frozenset(w.lower() for w in stopwords)
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.min_length = min_length

    def tokens(self, text: str) -> List[str]:
        """All retained tokens of ``text`` in order, duplicates included."""
        return [
            token
            for token in _TOKEN.findall(text.lower())
            if len(token) >= self.min_length and token not in self.stopwords
        ]

    def term_counts(self, text: str) -> Dict[str, int]:
        """Distinct retained terms with their occurrence counts."""
        return dict(Counter(self.tokens(text)))

    def query_terms(self, text: str) -> List[str]:
        """Distinct retained terms in first-occurrence order (for queries)."""
        seen: Dict[str, None] = {}
        for token in self.tokens(text):
            seen.setdefault(token, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Analyzer(stopwords={len(self.stopwords)}, "
            f"min_length={self.min_length})"
        )
