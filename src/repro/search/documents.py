"""WORM-resident document store.

Documents themselves live on "a conventional WORM" (Section 2.2): once
committed they can neither be altered nor prematurely deleted.  The store
writes each document's UTF-8 text as block-sized chunks into its own WORM
file, keyed by document ID, so that:

* the bytes Bob eventually reads are exactly the bytes Alice committed —
  the ground truth the Section-5 stuffing detector compares index answers
  against;
* document IDs are assigned by a strictly increasing counter
  (Section 4.1), the property every trustworthy index here relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import WorkloadError
from repro.worm.storage import CachedWormStore


@dataclass
class Document:
    """One committed document."""

    doc_id: int
    text: str
    #: Integer commit timestamp (monotonic, assigned at ingest).
    commit_time: int


class DocumentStore:
    """Append-only store of committed documents on a WORM device.

    Parameters
    ----------
    store:
        The WORM store; documents share it with the index by default, as
        separate files.
    prefix:
        Namespace prefix for document files.
    """

    def __init__(self, store: CachedWormStore, *, prefix: str = "doc"):
        self.store = store
        self.prefix = prefix
        self._next_doc_id = 0
        self._commit_times: Dict[int, int] = {}

    def file_name(self, doc_id: int) -> str:
        """The WORM file name holding ``doc_id``'s committed bytes.

        Public so collaborators that operate on the underlying WORM
        files — the retention manager deleting an expired document, an
        auditor opening the committed record — need not reach into the
        store's naming scheme.
        """
        return f"{self.prefix}/{doc_id:010d}"

    # Backwards-compatible alias (pre-dates the public naming API).
    _file_name = file_name

    def restore(self, next_doc_id: int, commit_times: Dict[int, int]) -> None:
        """Reattach to documents committed in a previous session.

        ``next_doc_id`` and ``commit_times`` come from the trustworthy
        commit-time log (the store's own counters are session-local).
        """
        self._next_doc_id = next_doc_id
        self._commit_times.update(commit_times)

    @property
    def next_doc_id(self) -> int:
        """The ID the next committed document will receive."""
        return self._next_doc_id

    def __len__(self) -> int:
        return self._next_doc_id

    # ------------------------------------------------------------------
    # commit path
    # ------------------------------------------------------------------
    def commit(
        self,
        text: str,
        *,
        commit_time: int,
        retention_until: Optional[float] = None,
    ) -> int:
        """Commit a document to WORM; returns its assigned ID.

        Committing the record and building its index entry must be "a
        single action" (Section 2.1); the engine calls this and the index
        update inside one ingest call with no buffering in between.
        ``retention_until`` sets the term-immutability horizon (None =
        retained forever); it must be a whole number of commit-time
        units — the disposition log packs horizons as integers, and a
        fractional horizon would be silently truncated there, recording
        a disposal as legitimate up to one time unit before the true
        horizon.

        Raises
        ------
        WorkloadError
            If ``retention_until`` is not a whole number.
        """
        if retention_until is not None and not float(
            retention_until
        ).is_integer():
            raise WorkloadError(
                f"retention_until must be a whole number of commit-time "
                f"units, got {retention_until!r}; the disposition log "
                f"records integer horizons"
            )
        doc_id = self._next_doc_id
        name = self.file_name(doc_id)
        worm_file = self.store.device.create_file(
            name, retention_until=retention_until
        )
        payload = text.encode("utf-8")
        block_size = self.store.block_size
        if not payload:
            payload = b"\x00"  # empty docs still occupy a committed record
        for start in range(0, len(payload), block_size):
            worm_file.append_record(payload[start : start + block_size])
        self._commit_times[doc_id] = commit_time
        self._next_doc_id += 1
        return doc_id

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def exists(self, doc_id: int) -> bool:
        """Whether ``doc_id`` refers to a committed document."""
        return self.store.device.exists(self.file_name(doc_id))

    def get(self, doc_id: int) -> Document:
        """Fetch a committed document.

        Raises
        ------
        UnknownFileError
            If no such document was committed — e.g. when a stuffed
            posting pointed at a fabricated ID.
        """
        name = self.file_name(doc_id)
        worm_file = self.store.open_file(name)
        chunks = [self.store.peek_block(name, b) for b in range(worm_file.num_blocks)]
        payload = b"".join(chunks)
        if payload == b"\x00":
            payload = b""
        return Document(
            doc_id=doc_id,
            text=payload.decode("utf-8"),
            commit_time=self._commit_times.get(doc_id, -1),
        )

    def documents(self) -> Iterator[Document]:
        """Iterate all committed documents in ID order."""
        for doc_id in range(self._next_doc_id):
            yield self.get(doc_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentStore(docs={self._next_doc_id}, prefix='{self.prefix}')"
