"""End-to-end trustworthy search engine (the library's main public API).

:class:`TrustworthySearchEngine` assembles the whole paper:

* documents commit to WORM and are indexed **in the same call** — no
  buffering window for Mala to exploit (Section 2.3's real-time update
  requirement);
* posting lists are **merged** into ``M`` cache-resident lists
  (Section 3) under a pluggable strategy, uniform hashing by default;
* optional **jump indexes** (Section 4) accelerate conjunctive queries
  while preserving trust guarantees;
* a **commit-time index** (Section 5) serves trustworthy time-range
  constraints;
* results can be **verified** against the WORM-resident documents to
  expose posting-list stuffing (Section 5's ranking-attack
  countermeasure).

Example
-------
>>> engine = TrustworthySearchEngine()
>>> engine.index_document("quarterly revenue audit memo")
0
>>> [r.doc_id for r in engine.search("revenue audit")]
[0]
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.block_jump_index import BlockJumpIndex
from repro.core.merge import MergeStrategy, TermAssignment, UniformHashMerge
from repro.core.posting import MAX_TERM_ID_WITH_TF, pack_term_tf
from repro.core.posting_list import PostingList
from repro.core.segments import (
    STRATEGY_POPULAR,
    STRATEGY_UNIFORM,
    SealedSegment,
    SegmentInfo,
    SegmentManifest,
    choose_popular_terms,
    next_seg_no,
    validate_seal_strategy,
    write_segment_lists,
)
from repro.core.tail import MutableTailIndex, TailSnapshot
from repro.core.time_index import CommitTimeIndex
from repro.core.verification import AuditReport, audit_search_result
from repro.errors import WorkloadError
from repro.observability.metrics import MetricsRegistry
from repro.search.analyzer import Analyzer
from repro.search.documents import DocumentStore
from repro.search.join import MergedListCursor, conjunctive_join
from repro.search.lexicon import PrefixHashLexicon
from repro.search.query import QueryMode, parse_query
from repro.search.ranking import BM25Scorer, CollectionStats, CosineScorer
from repro.search.readcache import ReadCache
from repro.worm.cache import READ_CACHE_POLICIES
from repro.worm.storage import CachedWormStore


#: Longest term (in UTF-8 bytes) the WORM lexicon log retains.
MAX_LEXICON_TERM_BYTES = 128


def lexicon_key(term: str) -> str:
    """Canonical lexicon form of ``term``: at most
    :data:`MAX_LEXICON_TERM_BYTES` of UTF-8, cut at a character boundary.

    The engine stores this form both in memory and on WORM and looks
    terms up through it, so the term→id→posting-list mapping survives
    restarts byte for byte.  A raw byte-level slice (the historical
    behaviour) could split a multi-byte character, which made the WORM
    log undecodable on reopen and silently desynchronized long terms.
    """
    raw = term.encode("utf-8")
    if len(raw) <= MAX_LEXICON_TERM_BYTES:
        return term
    cut = MAX_LEXICON_TERM_BYTES
    # Back up over UTF-8 continuation bytes (0b10xxxxxx) so the cut
    # never lands inside a multi-byte character.
    while cut > 0 and (raw[cut] & 0xC0) == 0x80:
        cut -= 1
    return raw[:cut].decode("utf-8")


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`TrustworthySearchEngine`.

    Attributes
    ----------
    num_lists:
        Number of merged posting lists ``M``; size this to the storage
        cache (``cache_bytes / block_size``, Section 3.4).  The paper's
        validated configuration uses 32,768 lists for a 128 MB cache.
    block_size:
        WORM block size in bytes (paper: 8 KB).
    cache_blocks:
        Storage-cache capacity in blocks (``None`` = unbounded; use a
        finite value to reproduce insert-I/O behaviour).
    branching:
        Jump-index branching factor ``B`` (paper's sweet spot: 32);
        ``None`` disables jump indexes (the merged-lists-only scheme).
    ranking:
        ``"bm25"`` or ``"cosine"``.
    verify_results:
        Cross-check every result against the stored documents before
        returning (the Section 5 stuffing countermeasure).  Costs one
        document read per result.
    read_cache:
        Enable the three-tier read-path cache
        (:mod:`repro.search.readcache`): decoded posting blocks, query
        results (length-fingerprint invalidated), and a jump-pointer
        memo.  Session-scoped acceleration only — it never shapes
        committed WORM state, so archives created with and without it
        are byte-identical.
    cache_policy:
        Eviction policy for the read cache: ``"lru"``, ``"2q"``, or
        ``"slru"`` (see :mod:`repro.worm.cache`).
    read_cache_mb:
        Approximate in-memory budget of the decoded-block tier, in MB.
    tail_max_docs:
        Enable write–read decoupling: ingest lands in a mutable
        in-memory tail (:mod:`repro.core.tail`) that auto-seals into an
        immutable WORM segment once it holds this many documents.
        ``None`` (the default) keeps the legacy synchronous path —
        postings append to the merged WORM lists inside the ingest call.
    seal_strategy:
        Term→list assignment each sealed segment pins: ``"uniform"``
        (hash everything), ``"popular"`` (this tail's top terms get
        unmerged lists), or ``"epoch"`` (the *previous* epoch's top
        terms — the Section 3.3 epoch-driven adaptation).
    seal_popular_terms:
        How many popular terms get unmerged lists under ``"popular"`` /
        ``"epoch"``.
    merge_at_segments:
        Run an online merge once this many segments are live (the
        background merger's trigger); ``None`` disables auto-merging.
    """

    num_lists: int = 1024
    block_size: int = 8192
    cache_blocks: Optional[int] = None
    branching: Optional[int] = 32
    ranking: str = "bm25"
    verify_results: bool = False
    #: Term-immutability horizon in commit-time units (None = forever).
    retention_period: Optional[int] = None
    read_cache: bool = False
    cache_policy: str = "lru"
    read_cache_mb: float = 8.0
    tail_max_docs: Optional[int] = None
    seal_strategy: str = "uniform"
    seal_popular_terms: int = 8
    merge_at_segments: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.num_lists <= 0:
            raise WorkloadError(f"num_lists must be positive, got {self.num_lists}")
        if self.ranking not in ("bm25", "cosine"):
            raise WorkloadError(f"unknown ranking '{self.ranking}'")
        if self.cache_policy not in READ_CACHE_POLICIES:
            raise WorkloadError(
                f"unknown cache policy '{self.cache_policy}'; choose from "
                f"{sorted(READ_CACHE_POLICIES)}"
            )
        if self.read_cache_mb <= 0:
            raise WorkloadError(
                f"read_cache_mb must be positive, got {self.read_cache_mb}"
            )
        if self.tail_max_docs is not None and self.tail_max_docs < 1:
            raise WorkloadError(
                f"tail_max_docs must be >= 1, got {self.tail_max_docs}"
            )
        validate_seal_strategy(self.seal_strategy)
        if self.seal_popular_terms < 0:
            raise WorkloadError(
                f"seal_popular_terms must be >= 0, got "
                f"{self.seal_popular_terms}"
            )
        if self.merge_at_segments is not None and self.merge_at_segments < 2:
            raise WorkloadError(
                f"merge_at_segments must be >= 2, got "
                f"{self.merge_at_segments}"
            )


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: int
    score: float


class TrustworthySearchEngine:
    """Keyword search over records retained on WORM storage.

    Parameters
    ----------
    config:
        Engine configuration; defaults give a jump-indexed, uniformly
        merged index.
    merge_strategy:
        Optional custom merging strategy (e.g.
        :class:`~repro.core.merge.PopularUnmergedMerge` built from learned
        statistics).  Must be able to assign any term ID the lexicon may
        grow to; the default is uniform hashing, which can.
    store:
        Bring-your-own WORM store (shared with other components);
        otherwise the engine creates one per the config.
    metrics:
        Metrics registry to instrument into (shared across shards by the
        sharded engine).  Defaults to a fresh
        :class:`~repro.observability.metrics.MetricsRegistry`; pass a
        :class:`~repro.observability.metrics.NullMetricsRegistry` to run
        unmetered.
    metrics_labels:
        Base labels stamped on every series this engine emits (the
        sharded engine passes ``{"shard": "<i>"}``).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        merge_strategy: Optional[MergeStrategy] = None,
        store: Optional[CachedWormStore] = None,
        metrics=None,
        metrics_labels: Optional[Mapping[str, object]] = None,
    ):
        self.config = config or EngineConfig()
        self.store = store or CachedWormStore(
            self.config.cache_blocks, block_size=self.config.block_size
        )
        #: Session-scoped read-path cache (None when disabled).  Never
        #: persisted: a restarted engine starts cold and re-verifies.
        self.read_cache = (
            ReadCache(
                policy=self.config.cache_policy,
                capacity_mb=self.config.read_cache_mb,
            )
            if self.config.read_cache
            else None
        )
        self._init_metrics(metrics, metrics_labels)
        self.analyzer = Analyzer()
        self.documents = DocumentStore(self.store)
        self.stats = CollectionStats()
        self._scorer = (
            BM25Scorer(self.stats)
            if self.config.ranking == "bm25"
            else CosineScorer(self.stats)
        )
        self._merge = merge_strategy or UniformHashMerge(self.config.num_lists)
        self._assignment: Optional[TermAssignment] = None
        self.time_index = CommitTimeIndex(self.store, "engine/commit-times")
        # Lexicon: term string <-> engine-local term ID (order of first
        # appearance).  Rebuildable from the WORM lexicon log.  The
        # hashed-prefix layer accelerates ordered probes (prefix
        # expansion) without slowing exact resolution.
        self._lexicon = PrefixHashLexicon()
        self._lexicon_file = self.store.ensure_file("engine/lexicon")
        # Physical lists are created lazily as terms first hash into them.
        self._lists: Dict[int, PostingList] = {}
        self._jumps: Dict[int, BlockJumpIndex] = {}
        #: Per-term posting counts (join-ordering hints; derived data).
        self._term_postings: Dict[int, int] = {}
        self._clock = 0
        self._incidents = None
        self._retention = None
        # Write–read decoupling (tail mode): the mutable tail, the
        # sealed-segment manifest, and the attached live segments.  All
        # lazily populated; ``None``/empty on the legacy path.
        self._tail = (
            MutableTailIndex()
            if self.config.tail_max_docs is not None
            else None
        )
        self._manifest: Optional[SegmentManifest] = None
        self._segments: List[SealedSegment] = []
        #: Term popularity of the previously sealed epoch (feeds the
        #: "epoch" seal strategy; session-scoped, empty after restart).
        self._epoch_counts: Dict[int, int] = {}
        if self._tail is not None:
            # Eagerly create/replay the manifest so the first seal after
            # a reopen is the only writer: restart itself stays a pure
            # read (important for crash-recovery determinism).
            self._load_manifest()
        if self._lexicon_file.num_blocks or len(self.time_index):
            self._restore_state()

    def _restore_state(self) -> None:
        """Rebuild application-memory state from WORM (restart recovery).

        Everything rebuilt here is *derived* data: the lexicon log, the
        commit-time log, the posting lists, and the documents themselves
        all live on WORM (the posting lists and commit log verified their
        own invariants when reattached).  Ranking statistics and posting
        counts are recomputed from the stored documents; documents
        ingested with ``store_text=False`` contribute document counts but
        no term statistics, which only affects ranking quality.
        """
        payload = b"".join(
            self.store.peek_block("engine/lexicon", b)
            for b in range(self._lexicon_file.num_blocks)
        )
        for raw in payload.split(b"\n"):
            if raw:
                self._lexicon.add(raw.decode("utf-8"))
        commit_times = {}
        for commit_time, doc_id in self.time_index.iter_records():
            commit_times[doc_id] = commit_time
        self.documents.restore(len(commit_times), commit_times)
        self._clock = self.time_index.last_commit_time + 1
        sealed_through = -1
        if self._tail is not None:
            # The tail itself is derived data: every document above the
            # sealed horizon re-enters it from the journaled document +
            # commit-time logs.  A disposed never-sealed document simply
            # does not re-enter — its absence is explained by the
            # disposition log.
            self._load_manifest()
            sealed_through = (
                self._manifest.sealed_through
                if self._manifest is not None
                else -1
            )
        for doc_id in range(len(commit_times)):
            if not self.documents.exists(doc_id):
                continue
            text = self.documents.get(doc_id).text
            term_counts = self.analyzer.term_counts(text)
            id_counts = {}
            for t, c in term_counts.items():
                tid = self.term_id(t)
                if tid is not None:
                    id_counts[tid] = c
            if id_counts:
                self.stats.add_document(doc_id, id_counts)
                for term_id in id_counts:
                    self._term_postings[term_id] = (
                        self._term_postings.get(term_id, 0) + 1
                    )
            if self._tail is not None and doc_id > sealed_through:
                self._tail.add(
                    doc_id,
                    {
                        tid: pack_term_tf(tid, count)
                        for tid, count in id_counts.items()
                    },
                )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _init_metrics(
        self, metrics, metrics_labels: Optional[Mapping[str, object]]
    ) -> None:
        """Register this engine's metric families and bind hot-path series."""
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_labels: Dict[str, str] = {
            k: str(v) for k, v in (metrics_labels or {}).items()
        }
        self._metrics_on = bool(self.metrics.enabled)
        base = tuple(self._metrics_labels)
        bound = self._metrics_labels
        m = self.metrics
        self._m_queries = m.counter(
            "repro_queries_total",
            "Queries executed, by retrieval mode",
            labels=base + ("mode",),
        )
        self._m_stage = m.histogram(
            "repro_query_stage_seconds",
            "Latency of each query stage",
            labels=base + ("stage",),
        )
        self._m_list_blocks = m.counter(
            "repro_join_list_blocks_total",
            "Blocks read by conjunctive joins, per physical list",
            labels=base + ("list_id",),
        )
        self._c_docs = m.counter(
            "repro_documents_indexed_total",
            "Documents committed to WORM and indexed",
            labels=base,
        ).labels(**bound)
        self._c_postings = m.counter(
            "repro_postings_appended_total",
            "Posting entries appended to merged lists",
            labels=base,
        ).labels(**bound)
        self._c_seeks = m.counter(
            "repro_join_seeks_total",
            "Cursor FindGeq seeks performed by conjunctive joins",
            labels=base,
        ).labels(**bound)
        self._c_join_blocks = m.counter(
            "repro_join_blocks_read_total",
            "Distinct posting-list blocks read by conjunctive joins",
            labels=base,
        ).labels(**bound)
        self._c_follows = m.counter(
            "repro_jump_pointer_follows_total",
            "Jump pointers followed (and certified) by joins",
            labels=base,
        ).labels(**bound)
        self._c_scan_entries = m.counter(
            "repro_scan_entries_total",
            "Posting entries scanned on the disjunctive path",
            labels=base,
        ).labels(**bound)
        self._c_decode_blocks = m.counter(
            "repro_decode_blocks_total",
            "Posting blocks batch-decoded into doc-id/term-code columns",
            labels=base,
        ).labels(**bound)
        self._c_decode_postings = m.counter(
            "repro_decode_postings_total",
            "Posting entries batch-decoded into columns",
            labels=base,
        ).labels(**bound)
        #: Pair attached to every posting list this engine opens, so any
        #: block decode — query, audit, restore — lands in the series.
        self._decode_series = (self._c_decode_blocks, self._c_decode_postings)
        self._m_ingest = m.histogram(
            "repro_ingest_seconds",
            "Per-document commit+index latency",
            labels=base,
        ).labels(**bound)
        self._c_seals = m.counter(
            "repro_tail_seals_total",
            "Tail freezes into immutable WORM segments",
            labels=base,
        ).labels(**bound)
        self._c_merges = m.counter(
            "repro_segment_merges_total",
            "Online merges of sealed WORM segments",
            labels=base,
        ).labels(**bound)
        self._g_tail_docs = m.gauge(
            "repro_tail_docs",
            "Documents in the mutable in-memory tail",
            labels=base,
        ).labels(**bound)
        self._g_segments = m.gauge(
            "repro_segments_live",
            "Live sealed WORM segments",
            labels=base,
        ).labels(**bound)
        self._stage_bound: Dict[str, object] = {}
        self._mode_bound: Dict[str, object] = {}
        self._list_blocks_bound: Dict[int, object] = {}

    def _stage_series(self, stage: str):
        series = self._stage_bound.get(stage)
        if series is None:
            series = self._m_stage.labels(**self._metrics_labels, stage=stage)
            self._stage_bound[stage] = series
        return series

    def _mode_series(self, mode: str):
        series = self._mode_bound.get(mode)
        if series is None:
            series = self._m_queries.labels(**self._metrics_labels, mode=mode)
            self._mode_bound[mode] = series
        return series

    def _list_blocks_series(self, list_id: int):
        series = self._list_blocks_bound.get(list_id)
        if series is None:
            series = self._m_list_blocks.labels(
                **self._metrics_labels, list_id=list_id
            )
            self._list_blocks_bound[list_id] = series
        return series

    @contextmanager
    def _stage(self, name: str, trace, **attrs):
        """Time one query stage into the stage histogram and, when a
        :class:`~repro.observability.trace.QueryTrace` is attached, a
        span.  Yields the span (``None`` without a trace) so stages can
        :meth:`~repro.observability.trace.Span.note` their micro-costs.
        """
        span = trace.begin(name, **attrs) if trace is not None else None
        timed = self._metrics_on
        start = perf_counter() if timed else 0.0
        try:
            yield span
        finally:
            if timed:
                self._stage_series(name).observe(perf_counter() - start)
            if span is not None:
                trace.finish(span)

    # ------------------------------------------------------------------
    # lexicon
    # ------------------------------------------------------------------
    def term_id(self, term: str, *, create: bool = False) -> Optional[int]:
        """Engine-local term ID for ``term`` (optionally allocating one).

        Terms are canonicalized via :func:`lexicon_key` before lookup and
        allocation, so the in-memory lexicon, the WORM lexicon log, and
        query-time lookups always agree on one byte sequence per term.
        """
        term = lexicon_key(term)
        existing = self._lexicon.lookup(term)
        if existing is not None or not create:
            return existing
        if "\n" in term:
            raise WorkloadError(
                f"term {term!r} contains a newline; the WORM lexicon log "
                f"is newline-delimited and cannot represent it"
            )
        if len(self._lexicon) > MAX_TERM_ID_WITH_TF:
            raise WorkloadError("lexicon exceeded the 24-bit term-id space")
        term_id = self._lexicon.add(term)
        self._lexicon_file.append_record(term.encode("utf-8") + b"\n")
        return term_id

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct terms seen so far."""
        return len(self._lexicon)

    def term_text(self, term_id: int) -> str:
        """The term string behind an engine-local term ID."""
        return self._lexicon.term(term_id)

    def terms_with_prefix(
        self, prefix: str, *, limit: Optional[int] = None
    ) -> List[str]:
        """Vocabulary terms starting with ``prefix``, lexicographically.

        Served by the lexicon's hashed-prefix layer: one hash probe to
        the prefix bucket plus a short comparison tail, instead of a
        binary search over the whole vocabulary.  The prefix is
        canonicalized the same way terms are, so callers can pass raw
        user input.
        """
        return self._lexicon.terms_with_prefix(lexicon_key(prefix), limit=limit)

    # ------------------------------------------------------------------
    # physical lists
    # ------------------------------------------------------------------
    def _list_id_for(self, term_id: int) -> int:
        # Strategies are stable under universe growth (see MergeStrategy),
        # so the engine re-derives a larger assignment as the lexicon
        # grows; terms already indexed keep their physical lists.
        if self._assignment is None or self._assignment.num_terms <= term_id:
            fixed = self._merge.universe_size()
            if fixed is not None:
                if term_id >= fixed:
                    raise WorkloadError(
                        f"term id {term_id} exceeds the fixed universe "
                        f"({fixed} terms) the merge strategy was built for"
                    )
                universe = fixed
            else:
                universe = max(1024, 2 * (term_id + 1))
            self._assignment = self._merge.assign(universe)
        return self._assignment.list_for(term_id)

    def _physical_list(self, list_id: int) -> Tuple[PostingList, Optional[BlockJumpIndex]]:
        posting_list = self._lists.get(list_id)
        if posting_list is None:
            name = f"engine/pl/{list_id:08d}"
            if self.config.branching is not None:
                jump = BlockJumpIndex.create(
                    self.store, name, branching=self.config.branching
                )
                posting_list = jump.posting_list
                self._jumps[list_id] = jump
                if self.read_cache is not None:
                    jump.memo = self.read_cache.memo_for(name)
            else:
                posting_list = PostingList(self.store, name)
            if self.read_cache is not None:
                # Attached after construction, so restart recovery
                # (inside PostingList.__init__) always read the device.
                posting_list.read_cache = self.read_cache.blocks
            if self._metrics_on:
                posting_list.decode_metrics = self._decode_series
            self._lists[list_id] = posting_list
        return posting_list, self._jumps.get(list_id)

    def _existing_list(self, list_id: int) -> Optional[PostingList]:
        """The physical list if it has ever been written (else ``None``).

        Query paths use this so that a reopened engine lazily re-attaches
        lists committed in previous sessions.
        """
        posting_list = self._lists.get(list_id)
        if posting_list is None and self.store.device.exists(
            f"engine/pl/{list_id:08d}"
        ):
            posting_list, _ = self._physical_list(list_id)
        return posting_list

    # ------------------------------------------------------------------
    # write–read decoupling: tail, sealer, online merger
    # ------------------------------------------------------------------
    @property
    def tail_enabled(self) -> bool:
        """Whether this engine runs the decoupled tail/segment path."""
        return self._tail is not None

    def _require_tail(self) -> MutableTailIndex:
        if self._tail is None:
            raise WorkloadError(
                "tail mode is disabled; construct the engine with "
                "EngineConfig(tail_max_docs=...) to seal and merge "
                "segments"
            )
        return self._tail

    def _load_manifest(self) -> None:
        if self._manifest is None:
            self._manifest = SegmentManifest(self.store)
            self._segments = [
                self._attach_segment(info) for info in self._manifest.live()
            ]

    def _attach_segment(self, info: SegmentInfo) -> SealedSegment:
        return SealedSegment(
            self.store,
            info,
            branching=self.config.branching,
            read_cache=self.read_cache,
            decode_metrics=self._decode_series if self._metrics_on else None,
        )

    def index_view(self) -> Tuple[Tuple[SealedSegment, ...], TailSnapshot]:
        """A snapshot-consistent ``(sealed segments, tail)`` read view.

        Constant-time: a tuple copy of the live-segment list plus a
        :class:`~repro.core.tail.TailSnapshot`.  The view keeps serving
        the pre-event state across later seals and merges (segments are
        immutable and the tail copies-on-seal); isolation from
        concurrent *adds* relies on the single-writer lock discipline —
        see :mod:`repro.core.tail`.
        """
        tail = self._require_tail()
        self._load_manifest()
        return tuple(self._segments), tail.snapshot()

    def _choose_assignment(
        self, counts: Dict[int, int]
    ) -> Tuple[int, Tuple[int, ...]]:
        """Pick the ``(strategy, popular_terms)`` a new segment pins.

        ``counts`` is the term-popularity evidence of the postings being
        sealed/merged; the ``"epoch"`` policy instead uses the previous
        epoch's counts (:func:`repro.core.epochs.learn_popular_terms`'s
        adaptation idea applied online), falling back to uniform while
        no prior epoch exists.
        """
        policy = self.config.seal_strategy
        if policy == "uniform":
            return STRATEGY_UNIFORM, ()
        source = counts if policy == "popular" else self._epoch_counts
        popular = choose_popular_terms(
            source, self.config.seal_popular_terms, self.config.num_lists
        )
        if not popular:
            return STRATEGY_UNIFORM, ()
        return STRATEGY_POPULAR, popular

    def _maybe_seal(self) -> None:
        if (
            self._tail is not None
            and self._tail.doc_count >= self.config.tail_max_docs
        ):
            self.seal_tail()

    def seal_tail(self) -> Optional[int]:
        """Freeze the tail into an immutable WORM segment.

        Writes the segment's merged posting lists first and commits the
        manifest record last — the atomic step; a crash before it leaves
        only orphan files that recovery ignores and never overwrites.
        Returns the new segment number (``None`` on an empty tail).
        Auto-merges afterwards when ``merge_at_segments`` is reached.
        """
        tail = self._require_tail()
        if tail.doc_count == 0:
            return None
        self._load_manifest()
        counts = tail.term_counts()
        strategy, popular = self._choose_assignment(counts)
        seg_no = next_seg_no(self.store.device, self._manifest)
        write_segment_lists(
            self.store,
            seg_no,
            tail.postings_by_term(),
            num_lists=self.config.num_lists,
            strategy=strategy,
            popular_terms=popular,
            branching=self.config.branching,
        )
        info = SegmentInfo(
            seg_no=seg_no,
            first_doc=tail.first_doc,
            last_doc=tail.last_doc,
            doc_count=tail.doc_count,
            num_lists=self.config.num_lists,
            strategy=strategy,
            popular_terms=popular,
        )
        self._manifest.append(info)
        self._segments.append(self._attach_segment(info))
        self._epoch_counts = counts
        tail.clear()
        if self._metrics_on:
            self._c_seals.inc()
            self._g_tail_docs.set(0)
            self._g_segments.set(len(self._segments))
        if (
            self.config.merge_at_segments is not None
            and len(self._segments) >= self.config.merge_at_segments
        ):
            self.merge_segments()
        return seg_no

    def merge_segments(self) -> Optional[int]:
        """Merge every live segment into one, online (Section 3.3).

        Gathers postings per term across the live segments (doc order is
        preserved — segment doc ranges are disjoint and ascending),
        re-chooses the term→list assignment from the combined
        popularity, writes the merged segment, and retires the inputs
        with a single manifest append.  Readers holding an older
        :meth:`index_view` keep their segments; the retired segments'
        read-cache entries are dropped.  Returns the merged segment
        number (``None`` with fewer than two live segments).
        """
        self._require_tail()
        self._load_manifest()
        if len(self._segments) < 2:
            return None
        merged: Dict[int, List[Tuple[int, int]]] = {}
        for segment in self._segments:
            for term_id, entries in segment.postings_by_term().items():
                merged.setdefault(term_id, []).extend(entries)
        counts = {t: len(entries) for t, entries in merged.items()}
        strategy, popular = self._choose_assignment(counts)
        seg_no = next_seg_no(self.store.device, self._manifest)
        write_segment_lists(
            self.store,
            seg_no,
            merged,
            num_lists=self.config.num_lists,
            strategy=strategy,
            popular_terms=popular,
            branching=self.config.branching,
        )
        inputs = [segment.info for segment in self._segments]
        info = SegmentInfo(
            seg_no=seg_no,
            first_doc=inputs[0].first_doc,
            last_doc=inputs[-1].last_doc,
            doc_count=sum(i.doc_count for i in inputs),
            num_lists=self.config.num_lists,
            strategy=strategy,
            popular_terms=popular,
            inputs=tuple(i.seg_no for i in inputs),
        )
        retired_files = [
            name
            for segment in self._segments
            for name in segment.list_file_names()
        ]
        self._manifest.append(info)
        self._segments = [self._attach_segment(info)]
        if self.read_cache is not None:
            # Segment-retirement hook: the retired lists can never be
            # read again, so their decoded blocks and jump memos are
            # dead weight.
            self.read_cache.forget_lists(retired_files)
        if self._metrics_on:
            self._c_merges.inc()
            self._g_segments.set(len(self._segments))
        return seg_no

    def iter_segments(self) -> List[SealedSegment]:
        """The live sealed segments, ascending doc order (for audits)."""
        if self._tail is None:
            return []
        self._load_manifest()
        return list(self._segments)

    def segments_info(self) -> Dict[str, object]:
        """Operational view of the tail/segment lifecycle (CLI)."""
        if self._tail is None:
            return {"tail_enabled": False}
        self._load_manifest()
        return {
            "tail_enabled": True,
            "tail_docs": self._tail.doc_count,
            "tail_postings": self._tail.posting_count,
            "tail_generation": self._tail.generation,
            "manifest_records": self._manifest.record_count,
            "segments": [s.info.as_dict() for s in self._segments],
        }

    # ------------------------------------------------------------------
    # ingest — commit + index as one action (Section 2.1)
    # ------------------------------------------------------------------
    def index_document(
        self, text: str, *, commit_time: Optional[int] = None
    ) -> int:
        """Commit a document to WORM and index it, atomically from the
        caller's perspective; returns the assigned document ID."""
        term_counts = self.analyzer.term_counts(text)
        return self._ingest(text, term_counts, commit_time)

    def index_term_counts(
        self,
        term_counts: Mapping[str, int],
        *,
        commit_time: Optional[int] = None,
        store_text: bool = True,
    ) -> int:
        """Index pre-analyzed term counts (bulk/synthetic ingest path)."""
        text = (
            " ".join(
                word
                for term, count in sorted(term_counts.items())
                for word in [term] * count
            )
            if store_text
            else ""
        )
        return self._ingest(text, dict(term_counts), commit_time)

    def _ingest(
        self,
        text: str,
        term_counts: Dict[str, int],
        commit_time: Optional[int],
    ) -> int:
        start = perf_counter() if self._metrics_on else 0.0
        if commit_time is None:
            commit_time = self._clock
        if commit_time < self._clock:
            raise WorkloadError(
                f"commit_time {commit_time} precedes the engine clock "
                f"{self._clock}; commits are monotonic"
            )
        self._clock = commit_time + 1
        retention_until = (
            commit_time + self.config.retention_period
            if self.config.retention_period is not None
            else None
        )
        doc_id = self.documents.commit(
            text, commit_time=commit_time, retention_until=retention_until
        )
        id_counts: Dict[int, int] = {}
        for term, count in term_counts.items():
            id_counts[self.term_id(term, create=True)] = count
        # Index updates happen now, before returning: real-time index
        # update, no buffering window.  Tail mode registers the postings
        # in memory (the document, commit-time, and lexicon logs above
        # already journaled everything the tail is rebuilt from);
        # otherwise they append to the merged WORM lists synchronously.
        if self._tail is not None:
            self._tail.add(
                doc_id,
                {
                    term_id: pack_term_tf(term_id, id_counts[term_id])
                    for term_id in sorted(id_counts)
                },
            )
            for term_id in id_counts:
                self._term_postings[term_id] = (
                    self._term_postings.get(term_id, 0) + 1
                )
        else:
            for term_id in sorted(id_counts):
                # Postings carry the paper's "keyword frequency"
                # metadata, packed into the code field's spare byte.
                code = pack_term_tf(term_id, id_counts[term_id])
                list_id = self._list_id_for(term_id)
                posting_list, jump = self._physical_list(list_id)
                if jump is not None:
                    jump.insert(doc_id, term_code=code)
                else:
                    posting_list.append(doc_id, term_code=code)
                self._term_postings[term_id] = (
                    self._term_postings.get(term_id, 0) + 1
                )
        self.time_index.record_commit(doc_id, commit_time)
        self.stats.add_document(doc_id, id_counts)
        if self._metrics_on:
            self._c_docs.inc()
            self._c_postings.inc(len(id_counts))
            if self._tail is not None:
                self._g_tail_docs.set(self._tail.doc_count)
            self._m_ingest.observe(perf_counter() - start)
        self._maybe_seal()
        return doc_id

    def index_batch(
        self,
        texts: Iterable[str],
        *,
        commit_times: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Commit and index a batch of documents in one amortized pass.

        Semantically equivalent to calling :meth:`index_document` once
        per text, in order — same document IDs, same commit times, same
        committed WORM state, and (with an unbounded storage cache) the
        exact same :class:`~repro.worm.iostats.IoStats` counts, so the
        Figure-2/8(b) accounting semantics are preserved.  What batching
        buys is amortization: posting entries are appended one pass per
        merged list, so per-list lookups (physical-list resolution, jump
        state) happen once per list instead of once per posting, and a
        bounded cache sees consecutive appends to each tail block instead
        of interleaved ones (fewer evictions under cache pressure).

        Each document is still committed to WORM *and* indexed inside
        this one call — batching groups work, it does not introduce the
        buffering window Section 2.3 forbids (the call does not return
        until every document in the batch is queryable).
        """
        texts = list(texts)
        if commit_times is None:
            commit_times = list(range(self._clock, self._clock + len(texts)))
        else:
            commit_times = list(commit_times)
            if len(commit_times) != len(texts):
                raise WorkloadError(
                    f"got {len(texts)} texts but {len(commit_times)} "
                    f"commit times"
                )
        doc_ids: List[int] = []
        postings_by_list: Dict[int, List[Tuple[int, int]]] = {}
        total_postings = 0
        for text, commit_time in zip(texts, commit_times):
            if commit_time < self._clock:
                raise WorkloadError(
                    f"commit_time {commit_time} precedes the engine clock "
                    f"{self._clock}; commits are monotonic"
                )
            self._clock = commit_time + 1
            retention_until = (
                commit_time + self.config.retention_period
                if self.config.retention_period is not None
                else None
            )
            term_counts = self.analyzer.term_counts(text)
            doc_id = self.documents.commit(
                text, commit_time=commit_time, retention_until=retention_until
            )
            id_counts: Dict[int, int] = {}
            for term, count in term_counts.items():
                id_counts[self.term_id(term, create=True)] = count
            if self._tail is not None:
                self._tail.add(
                    doc_id,
                    {
                        term_id: pack_term_tf(term_id, id_counts[term_id])
                        for term_id in sorted(id_counts)
                    },
                )
                total_postings += len(id_counts)
                for term_id in id_counts:
                    self._term_postings[term_id] = (
                        self._term_postings.get(term_id, 0) + 1
                    )
            else:
                for term_id in sorted(id_counts):
                    code = pack_term_tf(term_id, id_counts[term_id])
                    list_id = self._list_id_for(term_id)
                    postings_by_list.setdefault(list_id, []).append(
                        (doc_id, code)
                    )
                    self._term_postings[term_id] = (
                        self._term_postings.get(term_id, 0) + 1
                    )
            self.time_index.record_commit(doc_id, commit_time)
            self.stats.add_document(doc_id, id_counts)
            doc_ids.append(doc_id)
        # One pass per merged list; per-list entries are in ascending
        # doc-id order by construction, so monotonicity invariants (and
        # jump-pointer placement) are identical to per-document ingest.
        for list_id in sorted(postings_by_list):
            posting_list, jump = self._physical_list(list_id)
            if jump is not None:
                jump.insert_many(postings_by_list[list_id])
            else:
                posting_list.append_many(postings_by_list[list_id])
        if self._metrics_on:
            self._c_docs.inc(len(doc_ids))
            self._c_postings.inc(
                total_postings
                + sum(len(entries) for entries in postings_by_list.values())
            )
            if self._tail is not None:
                self._g_tail_docs.set(self._tail.doc_count)
        self._maybe_seal()
        return doc_ids

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def search(
        self,
        query,
        *,
        top_k: int = 10,
        verify: Optional[bool] = None,
        trace=None,
    ) -> List[SearchResult]:
        """Run a query and return ranked results.

        ``query`` may be a raw string (parsed with the engine's analyzer,
        see :func:`repro.search.query.parse_query`) or a prepared
        :class:`~repro.search.query.Query`.  Pass a
        :class:`~repro.observability.trace.QueryTrace` as ``trace`` to
        record per-stage spans (parse → resolve → join/scan → rank →
        verify) with their micro-costs.
        """
        with self._stage("parse", trace) as span:
            if isinstance(query, str):
                query = parse_query(query, analyzer=self.analyzer)
            if span is not None:
                span.note(
                    terms=len(query.terms), mode=query.mode.name.lower()
                )
        candidates = self.match(query, trace=trace)
        with self._stage("rank", trace, candidates=len(candidates)) as span:
            # Bulk scoring: one pass over all candidates with per-call
            # idf/length-norm memoization — bit-identical to scoring
            # each document individually (see BM25Scorer.score_candidates).
            results = [
                SearchResult(doc_id=d, score=s)
                for d, s in self._scorer.score_candidates(candidates)
            ]
            results.sort(key=lambda r: (-r.score, r.doc_id))
            results = results[:top_k]
            if span is not None:
                span.note(scorer="bulk", scored=len(candidates))
        if self._metrics_on:
            self._mode_series(query.mode.name.lower()).inc()
        should_verify = self.config.verify_results if verify is None else verify
        if should_verify:
            with self._stage("verify", trace, results=len(results)) as span:
                report = self.verify_results(
                    [r.doc_id for r in results], query.terms
                )
                if span is not None:
                    span.note(ok=report.ok)
            if not report.ok:
                # Surface the stuffing attempt; the caller (Bob) decides
                # what to do with the evidence.
                from repro.errors import TamperDetectedError

                raise TamperDetectedError(
                    f"result verification failed: {report.violations}",
                    location=f"query {query.terms!r}",
                    invariant="result-document-consistency",
                )
        return results

    def match(self, query, *, trace=None) -> Dict[int, Dict[int, int]]:
        """Matching documents with their per-term-ID frequency maps.

        Runs the query's retrieval phase only: posting-list scanning or
        conjunctive joining, the commit-time constraint, and the
        disposition filter.  Scoring and top-k selection are left to the
        caller — :meth:`search` ranks locally, while a sharded executor
        re-ranks the union of per-shard matches under aggregated
        collection statistics.

        Returns a mapping of ``doc_id -> {term_id: tf}`` where term IDs
        are engine-local (translate via :meth:`term_text`).

        With the read cache enabled, the whole retrieval phase is served
        from the query-result tier when the per-term list-length
        fingerprint proves nothing it depends on has changed (see
        :class:`~repro.search.readcache.QueryResultCache`).  Ranking and
        result verification always re-run on top of cached candidates.
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        cache = self.read_cache
        cache_key = fingerprint = None
        if cache is not None:
            cache_key = self._query_cache_key(query)
            fingerprint = self._query_fingerprint(query)
            with self._stage("cache", trace) as span:
                cached = cache.results.get(cache_key, fingerprint)
                if span is not None:
                    span.note(
                        hit=cached is not None, policy=cache.policy_name
                    )
            if cached is not None:
                # Defensive copy: callers may mutate the mapping.
                return {d: dict(tf) for d, tf in cached.items()}
        if query.mode is QueryMode.ALL:
            if self._tail is not None:
                doc_ids = self._conjunctive_tail(query.terms, trace=trace)
            else:
                doc_ids, _ = self.conjunctive_doc_ids(
                    query.terms, trace=trace
                )
            candidates = {
                d: self._result_term_freqs(d, query.terms) for d in doc_ids
            }
        elif self._tail is not None:
            candidates = self._disjunctive_tail(query.terms, trace=trace)
        else:
            candidates = self._disjunctive_candidates(query.terms, trace=trace)
        retention = self._retention_if_any()
        has_filters = query.time_range is not None or (
            retention is not None and len(retention)
        )
        if has_filters:
            with self._stage(
                "filter", trace, candidates=len(candidates)
            ) as span:
                if query.time_range is not None:
                    allowed = set(
                        self.time_index.docs_in_range(*query.time_range)
                    )
                    candidates = {
                        d: tf for d, tf in candidates.items() if d in allowed
                    }
                if retention is not None and len(retention):
                    candidates = {
                        d: tf
                        for d, tf in candidates.items()
                        if not retention.is_disposed(d)
                    }
                if span is not None:
                    span.note(kept=len(candidates))
        if cache is not None:
            cache.results.put(
                cache_key,
                fingerprint,
                {d: dict(tf) for d, tf in candidates.items()},
            )
        return candidates

    def _query_cache_key(self, query) -> Tuple:
        """Normalized result-cache key: mode, deduped sorted terms, range."""
        terms = tuple(sorted(dict.fromkeys(query.terms)))
        return (query.mode.value, terms, query.time_range)

    def _query_fingerprint(self, query) -> Tuple:
        """Everything the candidate set depends on, as list lengths.

        For each distinct term: its physical list and that list's
        current length (``(-1, -1)`` while the term has no postings, so
        its later appearance invalidates).  Appends are the only way any
        posting list or the commit-time log changes, and a document that
        could alter this query's candidates necessarily appends to one
        of these lists; the disposition-log length covers disposals.

        Tail mode fingerprints per-term *posting counts* instead (the
        union over segments + tail — a new matching document increments
        its terms' counts wherever it lands) plus the tail generation,
        which conservatively invalidates cached results across seals —
        the segment-seal invalidation hook of the result tier.
        """
        parts: List[int] = []
        if self._tail is not None:
            for term in sorted(dict.fromkeys(query.terms)):
                term_id = self.term_id(term)
                if term_id is None:
                    parts.extend((-1, -1))
                else:
                    parts.extend(
                        (term_id, self._term_postings.get(term_id, 0))
                    )
            retention = self._retention_if_any()
            parts.append(len(retention) if retention is not None else 0)
            parts.append(self._tail.generation)
            return tuple(parts)
        for term in sorted(dict.fromkeys(query.terms)):
            term_id = self.term_id(term)
            posting_list = (
                self._existing_list(self._list_id_for(term_id))
                if term_id is not None
                else None
            )
            if posting_list is None:
                parts.extend((-1, -1))
            else:
                parts.extend((self._list_id_for(term_id), len(posting_list)))
        retention = self._retention_if_any()
        parts.append(len(retention) if retention is not None else 0)
        return tuple(parts)

    def read_cache_stats(self) -> Optional[Dict[str, object]]:
        """Per-tier read-cache counters (``None`` when caching is off)."""
        return self.read_cache.as_dict() if self.read_cache is not None else None

    def _disjunctive_candidates(
        self, terms: Sequence[str], *, trace=None
    ) -> Dict[int, Dict[int, int]]:
        """Scan the merged lists of the query terms; collect tf per doc."""
        with self._stage("resolve", trace, terms=len(terms)) as span:
            term_ids = [self.term_id(t) for t in terms]
            present = [t for t in term_ids if t is not None]
            wanted = set(present)
            list_ids = sorted({self._list_id_for(t) for t in present})
            if span is not None:
                span.note(present=len(present), lists=len(list_ids))
        candidates: Dict[int, Dict[int, int]] = {}
        use_cache = self.read_cache is not None
        block_stats = self.read_cache.blocks.stats if use_cache else None
        hits_before = block_stats.hits if block_stats is not None else 0
        with self._stage("scan", trace, lists=len(list_ids)) as span:
            entries = 0
            for list_id in list_ids:
                posting_list = self._existing_list(list_id)
                if posting_list is None:
                    continue
                # Columnar scan: per block, two flat integer columns
                # instead of a Posting object per entry (decode and
                # unpack are batch/inline work, no allocations).
                for docs, codes in posting_list.scan_columns(
                    counted=False, cached=use_cache
                ):
                    entries += len(docs)
                    for doc_id, code in zip(docs, codes):
                        term_id = code & MAX_TERM_ID_WITH_TF
                        if term_id in wanted:
                            tf_map = candidates.setdefault(doc_id, {})
                            tf = code >> 24
                            if tf < 1:
                                tf = 1
                            if tf > tf_map.get(term_id, 0):
                                tf_map[term_id] = tf
            if self._metrics_on:
                self._c_scan_entries.inc(entries)
            if span is not None:
                span.note(entries_scanned=entries, candidates=len(candidates))
                if block_stats is not None:
                    span.note(block_cache_hits=block_stats.hits - hits_before)
        return candidates

    def _disjunctive_tail(
        self, terms: Sequence[str], *, trace=None
    ) -> Dict[int, Dict[int, int]]:
        """Tail-mode disjunctive retrieval over a snapshot view.

        Scans each live segment's wanted lists, then the tail's
        postings; max-merging per ``(doc, term)`` makes the result
        byte-identical to one legacy scan over a single merged list
        family (each posting exists exactly once across segments+tail).
        """
        segments, tail = self.index_view()
        with self._stage("resolve", trace, terms=len(terms)) as span:
            term_ids = [self.term_id(t) for t in terms]
            present = [t for t in term_ids if t is not None]
            if span is not None:
                span.note(present=len(present), segments=len(segments))
        candidates: Dict[int, Dict[int, int]] = {}
        use_cache = self.read_cache is not None
        with self._stage("scan", trace, segments=len(segments)) as span:
            entries = 0
            for segment in segments:
                entries += segment.collect_candidates(
                    present, candidates, cached=use_cache
                )
            entries += tail.collect_candidates(present, candidates)
            if self._metrics_on:
                self._c_scan_entries.inc(entries)
            if span is not None:
                span.note(entries_scanned=entries, candidates=len(candidates))
        return candidates

    def _conjunctive_tail(
        self, terms: Sequence[str], *, trace=None
    ) -> List[int]:
        """Tail-mode conjunctive retrieval over a snapshot view.

        Joins each segment independently and concatenates — segment doc
        ranges are disjoint and ascending, so the concatenation is the
        same ascending doc-id list one global zigzag join would produce
        — then appends the tail's matches.
        """
        segments, tail = self.index_view()
        with self._stage(
            "resolve", trace, terms=len(dict.fromkeys(terms))
        ) as span:
            term_ids: List[int] = []
            missing = False
            for term in dict.fromkeys(terms):
                term_id = self.term_id(term)
                if term_id is None:
                    missing = True
                    break
                term_ids.append(term_id)
            if span is not None:
                span.note(segments=len(segments), missing_term=missing)
        if missing or not term_ids:
            return []
        doc_ids: List[int] = []
        with self._stage("join", trace, cursors=len(term_ids)) as span:
            seeks = blocks = 0
            for segment in segments:
                matched, s, b = segment.conjunctive_doc_ids(term_ids)
                doc_ids.extend(matched)
                seeks += s
                blocks += b
            doc_ids.extend(tail.docs_with_all(term_ids))
            if self._metrics_on:
                self._c_seeks.inc(seeks)
                self._c_join_blocks.inc(blocks)
            if span is not None:
                span.note(
                    matches=len(doc_ids), seeks=seeks, blocks_read=blocks
                )
        return doc_ids

    def _conjunctive_cursors(
        self, terms: Sequence[str]
    ) -> Optional[Tuple[List[MergedListCursor], List[int]]]:
        """Term-filtered cursors (and their list IDs) for the distinct
        query terms, or ``None`` when any term short-circuits the join —
        a document cannot contain a term that has no postings.
        """
        term_ids = []
        for term in dict.fromkeys(terms):
            term_id = self.term_id(term)
            if term_id is None:
                return None
            term_ids.append(term_id)
        cursors: List[MergedListCursor] = []
        list_ids: List[int] = []
        for term_id in term_ids:
            list_id = self._list_id_for(term_id)
            posting_list = self._existing_list(list_id)
            if posting_list is None or not len(posting_list):
                return None
            cursors.append(
                MergedListCursor(
                    posting_list,
                    term_code=term_id,
                    jump_index=self._jumps.get(list_id),
                    length_hint=self._term_postings.get(term_id, 0),
                )
            )
            list_ids.append(list_id)
        return cursors, list_ids

    def conjunctive_doc_ids(
        self, terms: Sequence[str], *, trace=None
    ) -> Tuple[List[int], int]:
        """Documents containing *all* terms, plus blocks read (Section 4).

        Absent terms short-circuit to an empty result.  The zigzag join's
        micro-costs — seeks, blocks read (total and per physical list),
        jump-pointer follows — feed the metrics registry and, when a
        trace is attached, the ``join`` span's attributes.
        """
        with self._stage("resolve", trace, terms=len(dict.fromkeys(terms))) as span:
            built = self._conjunctive_cursors(terms)
            if span is not None and built is not None:
                span.note(lists=len(set(built[1])))
        if built is None:
            return [], 0
        cursors, list_ids = built
        with self._stage("join", trace, cursors=len(cursors)) as span:
            jumps: List[BlockJumpIndex] = []
            seen_jumps = set()
            for list_id in list_ids:
                jump = self._jumps.get(list_id)
                if jump is not None and id(jump) not in seen_jumps:
                    seen_jumps.add(id(jump))
                    jumps.append(jump)
            follows_before = sum(j.pointers_followed for j in jumps)
            doc_ids, blocks = conjunctive_join(cursors)
            seeks = sum(c.seeks for c in cursors)
            follows = sum(j.pointers_followed for j in jumps) - follows_before
            if self._metrics_on:
                self._c_seeks.inc(seeks)
                self._c_join_blocks.inc(blocks)
                self._c_follows.inc(follows)
                for list_id, cursor in zip(list_ids, cursors):
                    self._list_blocks_series(list_id).inc(cursor.blocks_read())
            if span is not None:
                span.note(
                    matches=len(doc_ids),
                    seeks=seeks,
                    blocks_read=blocks,
                    jump_follows=follows,
                )
                if self.read_cache is not None:
                    span.note(
                        block_cache_hits=sum(c.cache_hits() for c in cursors)
                    )
        return doc_ids, blocks

    def _result_term_freqs(
        self, doc_id: int, terms: Sequence[str]
    ) -> Dict[int, int]:
        """Presence map (tf=1) for scoring conjunctive results."""
        return {
            self.term_id(t): 1 for t in terms if self.term_id(t) is not None
        }

    # ------------------------------------------------------------------
    # operational statistics
    # ------------------------------------------------------------------
    def archive_stats(self) -> Dict[str, object]:
        """Operational summary of the archive's committed state.

        Attaches every committed posting list first so counts cover the
        whole device, not just lists this session has touched.
        """
        for name in self.store.device.list_files():
            if name.startswith("engine/pl/"):
                self._existing_list(int(name.rsplit("/", 1)[1]))
        postings = sum(len(pl) for pl in self._lists.values())
        blocks = sum(pl.num_blocks for pl in self._lists.values())
        pointers = sum(j.pointers_set for j in self._jumps.values())
        lists = len(self._lists)
        tail_docs = tail_postings = segments_live = manifest_records = 0
        if self._tail is not None:
            self._load_manifest()
            tail_docs = self._tail.doc_count
            tail_postings = self._tail.posting_count
            segments_live = len(self._segments)
            manifest_records = self._manifest.record_count
            for segment in self._segments:
                seg_lists = list(segment.attached_lists())
                lists += len(seg_lists)
                postings += sum(len(pl) for pl, _ in seg_lists)
                blocks += sum(pl.num_blocks for pl, _ in seg_lists)
            postings += tail_postings
        retention = self._retention_if_any()
        if self._incidents is not None or self.store.device.exists(
            "engine/incidents"
        ):
            incidents = len(self.incidents)
        else:
            incidents = 0
        return {
            "documents": len(self.documents),
            "vocabulary": self.vocabulary_size,
            "physical_lists": lists,
            "postings": postings,
            "posting_blocks": blocks,
            "jump_pointers": pointers,
            "jump_index": (
                f"B={self.config.branching}" if self.config.branching else "off"
            ),
            "commit_log_records": len(self.time_index),
            "incidents": incidents,
            "dispositions": len(retention) if retention is not None else 0,
            "tail_docs": tail_docs,
            "tail_postings": tail_postings,
            "segments_live": segments_live,
            "manifest_records": manifest_records,
            "device_bytes": self.store.device.total_bytes(),
        }

    # ------------------------------------------------------------------
    # incident handling (Section 6 future work, implemented)
    # ------------------------------------------------------------------
    @property
    def incidents(self):
        """The engine's WORM-resident incident log (created on first use)."""
        if self._incidents is None:
            from repro.core.incidents import IncidentLog

            self._incidents = IncidentLog(self.store, "engine/incidents")
        return self._incidents

    @property
    def retention(self):
        """The engine's retention manager (created on first use)."""
        if self._retention is None:
            from repro.core.retention import RetentionManager

            self._retention = RetentionManager(
                self.store, log_name="engine/dispositions"
            )
        return self._retention

    def _retention_if_any(self):
        """The retention manager iff dispositions were ever committed.

        Query paths call this so that a reopened engine notices an
        existing disposition log without eagerly creating one.
        """
        if self._retention is None and self.store.device.exists(
            "engine/dispositions"
        ):
            return self.retention
        return self._retention

    def dispose_expired(self, *, now: Optional[int] = None):
        """Dispose of documents past their retention horizon (Section 2.2).

        Deletes each expired document from WORM and records the
        disposition in the append-only log, so that dangling index
        entries remain explainable to auditors.  Returns the disposed
        document IDs.
        """
        return self.retention.dispose_expired(
            self.documents, now=self._clock if now is None else now
        )

    def search_with_incident_handling(
        self, query, *, top_k: int = 10, trace=None
    ):
        """Search, verify, and *handle* any detected stuffing.

        Returns ``(results, report)``: results are verified against the
        WORM documents with known-bad (quarantined) IDs excluded, and the
        report lists what verification found this time.  Newly exposed
        fabricated IDs are quarantined via the incident log — they cannot
        be removed from WORM, so the engine appends durable knowledge
        that they are malicious instead (the paper's Section 6
        future-work question, answered the WORM way).
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        raw = self.search(
            query,
            top_k=top_k + len(self.incidents.quarantined_doc_ids),
            verify=False,
            trace=trace,
        )
        candidates = [
            r for r in raw if not self.incidents.is_quarantined(r.doc_id)
        ]
        with self._stage("verify", trace, results=len(candidates)) as span:
            report = self.verify_results(
                [r.doc_id for r in candidates], query.terms
            )
            if span is not None:
                span.note(ok=report.ok)
        if not report.ok:
            retention = self._retention_if_any()

            def fabricated(doc_id: int) -> bool:
                if self.documents.exists(doc_id):
                    return False
                return retention is None or not retention.is_disposed(doc_id)

            def mismatched(doc_id: int) -> bool:
                if not self.documents.exists(doc_id):
                    return False
                text = self.documents.get(doc_id).text
                counts = self.analyzer.term_counts(text)
                return not any(t in counts for t in query.terms)

            # Fabricated IDs are quarantined globally (they reference no
            # document anywhere); keyword-mismatch plants are real
            # documents stuffed into the wrong list, so they are excluded
            # from *this* result only — they remain legitimate answers to
            # other queries.
            fabricated_ids = [r.doc_id for r in candidates if fabricated(r.doc_id)]
            mismatch_ids = {r.doc_id for r in candidates if mismatched(r.doc_id)}
            self.incidents.record(
                "posting-stuffing",
                location=f"query {query.terms!r}",
                invariant="result-document-consistency",
                description="; ".join(report.violations),
                quarantine_doc_ids=fabricated_ids,
            )
            candidates = [
                r
                for r in candidates
                if not self.incidents.is_quarantined(r.doc_id)
                and r.doc_id not in mismatch_ids
            ]
        return candidates[:top_k], report

    # ------------------------------------------------------------------
    # verification (Section 5)
    # ------------------------------------------------------------------
    def verify_results(
        self, doc_ids: Sequence[int], terms: Sequence[str]
    ) -> AuditReport:
        """Cross-check results against WORM-resident documents."""
        retention = self._retention_if_any()

        def exists(doc_id: int) -> bool:
            if self.documents.exists(doc_id):
                return True
            # A legitimately disposed document is not stuffing: its
            # absence is explained by an auditable WORM record.
            return retention is not None and retention.is_disposed(doc_id)

        def contains(doc_id: int, term: str) -> bool:
            if not self.documents.exists(doc_id):
                # Disposed: content gone, disposition record vouches.
                return True
            text = self.documents.get(doc_id).text
            return term in self.analyzer.term_counts(text)

        return audit_search_result(
            doc_ids, list(terms), document_exists=exists, document_contains=contains
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrustworthySearchEngine(docs={len(self.documents)}, "
            f"terms={self.vocabulary_size}, lists={len(self._lists)}, "
            f"jump={'B=' + str(self.config.branching) if self.config.branching else 'off'})"
        )
