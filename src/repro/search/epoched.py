"""Epoch-adaptive search engine (Sections 3.3 and 4.5, combined).

Where term/query statistics are not stable enough to learn once, the
paper divides time into epochs, keeps a separate index per epoch, and
adapts each new epoch's configuration from the statistics observed in
the previous one:

* the *merging strategy* — popular terms of the last epoch get unmerged
  lists (Section 3.3);
* whether to build a *jump index* — "one can use the epoch scheme ...
  to learn the query pattern in one epoch and use it to decide whether
  to include a jump index for the next epoch" (Section 4.5): jump
  indexes pay off when many-keyword conjunctive queries dominate.

:class:`EpochedSearchEngine` implements exactly that on top of
per-epoch :class:`~repro.search.engine.TrustworthySearchEngine`
instances sharing one WORM device.  Queries fan out over all epochs
(documents never move); commit-time-constrained queries touch only the
overlapping epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.merge import PopularUnmergedMerge
from repro.errors import WorkloadError
from repro.search.engine import EngineConfig, SearchResult, TrustworthySearchEngine
from repro.search.query import Query, parse_query
from repro.worm.storage import CachedWormStore


@dataclass
class EpochPolicy:
    """Adaptation knobs applied when a new epoch opens.

    Attributes
    ----------
    docs_per_epoch:
        Epoch length in documents.
    unmerged_popular_terms:
        How many of the previous epoch's most-queried terms receive
        dedicated (unmerged) posting lists; 0 keeps uniform merging.
    conjunctive_share_for_jump:
        If at least this fraction of the previous epoch's queries had
        ``min_terms_for_jump`` or more keywords, the next epoch builds
        jump indexes.
    min_terms_for_jump:
        Keyword-count threshold defining a "many-keyword" query.
    branching:
        Jump-index branching factor used when jump indexes are enabled.
    """

    docs_per_epoch: int = 1000
    unmerged_popular_terms: int = 64
    conjunctive_share_for_jump: float = 0.25
    min_terms_for_jump: int = 4
    branching: int = 32

    def __post_init__(self) -> None:
        if self.docs_per_epoch <= 0:
            raise WorkloadError(
                f"docs_per_epoch must be positive, got {self.docs_per_epoch}"
            )
        if not 0 <= self.conjunctive_share_for_jump <= 1:
            raise WorkloadError("conjunctive_share_for_jump must be in [0, 1]")


@dataclass
class _EpochState:
    """One epoch's engine plus the statistics observed while it was live."""

    epoch_no: int
    engine: TrustworthySearchEngine
    first_doc_id: int
    last_doc_id: int = -1
    doc_count: int = 0
    #: term string -> queries containing it, observed during this epoch
    observed_qi: Dict[str, int] = None
    many_keyword_queries: int = 0
    total_queries: int = 0

    def __post_init__(self) -> None:
        if self.observed_qi is None:
            self.observed_qi = {}

    @property
    def uses_jump_index(self) -> bool:
        """Whether this epoch's engine carries jump indexes."""
        return self.engine.config.branching is not None


class EpochedSearchEngine:
    """Search engine that re-tunes itself at every epoch boundary.

    Parameters
    ----------
    base_config:
        Configuration template for per-epoch engines; ``branching`` and
        the merge strategy are overridden per epoch by the policy.
    policy:
        The adaptation policy.
    store:
        Shared WORM store (one device for all epochs).
    """

    def __init__(
        self,
        base_config: Optional[EngineConfig] = None,
        *,
        policy: Optional[EpochPolicy] = None,
        store: Optional[CachedWormStore] = None,
    ):
        self.base_config = base_config or EngineConfig()
        self.policy = policy or EpochPolicy()
        self.store = store or CachedWormStore(
            self.base_config.cache_blocks, block_size=self.base_config.block_size
        )
        self.epochs: List[_EpochState] = []
        self._next_doc_id = 0
        self._clock = 0
        self._open_epoch()

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------
    @property
    def current(self) -> _EpochState:
        """The active epoch."""
        return self.epochs[-1]

    def _feasible_branching(self, branching: Optional[int]) -> Optional[int]:
        """Largest feasible B <= ``branching`` for the configured blocks.

        The Section 4.5 block budget (``8p + 4(B-1)log_B(N) <= L``) caps
        how many pointers a block can carry; a policy asking for B=32 on
        small blocks falls back to the largest B that fits (or no jump
        index at all).
        """
        from repro.core import space as space_model
        from repro.errors import IndexError_

        b = branching
        while b is not None and b >= 2:
            try:
                space_model.postings_per_block(self.base_config.block_size, b)
                return b
            except IndexError_:
                b //= 2
        return None

    def _decide_jump_index(self, previous: Optional[_EpochState]) -> Optional[int]:
        """Section 4.5's rule: jump index iff many-keyword queries dominate."""
        if previous is None or previous.total_queries == 0:
            return self._feasible_branching(self.base_config.branching)
        share = previous.many_keyword_queries / previous.total_queries
        if share >= self.policy.conjunctive_share_for_jump:
            return self._feasible_branching(self.policy.branching)
        return None

    def _decide_merge_strategy(self, previous: Optional[_EpochState], engine_ref):
        """Section 3.3's rule: unmerge last epoch's most-queried terms.

        The popular set is learned as term *strings* (epochs have their
        own lexicons); the strategy is built lazily once the new engine
        has allocated IDs for them.
        """
        if (
            previous is None
            or not previous.observed_qi
            or self.policy.unmerged_popular_terms == 0
        ):
            return None
        k = min(
            self.policy.unmerged_popular_terms,
            self.base_config.num_lists // 2,
            len(previous.observed_qi),
        )
        popular_terms = sorted(
            previous.observed_qi, key=previous.observed_qi.get, reverse=True
        )[:k]
        # Pre-allocate lexicon IDs so the popular set is stable for the
        # whole epoch.
        popular_ids = [engine_ref.term_id(t, create=True) for t in popular_terms]
        return PopularUnmergedMerge(self.base_config.num_lists, popular_ids)

    def _open_epoch(self) -> None:
        previous = self.epochs[-1] if self.epochs else None
        branching = self._decide_jump_index(previous)
        config = EngineConfig(
            num_lists=self.base_config.num_lists,
            block_size=self.base_config.block_size,
            cache_blocks=self.base_config.cache_blocks,
            branching=branching,
            ranking=self.base_config.ranking,
            verify_results=self.base_config.verify_results,
        )
        epoch_no = len(self.epochs)
        engine = TrustworthySearchEngine(
            config,
            store=_PrefixedStoreView(self.store, f"epoch{epoch_no:04d}/"),
        )
        strategy = self._decide_merge_strategy(previous, engine)
        if strategy is not None:
            engine._merge = strategy
            engine._assignment = None
        self.epochs.append(
            _EpochState(
                epoch_no=epoch_no,
                engine=engine,
                first_doc_id=self._next_doc_id,
            )
        )

    def new_epoch(self) -> int:
        """Force an epoch boundary; returns the new epoch number."""
        self._open_epoch()
        return self.current.epoch_no

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def index_document(self, text: str, *, commit_time: Optional[int] = None) -> int:
        """Commit + index one document; auto-rolls epochs by the policy."""
        if self.current.doc_count >= self.policy.docs_per_epoch:
            self._open_epoch()
        if commit_time is None:
            commit_time = self._clock
        self._clock = max(self._clock, commit_time) + 1
        epoch = self.current
        # Per-epoch engines assign their own local IDs; the global ID is
        # the concatenation order, which both stay monotonic in.
        local_id = epoch.engine.index_document(text, commit_time=commit_time)
        doc_id = epoch.first_doc_id + local_id
        epoch.last_doc_id = doc_id
        epoch.doc_count += 1
        self._next_doc_id = doc_id + 1
        return doc_id

    # ------------------------------------------------------------------
    # query fan-out
    # ------------------------------------------------------------------
    def search(self, query, *, top_k: int = 10) -> List[SearchResult]:
        """Query across epochs; results merged by score.

        Time-constrained queries consult only the epochs whose commit
        windows overlap the range (Section 3.3).
        """
        if isinstance(query, str):
            query = parse_query(query)
        self._record_query(query)
        merged: List[SearchResult] = []
        for epoch in self._epochs_for(query):
            local = Query(terms=query.terms, mode=query.mode, time_range=query.time_range)
            for result in epoch.engine.search(local, top_k=top_k):
                merged.append(
                    SearchResult(
                        doc_id=epoch.first_doc_id + result.doc_id,
                        score=result.score,
                    )
                )
        merged.sort(key=lambda r: (-r.score, r.doc_id))
        return merged[:top_k]

    def _epochs_for(self, query: Query) -> List[_EpochState]:
        if query.time_range is None:
            return [e for e in self.epochs if e.doc_count]
        t_start, t_end = query.time_range
        out = []
        for epoch in self.epochs:
            if not epoch.doc_count:
                continue
            first = epoch.engine.time_index.first_commit_geq(0)
            last = epoch.engine.time_index.last_commit_time
            if first is None or last < t_start or first > t_end:
                continue
            out.append(epoch)
        return out

    def _record_query(self, query: Query) -> None:
        epoch = self.current
        epoch.total_queries += 1
        if query.num_terms >= self.policy.min_terms_for_jump:
            epoch.many_keyword_queries += 1
        for term in query.terms:
            epoch.observed_qi[term] = epoch.observed_qi.get(term, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochedSearchEngine(epochs={len(self.epochs)}, "
            f"docs={self._next_doc_id})"
        )


class _PrefixedStoreView:
    """A namespaced view of a shared WORM store.

    Per-epoch engines use fixed internal file names ('engine/lexicon',
    ...); prefixing isolates epochs on one device without copying any of
    the store machinery.  Only the name-taking methods are wrapped.
    """

    def __init__(self, store: CachedWormStore, prefix: str):
        self._store = store
        self._prefix = prefix
        self.device = _PrefixedDeviceView(store.device, prefix)

    @property
    def block_size(self) -> int:
        return self._store.block_size

    @property
    def io(self):
        return self._store.io

    @property
    def cache(self):
        return self._store.cache

    def create_file(self, name, **kwargs):
        return self._store.create_file(self._prefix + name, **kwargs)

    def open_file(self, name):
        return self._store.open_file(self._prefix + name)

    def ensure_file(self, name, **kwargs):
        return self._store.ensure_file(self._prefix + name, **kwargs)

    def append_record(self, name, payload, **kwargs):
        return self._store.append_record(self._prefix + name, payload, **kwargs)

    def read_block(self, name, block_no):
        return self._store.read_block(self._prefix + name, block_no)

    def set_slot(self, name, block_no, slot_no, value):
        return self._store.set_slot(self._prefix + name, block_no, slot_no, value)

    def get_slot(self, name, block_no, slot_no):
        return self._store.get_slot(self._prefix + name, block_no, slot_no)

    def peek_block(self, name, block_no):
        return self._store.peek_block(self._prefix + name, block_no)

    def peek_slot(self, name, block_no, slot_no):
        return self._store.peek_slot(self._prefix + name, block_no, slot_no)


class _PrefixedDeviceView:
    """Namespace view of the WORM device (existence checks and opens)."""

    def __init__(self, device, prefix: str):
        self._device = device
        self._prefix = prefix

    def exists(self, name: str) -> bool:
        return self._device.exists(self._prefix + name)

    def open_file(self, name: str):
        return self._device.open_file(self._prefix + name)

    def create_file(self, name: str, **kwargs):
        return self._device.create_file(self._prefix + name, **kwargs)

    def list_files(self):
        return [
            name[len(self._prefix):]
            for name in self._device.list_files()
            if name.startswith(self._prefix)
        ]
