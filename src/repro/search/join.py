"""Zigzag and scan-merge joins over seekable posting cursors (Figure 5).

Conjunctive queries intersect posting lists.  The zigzag join exploits
that posting lists are sorted by document ID: each side repeatedly seeks
(``FindGeq``) to the other side's current ID, skipping runs that cannot
participate in the result.  With an auxiliary index (jump index here;
B+ tree in the untrusted baseline) the seeks are logarithmic; without
one they degrade to scans — both are represented as cursor adapters so
the join code and the blocks-read accounting are shared.

The paper's trust guarantee rides on the seek primitive: Proposition 3
says a jump-index FindGeq can never skip a committed ID, so
:func:`zigzag` over jump-indexed cursors can never omit a document that
is in both lists.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from repro.baselines.bplus_tree import BPlusTree
from repro.core.block_jump_index import BlockJumpIndex
from repro.core.posting import MAX_TERM_ID_WITH_TF
from repro.core.posting_list import PostingList
from repro.errors import QueryError


class MergedListCursor:
    """Seekable cursor over one (merged) posting list, term-filtered.

    With a :class:`~repro.core.block_jump_index.BlockJumpIndex` attached,
    seeks navigate jump pointers; otherwise they scan sequentially (the
    merged-no-jump-index configuration of the Section 6 comparison).
    """

    def __init__(
        self,
        posting_list: PostingList,
        *,
        term_code: Optional[int] = None,
        jump_index: Optional[BlockJumpIndex] = None,
        length_hint: Optional[int] = None,
    ):
        self.jump_index = jump_index
        self._cursor = posting_list.cursor(term_code=term_code)
        self._length_hint = length_hint
        #: Seek operations performed (the paper's FindGeq count).
        self.seeks = 0

    def doc(self) -> Optional[int]:
        """Current document ID (``None`` when exhausted)."""
        if self._cursor.exhausted:
            return None
        return self._cursor.current_doc

    def seek_geq(self, k: int) -> Optional[int]:
        """Advance to the first matching posting with ID >= ``k``."""
        if self._cursor.exhausted:
            return None
        self.seeks += 1
        if self.jump_index is not None:
            self.jump_index.find_geq(self._cursor, k)
        else:
            self._cursor.seek_geq_sequential(k)
        return self.doc()

    def estimated_length(self) -> int:
        """Join-ordering hint: filtered length if known, else list length."""
        if self._length_hint is not None:
            return self._length_hint
        return len(self._cursor.posting_list)

    def blocks_read(self) -> int:
        """Distinct posting-list blocks this cursor loaded."""
        return len(self._cursor.blocks_read)

    def cache_hits(self) -> int:
        """Block loads served by the shared read cache (0 cache-off)."""
        return self._cursor.cache_hits


class TreeCursor:
    """Seekable cursor over a B+-tree-indexed (unmerged) posting list."""

    def __init__(self, tree: BPlusTree):
        self.tree = tree
        self._visited: set = set()
        self._current: Optional[int] = tree.find_geq(0, visited=self._visited)
        #: Seek operations performed (the paper's FindGeq count).
        self.seeks = 0

    def doc(self) -> Optional[int]:
        """Current document ID (``None`` when exhausted)."""
        return self._current

    def seek_geq(self, k: int) -> Optional[int]:
        """Advance to the first key >= ``k``."""
        if self._current is not None and self._current >= k:
            return self._current
        self.seeks += 1
        self._current = self.tree.find_geq(k, visited=self._visited)
        return self._current

    def estimated_length(self) -> int:
        """Join-ordering hint."""
        return len(self.tree)

    def blocks_read(self) -> int:
        """Distinct tree nodes visited."""
        return len(self._visited)


class MemoryCursor:
    """Seekable cursor over an in-memory sorted ID list (zero I/O).

    Used for intermediate results of k-way joins: the partial
    intersection is already in query-processor memory.
    """

    def __init__(self, doc_ids: Sequence[int]):
        self._ids = list(doc_ids)
        self._pos = 0
        #: Seek operations performed (kept for cursor-interface parity).
        self.seeks = 0

    def doc(self) -> Optional[int]:
        """Current document ID (``None`` when exhausted)."""
        if self._pos >= len(self._ids):
            return None
        return self._ids[self._pos]

    def seek_geq(self, k: int) -> Optional[int]:
        """Advance to the first ID >= ``k`` by binary search (in memory)."""
        self.seeks += 1
        self._pos = bisect_left(self._ids, k, lo=self._pos)
        return self.doc()

    def estimated_length(self) -> int:
        """Join-ordering hint."""
        return len(self._ids)

    def blocks_read(self) -> int:
        """Memory cursors read no blocks."""
        return 0


def zigzag(cursor1, cursor2) -> List[int]:
    """The ZIGZAG algorithm of Figure 5 over two seekable cursors."""
    out: List[int] = []
    top1 = cursor1.doc()
    top2 = cursor2.doc()
    while top1 is not None and top2 is not None:
        if top1 < top2:
            top1 = cursor1.seek_geq(top2)
        elif top2 < top1:
            top2 = cursor2.seek_geq(top1)
        else:
            out.append(top1)
            top1 = cursor1.seek_geq(top1 + 1)
            top2 = cursor2.seek_geq(top2 + 1)
    return out


def conjunctive_join(cursors: Sequence) -> Tuple[List[int], int]:
    """K-way conjunctive join, shortest lists first (Section 4.5).

    "Multi-keyword queries are answered with zigzag joins of the posting
    lists, starting with the shortest two lists"; each partial result is
    then zigzag-joined with the next shortest list.  Returns the matching
    document IDs and the total distinct blocks read across all cursors.
    """
    if not cursors:
        raise QueryError("conjunctive join needs at least one cursor")
    ordered = sorted(cursors, key=lambda c: c.estimated_length())
    if len(ordered) == 1:
        only = ordered[0]
        out: List[int] = []
        doc = only.doc()
        while doc is not None:
            out.append(doc)
            doc = only.seek_geq(doc + 1)
        return out, only.blocks_read()
    result = zigzag(ordered[0], ordered[1])
    for cursor in ordered[2:]:
        if not result:
            break
        result = zigzag(MemoryCursor(result), cursor)
    blocks = sum(c.blocks_read() for c in ordered)
    return result, blocks


class RawMergedCursor:
    """Doc-ID-granularity cursor over a merged list (paper join semantics).

    The paper's engine zigzags over the merged lists *unfiltered* — every
    posting participates in the stepping, and term membership is checked
    only when document IDs match ("to remove false positives").  With
    uniform merging this makes 2-keyword joins approximate a scan of both
    lists (Section 4.5's explanation for the ~10% two-keyword slowdown),
    which the filtered :class:`MergedListCursor` would avoid; the
    simulation harness uses this cursor for figure fidelity.
    """

    def __init__(
        self,
        posting_list: PostingList,
        wanted_codes: Sequence[int],
        *,
        jump_index: Optional[BlockJumpIndex] = None,
    ):
        self.jump_index = jump_index
        self.wanted_codes = set(int(c) & MAX_TERM_ID_WITH_TF for c in wanted_codes)
        self._cursor = posting_list.cursor()
        #: Seek operations performed (the paper's FindGeq count).
        self.seeks = 0

    def doc(self) -> Optional[int]:
        """Current document ID (``None`` when exhausted)."""
        if self._cursor.exhausted:
            return None
        return self._cursor.current_doc

    def seek_geq(self, k: int) -> Optional[int]:
        """Advance to the first posting (any term) with ID >= ``k``."""
        if self._cursor.exhausted:
            return None
        self.seeks += 1
        if self.jump_index is not None:
            self.jump_index.find_geq(self._cursor, k)
        else:
            self._cursor.seek_geq_sequential(k)
        return self.doc()

    def doc_has_codes(self, doc_id: int) -> bool:
        """Whether the entries for ``doc_id`` cover all wanted term codes.

        The cursor stands at the first entry for ``doc_id``; all entries
        for one document are adjacent (appended together at ingest), so a
        forward scan over the run suffices.  Blocks touched are charged
        to this cursor like any other read.
        """
        remaining = set(self.wanted_codes)
        block_no, index = self._cursor.position
        posting_list = self._cursor.posting_list
        while remaining and block_no < posting_list.num_blocks:
            entries = self._cursor.peek_block(block_no)
            docs, codes = entries.doc_ids, entries.term_codes
            while index < len(docs):
                if docs[index] != doc_id:
                    return not remaining
                remaining.discard(codes[index] & MAX_TERM_ID_WITH_TF)
                index += 1
            block_no += 1
            index = 0
        return not remaining

    def estimated_length(self) -> int:
        """Join-ordering hint: the raw merged-list length."""
        return len(self._cursor.posting_list)

    def blocks_read(self) -> int:
        """Distinct posting-list blocks this cursor loaded."""
        return len(self._cursor.blocks_read)

    def cache_hits(self) -> int:
        """Block loads served by the shared read cache (0 cache-off)."""
        return self._cursor.cache_hits


def paper_conjunctive_join(cursors: Sequence[RawMergedCursor]) -> Tuple[List[int], int]:
    """K-way conjunctive join with the paper's unfiltered staged semantics.

    ``cursors`` must be one :class:`RawMergedCursor` per *distinct*
    physical list, each carrying the term codes the query needs from that
    list.  As in Section 4.5, the two shortest lists are zigzag-joined
    first (approximately a scan when they are of equal size); each
    subsequent list is then probed with the shrinking partial result,
    where the jump index's FindGeq pays off — this staging is what makes
    the speedup grow with the number of keywords.
    """
    if not cursors:
        raise QueryError("conjunctive join needs at least one cursor")
    ordered = sorted(cursors, key=lambda c: c.estimated_length())
    if len(ordered) == 1:
        only = ordered[0]
        result: List[int] = []
        doc = only.doc()
        while doc is not None:
            if only.doc_has_codes(doc):
                result.append(doc)
            doc = only.seek_geq(doc + 1)
        return result, only.blocks_read()
    first, second = ordered[0], ordered[1]
    result = _raw_zigzag_verified(first, second)
    for cursor in ordered[2:]:
        if not result:
            break
        result = [
            doc
            for doc in result
            if cursor.seek_geq(doc) == doc and cursor.doc_has_codes(doc)
        ]
    blocks = sum(c.blocks_read() for c in ordered)
    return result, blocks


def _raw_zigzag_verified(c1: RawMergedCursor, c2: RawMergedCursor) -> List[int]:
    """Zigzag two raw merged cursors, verifying term codes at matches."""
    out: List[int] = []
    top1, top2 = c1.doc(), c2.doc()
    while top1 is not None and top2 is not None:
        if top1 < top2:
            top1 = c1.seek_geq(top2)
        elif top2 < top1:
            top2 = c2.seek_geq(top1)
        else:
            if c1.doc_has_codes(top1) and c2.doc_has_codes(top1):
                out.append(top1)
            top1 = c1.seek_geq(top1 + 1)
            top2 = c2.seek_geq(top2 + 1)
    return out


def sequential_conjunctive(
    posting_lists: Sequence[PostingList],
    term_codes: Sequence[Optional[int]],
) -> Tuple[List[int], int]:
    """Scan-merge conjunctive join baseline (no auxiliary index).

    Reads every block of every involved list once — the denominator^-1 of
    Figure 8(c)'s speedup metric ("the number of blocks read when no jump
    index is kept, using a sequential scan-merge join").
    """
    if len(posting_lists) != len(term_codes):
        raise QueryError("posting_lists and term_codes must align")
    if not posting_lists:
        raise QueryError("conjunctive join needs at least one list")
    blocks = 0
    id_sets: List[set] = []
    for posting_list, code in zip(posting_lists, term_codes):
        blocks += posting_list.num_blocks
        ids = {
            p.doc_id
            for p in posting_list.scan(counted=False)
            if code is None or p.term_code == code
        }
        id_sets.append(ids)
    result = set.intersection(*id_sets) if id_sets else set()
    return sorted(result), blocks
