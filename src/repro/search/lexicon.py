"""Hash-accelerated ordered term lexicon (Wormhole-style).

The engine's lexicon needs two access patterns:

* **exact resolution** (every query term, every ingest token):
  term → id.  A hash map answers this in O(1) and stays authoritative.
* **ordered lookup** (prefix expansion, vocabulary inspection):
  "first term >= key", "all terms starting with p".  The classical
  structure is a sorted array with binary search — O(log V) *string*
  comparisons per probe, each touching up to the full key length.

Wormhole (PAPERS.md) observes that most of those comparisons only
re-derive the key's neighbourhood, which a hash of the key's prefix
already pins down.  This module applies the idea at the scale this
engine needs: a **hashed prefix table** maps each fixed-length term
prefix to the contiguous slice of the sorted term array sharing it, so
an ordered probe is one O(1) hash lookup plus a bisect over a short
comparison tail (the handful of terms sharing the prefix) instead of a
descent over the whole vocabulary.  Probes whose prefix is absent fall
back to one bisect over the (much smaller) sorted prefix list to find
the successor bucket.

The ordered layer is derived data, rebuilt lazily: appends (ingest)
only touch the hash tier, and the first ordered probe after a batch of
appends re-sorts — near-sorted input, so the rebuild is cheap — and
re-buckets.  Nothing here is trusted: the lexicon is rebuildable from
the WORM lexicon log, exactly as before.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

#: Default hashed-prefix length.  Short enough that real vocabularies
#: share prefixes (buckets stay non-trivial), long enough that buckets
#: stay short: 4 characters splits a million-term English vocabulary
#: into tails of a few dozen terms.
DEFAULT_PREFIX_LEN = 4


class PrefixHashLexicon:
    """Term ↔ id lexicon with a hashed-prefix ordered layer.

    IDs are dense and assigned in first-appearance order (the engine's
    historical contract).  ``lookup``/``add`` are the hash tier;
    ``find_geq``/``terms_with_prefix``/``iter_ordered`` are the ordered
    tier.
    """

    def __init__(self, *, prefix_len: int = DEFAULT_PREFIX_LEN):
        if prefix_len < 1:
            raise ValueError(f"prefix_len must be >= 1, got {prefix_len}")
        self.prefix_len = prefix_len
        self._ids: Dict[str, int] = {}
        self._terms: List[str] = []
        # Ordered layer (lazily rebuilt): terms sorted lexicographically,
        # the sorted list of distinct prefixes, and prefix -> (lo, hi)
        # half-open slices into the sorted term list.
        self._sorted: List[str] = []
        self._prefixes: List[str] = []
        self._buckets: Dict[str, Tuple[int, int]] = {}
        #: How many terms the ordered layer has folded in; appends beyond
        #: this count mark the layer stale.
        self._ordered_count = 0
        #: Ordered-layer rebuilds performed (observability/testing).
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # hash tier: exact resolution
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def lookup(self, term: str) -> Optional[int]:
        """Exact term → id (O(1); ``None`` when absent)."""
        return self._ids.get(term)

    def add(self, term: str) -> int:
        """Append a new term, returning its dense id.

        The caller guarantees novelty (the engine checks ``lookup``
        first); the ordered layer is only marked stale, not rebuilt.
        """
        term_id = len(self._terms)
        self._ids[term] = term_id
        self._terms.append(term)
        return term_id

    def term(self, term_id: int) -> str:
        """The term string behind a dense id."""
        return self._terms[term_id]

    # ------------------------------------------------------------------
    # ordered tier: hashed prefix table + short comparison tail
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if self._ordered_count == len(self._terms):
            return
        # Re-sorting the previous sorted run plus the new tail is
        # near-sorted input — cheap for Timsort.
        self._sorted = sorted(self._terms)
        plen = self.prefix_len
        buckets: Dict[str, Tuple[int, int]] = {}
        start = 0
        current: Optional[str] = None
        for index, term in enumerate(self._sorted):
            prefix = term[:plen]
            if prefix != current:
                if current is not None:
                    buckets[current] = (start, index)
                current = prefix
                start = index
        if current is not None:
            buckets[current] = (start, len(self._sorted))
        self._buckets = buckets
        self._prefixes = sorted(buckets)
        self._ordered_count = len(self._terms)
        self.rebuilds += 1

    def find_geq(self, key: str) -> Optional[str]:
        """The smallest term ``>= key`` (``None`` when every term is below).

        One hash probe on ``key``'s prefix narrows the search to the
        bucket's short tail; only a missing prefix pays a bisect, and
        then over the prefix list, not the term list.
        """
        self._refresh()
        index = self._geq_index(key)
        if index >= len(self._sorted):
            return None
        return self._sorted[index]

    def _geq_index(self, key: str) -> int:
        prefix = key[: self.prefix_len]
        bucket = self._buckets.get(prefix)
        if bucket is not None:
            lo, hi = bucket
            return bisect_left(self._sorted, key, lo, hi)
        # No term shares the prefix: the answer is the first term of the
        # successor bucket (every term in it compares > key, since it
        # differs from key within the prefix already).
        slot = bisect_left(self._prefixes, prefix)
        if slot >= len(self._prefixes):
            return len(self._sorted)
        lo, _hi = self._buckets[self._prefixes[slot]]
        return lo

    def terms_with_prefix(
        self, prefix: str, *, limit: Optional[int] = None
    ) -> List[str]:
        """All terms starting with ``prefix``, in order (capped at ``limit``)."""
        self._refresh()
        out: List[str] = []
        index = self._geq_index(prefix)
        size = len(self._sorted)
        while index < size and self._sorted[index].startswith(prefix):
            out.append(self._sorted[index])
            if limit is not None and len(out) >= limit:
                break
            index += 1
        return out

    def iter_ordered(self) -> Iterator[str]:
        """Every term in lexicographic order."""
        self._refresh()
        return iter(list(self._sorted))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixHashLexicon({len(self._terms)} terms, "
            f"{len(self._buckets)} prefix buckets)"
        )
