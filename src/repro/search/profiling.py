"""Query cost profiling: the paper's instrumentation as a public API.

The evaluation measures queries in *posting entries scanned* (the
workload cost Q of Section 3.1) and *blocks read* (the Figure 8(c)
metric).  :func:`profile_query` runs one query against an engine and
reports both, along with the plan it took — so a deployment can measure
its own workload the way the paper measured IBM's, and decide (per
Section 4.5) whether its query mix justifies a jump index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.search.join import MergedListCursor, conjunctive_join
from repro.search.query import Query, QueryMode, parse_query


@dataclass
class QueryProfile:
    """Cost breakdown of one profiled query.

    Attributes
    ----------
    terms:
        The analyzed query terms.
    mode:
        ``"disjunctive"`` or ``"conjunctive"``.
    physical_lists:
        Distinct merged posting lists the query touched.
    entries_scanned:
        Posting entries read (the unit of the workload cost Q).  For
        conjunctive queries this counts entries in the blocks actually
        loaded, not whole lists — that is the point of the zigzag join.
    blocks_read:
        Distinct posting-list blocks loaded (the Figure 8(c) unit).
    matches:
        Documents matched (before ranking/top-k).
    used_jump_index:
        Whether jump-index seeks were available on the conjunctive path.
    per_list_blocks:
        Blocks read per physical list id.
    """

    terms: Tuple[str, ...]
    mode: str
    physical_lists: int
    entries_scanned: int
    blocks_read: int
    matches: int
    used_jump_index: bool
    per_list_blocks: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable cost summary."""
        jump = "jump-index" if self.used_jump_index else "sequential"
        return (
            f"{self.mode} {list(self.terms)}: {self.matches} matches, "
            f"{self.blocks_read} blocks / {self.entries_scanned} entries "
            f"over {self.physical_lists} lists ({jump})"
        )


def profile_query(engine, query) -> QueryProfile:
    """Run ``query`` against ``engine``, measuring its I/O footprint.

    Profiling runs the same code paths as :meth:`engine.search
    <repro.search.engine.TrustworthySearchEngine.search>` but with
    explicit accounting; it does not affect engine state (reads only).
    """
    if isinstance(query, str):
        query = parse_query(query, analyzer=engine.analyzer)
    if query.mode is QueryMode.ALL:
        return _profile_conjunctive(engine, query)
    return _profile_disjunctive(engine, query)


def _profile_disjunctive(engine, query: Query) -> QueryProfile:
    term_ids = [
        engine.term_id(t) for t in query.terms if engine.term_id(t) is not None
    ]
    wanted = set(term_ids)
    list_ids = sorted({engine._list_id_for(t) for t in term_ids})
    entries = 0
    blocks = 0
    matches = set()
    per_list: Dict[int, int] = {}
    from repro.core.posting import unpack_term_tf

    for list_id in list_ids:
        posting_list = engine._existing_list(list_id)
        if posting_list is None:
            continue
        per_list[list_id] = posting_list.num_blocks
        blocks += posting_list.num_blocks
        for posting in posting_list.scan(counted=False):
            entries += 1
            term_id, _ = unpack_term_tf(posting.term_code)
            if term_id in wanted:
                matches.add(posting.doc_id)
    return QueryProfile(
        terms=query.terms,
        mode="disjunctive",
        physical_lists=len(per_list),
        entries_scanned=entries,
        blocks_read=blocks,
        matches=len(matches),
        used_jump_index=False,
        per_list_blocks=per_list,
    )


def _profile_conjunctive(engine, query: Query) -> QueryProfile:
    cursors: List[MergedListCursor] = []
    list_ids: List[int] = []
    for term in dict.fromkeys(query.terms):
        term_id = engine.term_id(term)
        if term_id is None:
            return QueryProfile(
                terms=query.terms,
                mode="conjunctive",
                physical_lists=0,
                entries_scanned=0,
                blocks_read=0,
                matches=0,
                used_jump_index=False,
            )
        list_id = engine._list_id_for(term_id)
        posting_list = engine._existing_list(list_id)
        if posting_list is None or not len(posting_list):
            return QueryProfile(
                terms=query.terms,
                mode="conjunctive",
                physical_lists=0,
                entries_scanned=0,
                blocks_read=0,
                matches=0,
                used_jump_index=False,
            )
        list_ids.append(list_id)
        cursors.append(
            MergedListCursor(
                posting_list,
                term_code=term_id,
                jump_index=engine._jumps.get(list_id),
                length_hint=engine._term_postings.get(term_id, 0),
            )
        )
    docs, blocks = conjunctive_join(cursors)
    per_list: Dict[int, int] = {}
    entries = 0
    for list_id, cursor in zip(list_ids, cursors):
        read = cursor.blocks_read()
        per_list[list_id] = per_list.get(list_id, 0) + read
        entries += read * cursor._cursor.posting_list.entries_per_block
    used_jump = any(c.jump_index is not None for c in cursors)
    return QueryProfile(
        terms=query.terms,
        mode="conjunctive",
        physical_lists=len(set(list_ids)),
        entries_scanned=entries,
        blocks_read=blocks,
        matches=len(docs),
        used_jump_index=used_jump,
        per_list_blocks=per_list,
    )


@dataclass
class ShardedQueryProfile:
    """Cost breakdown of one query fanned out across engine shards.

    Sharded query cost has two readings, and the profile reports both:

    * ``total_*`` — work *done*: the sum over shards, i.e. what the
      query costs in aggregate device I/O (the billing view);
    * ``critical_path_entries`` / ``critical_path_blocks`` — work
      *waited for*: the slowest single shard, i.e. the query's latency
      under perfect fan-out (the paper's workload cost Q per
      Section 3.1, applied to the parallel plan).

    ``modeled_speedup`` is their ratio — the factor by which fanning out
    shortens the entry-scan critical path versus scanning the same
    postings serially.  On a balanced K-shard archive it approaches K.
    """

    terms: Tuple[str, ...]
    mode: str
    shards: int
    per_shard: List[QueryProfile]
    total_entries_scanned: int
    total_blocks_read: int
    critical_path_entries: int
    critical_path_blocks: int
    matches: int
    modeled_speedup: float

    def summary(self) -> str:
        """One-line human-readable cost summary."""
        return (
            f"{self.mode} {list(self.terms)} over {self.shards} shards: "
            f"{self.matches} matches, "
            f"{self.total_entries_scanned} entries total / "
            f"{self.critical_path_entries} on the critical path "
            f"({self.modeled_speedup:.2f}x modeled speedup)"
        )


def profile_sharded_query(sharded_engine, query) -> ShardedQueryProfile:
    """Profile ``query`` against every shard of a sharded engine.

    Runs :func:`profile_query` independently per shard (each shard is a
    complete engine with its own lists and jump indexes) and aggregates
    the per-shard footprints into total and critical-path costs.
    """
    if isinstance(query, str):
        query = parse_query(query, analyzer=sharded_engine.analyzer)
    per_shard = [
        profile_query(shard, query) for shard in sharded_engine.shards
    ]
    total_entries = sum(p.entries_scanned for p in per_shard)
    total_blocks = sum(p.blocks_read for p in per_shard)
    critical_entries = max(
        (p.entries_scanned for p in per_shard), default=0
    )
    critical_blocks = max((p.blocks_read for p in per_shard), default=0)
    if critical_entries:
        speedup = total_entries / critical_entries
    else:
        speedup = 1.0
    return ShardedQueryProfile(
        terms=per_shard[0].terms if per_shard else query.terms,
        mode=per_shard[0].mode if per_shard else "disjunctive",
        shards=len(per_shard),
        per_shard=per_shard,
        total_entries_scanned=total_entries,
        total_blocks_read=total_blocks,
        critical_path_entries=critical_entries,
        critical_path_blocks=critical_blocks,
        matches=sum(p.matches for p in per_shard),
        modeled_speedup=speedup,
    )


def recommend_configuration(profiles: List[QueryProfile]) -> str:
    """The Section 4.5 deployment rule, applied to measured profiles.

    "If most queries are disjunctive or involve only two or three
    keywords, one should use merged posting lists with no jump index.
    If most queries conjoin many keywords, it is best to use merged
    posting lists and a jump index with B = 32."
    """
    if not profiles:
        return "no profiles: keep merged posting lists without a jump index"
    many_keyword = sum(
        1
        for p in profiles
        if p.mode == "conjunctive" and len(p.terms) >= 4
    )
    share = many_keyword / len(profiles)
    if share > 0.5:
        return (
            f"{share:.0%} of profiled queries conjoin >= 4 keywords: use "
            "merged posting lists with a B=32 jump index"
        )
    return (
        f"only {share:.0%} of profiled queries conjoin >= 4 keywords: use "
        "merged posting lists without a jump index"
    )
