"""Query model: disjunctive, conjunctive, and time-constrained queries.

The paper's workloads contain two matching modes:

* **disjunctive** (Section 3): any document containing a subset of the
  query terms matches; ranking sorts out relevance;
* **conjunctive** (Section 4): all terms must be present ("all emails
  from X to Y"), answered by posting-list intersection.

Either may carry a commit-time constraint (Section 5: "Bob will also be
able to supply a target time range for illegal activity"), served by the
trustworthy :class:`~repro.core.time_index.CommitTimeIndex`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import QueryError


class QueryMode(enum.Enum):
    """Matching semantics of a keyword query."""

    #: Match documents containing any of the terms (ranked retrieval).
    ANY = "any"
    #: Match documents containing all of the terms (intersection).
    ALL = "all"


@dataclass(frozen=True)
class Query:
    """A parsed keyword query.

    Attributes
    ----------
    terms:
        Distinct analyzed terms, first-occurrence order.
    mode:
        Disjunctive (:attr:`QueryMode.ANY`) or conjunctive
        (:attr:`QueryMode.ALL`).
    time_range:
        Optional inclusive ``(start, end)`` commit-time constraint.
    """

    terms: Tuple[str, ...]
    mode: QueryMode = QueryMode.ANY
    time_range: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a query needs at least one term")
        if self.time_range is not None:
            start, end = self.time_range
            if end < start:
                raise QueryError(
                    f"time range end {end} precedes start {start}"
                )

    @property
    def num_terms(self) -> int:
        """Number of distinct keywords."""
        return len(self.terms)


def parse_query(text: str, *, analyzer=None) -> Query:
    """Parse user query text into a :class:`Query`.

    Syntax:

    * plain keywords — disjunctive: ``stewart waksal imclone``;
    * a leading ``+`` on *every* keyword — conjunctive:
      ``+stewart +waksal`` (mixed prefixes are rejected: partially
      conjunctive matching is not a semantics the engine offers);
    * an optional trailing ``@start..end`` commit-time constraint:
      ``+stewart +waksal @1004572800..1009843200``.
    """
    from repro.search.analyzer import Analyzer

    if analyzer is None:
        analyzer = Analyzer()
    text = text.strip()
    if not text:
        raise QueryError("empty query")
    time_range: Optional[Tuple[int, int]] = None
    if "@" in text:
        text, _, spec = text.rpartition("@")
        spec = spec.strip()
        try:
            start_s, _, end_s = spec.partition("..")
            time_range = (int(start_s), int(end_s))
        except ValueError:
            raise QueryError(f"bad time range spec '@{spec}'") from None
    raw_words = text.split()
    plussed = [w for w in raw_words if w.startswith("+")]
    if plussed and len(plussed) != len(raw_words):
        raise QueryError(
            "mix of '+term' and plain terms; use all-plus (conjunctive) "
            "or all-plain (disjunctive)"
        )
    mode = QueryMode.ALL if plussed else QueryMode.ANY
    cleaned = " ".join(w.lstrip("+") for w in raw_words)
    terms = tuple(analyzer.query_terms(cleaned))
    if not terms:
        raise QueryError(f"no indexable terms in query '{text}'")
    return Query(terms=terms, mode=mode, time_range=time_range)
