"""Similarity scoring: Okapi BM25 and cosine (Section 3.1's measures).

"The documents in the posting lists are assigned scores based on
similarity measures like cosine or Okapi BM-25.  The scores are used to
rank the documents."

Collection-level statistics (document frequencies, lengths) are derived
data: the engine keeps them in application memory and could rebuild them
from WORM at any time, so they carry no trust weight — Section 5's
ranking-attack analysis is precisely about an adversary distorting them,
and the countermeasure is result verification, not protected statistics.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Mapping, Tuple


class CollectionStats:
    """Incrementally maintained collection statistics for scoring."""

    def __init__(self) -> None:
        #: Documents containing each term (document frequency).
        self.df: Dict[int, int] = defaultdict(int)
        #: Length (total retained tokens) of each document.
        self.doc_lengths: Dict[int, int] = {}
        self.total_length = 0
        #: Term IDs previously folded in per document, so re-adding a
        #: known document replaces its contributions instead of double
        #: counting them.
        self._doc_terms: Dict[int, Tuple[int, ...]] = {}

    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return len(self.doc_lengths)

    @property
    def avg_doc_length(self) -> float:
        """Mean document length (1.0 floor avoids division by zero)."""
        if not self.doc_lengths:
            return 1.0
        return max(1.0, self.total_length / len(self.doc_lengths))

    def add_document(self, doc_id: int, term_counts: Mapping[int, int]) -> None:
        """Fold one document's term counts into the statistics.

        Idempotent per ``doc_id``: re-adding a document that was already
        folded in (a restore path replaying overlap, a re-index) first
        subtracts its previous length and document-frequency
        contributions, so ``num_docs``, ``total_length``, and ``df``
        reflect each document exactly once.
        """
        previous = self._doc_terms.get(doc_id)
        if previous is not None:
            self.total_length -= self.doc_lengths[doc_id]
            for term in previous:
                remaining = self.df[term] - 1
                if remaining:
                    self.df[term] = remaining
                else:
                    del self.df[term]
        length = sum(term_counts.values())
        self.doc_lengths[doc_id] = length
        self.total_length += length
        self._doc_terms[doc_id] = tuple(term_counts)
        for term in term_counts:
            self.df[term] += 1

    def doc_length(self, doc_id: int) -> int:
        """Length of ``doc_id`` (0 for unknown IDs, e.g. stuffed postings)."""
        return self.doc_lengths.get(doc_id, 0)


class BM25Scorer:
    """Okapi BM25 with the standard k1/b parameterization."""

    def __init__(self, stats: CollectionStats, *, k1: float = 1.2, b: float = 0.75):
        self.stats = stats
        self.k1 = k1
        self.b = b

    def idf(self, term: int) -> float:
        """Robertson-Sparck-Jones idf, floored at 0 for very common terms."""
        n = self.stats.num_docs
        df = self.stats.df.get(term, 0)
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def score(self, doc_id: int, term_freqs: Mapping[int, int]) -> float:
        """BM25 score of one document for the query terms in ``term_freqs``.

        ``term_freqs`` maps query term -> within-document frequency (0 or
        absent terms contribute nothing).
        """
        dl = self.stats.doc_length(doc_id)
        norm = self.k1 * (1 - self.b + self.b * dl / self.stats.avg_doc_length)
        total = 0.0
        for term, tf in term_freqs.items():
            if tf <= 0:
                continue
            total += self.idf(term) * (tf * (self.k1 + 1)) / (tf + norm)
        return total

    def score_candidates(
        self, candidates: Mapping[int, Mapping[int, int]]
    ) -> List[Tuple[int, float]]:
        """Score every candidate document in one bulk pass.

        ``candidates`` maps doc_id -> {query term -> tf}.  Produces
        exactly the floats :meth:`score` would — the same arithmetic in
        the same order — but hoists everything loop-invariant out of the
        per-document work: each distinct term's idf is computed once per
        call (not once per document), the length norm is memoized per
        distinct document length, and attribute lookups happen once.
        Since collection statistics cannot change mid-query, the cached
        values are identical to the recomputed ones, so results are
        bit-for-bit unchanged.
        """
        k1 = self.k1
        b = self.b
        one_minus_b = 1 - b
        k1_plus_1 = k1 + 1
        avg = self.stats.avg_doc_length
        doc_length = self.stats.doc_length
        idf = self.idf
        idf_cache: Dict[int, float] = {}
        norm_cache: Dict[int, float] = {}
        scored: List[Tuple[int, float]] = []
        append = scored.append
        for doc_id, term_freqs in candidates.items():
            dl = doc_length(doc_id)
            norm = norm_cache.get(dl)
            if norm is None:
                norm = k1 * (one_minus_b + b * dl / avg)
                norm_cache[dl] = norm
            total = 0.0
            for term, tf in term_freqs.items():
                if tf <= 0:
                    continue
                w = idf_cache.get(term)
                if w is None:
                    w = idf(term)
                    idf_cache[term] = w
                total += w * (tf * k1_plus_1) / (tf + norm)
            append((doc_id, total))
        return scored


class CosineScorer:
    """Cosine similarity with log-tf / idf weights (lnc.ltc style)."""

    def __init__(self, stats: CollectionStats):
        self.stats = stats

    def idf(self, term: int) -> float:
        """Classic ``log(N / df)`` idf."""
        df = self.stats.df.get(term, 0)
        if df == 0:
            return 0.0
        return math.log(max(1.0, self.stats.num_docs / df))

    def score(self, doc_id: int, term_freqs: Mapping[int, int]) -> float:
        """Cosine score, document-normalized by length as a proxy norm."""
        dl = max(1, self.stats.doc_length(doc_id))
        total = 0.0
        for term, tf in term_freqs.items():
            if tf <= 0:
                continue
            total += (1.0 + math.log(tf)) * self.idf(term)
        return total / math.sqrt(dl)

    def score_candidates(
        self, candidates: Mapping[int, Mapping[int, int]]
    ) -> List[Tuple[int, float]]:
        """Bulk counterpart of :meth:`score` (same floats, one pass).

        Per-term idf and the per-tf log weight are computed once per
        distinct value instead of once per document; the arithmetic and
        its order match :meth:`score` exactly, so scores are
        bit-for-bit identical.
        """
        doc_length = self.stats.doc_length
        idf = self.idf
        idf_cache: Dict[int, float] = {}
        tf_weight_cache: Dict[int, float] = {}
        sqrt = math.sqrt
        log = math.log
        scored: List[Tuple[int, float]] = []
        append = scored.append
        for doc_id, term_freqs in candidates.items():
            dl = max(1, doc_length(doc_id))
            total = 0.0
            for term, tf in term_freqs.items():
                if tf <= 0:
                    continue
                w = idf_cache.get(term)
                if w is None:
                    w = idf(term)
                    idf_cache[term] = w
                tfw = tf_weight_cache.get(tf)
                if tfw is None:
                    tfw = 1.0 + log(tf)
                    tf_weight_cache[tf] = tfw
                total += tfw * w
            append((doc_id, total / sqrt(dl)))
        return scored
