"""Three-tier read-path cache hierarchy for the search engine.

The paper's storage cache (Section 3) only absorbs *writes*: every query
still walks posting lists and jump pointers straight off WORM and pays
full decode cost each time.  Committed WORM data is immutable and posting
lists grow append-only, which makes read caching unusually safe here —
cached state can be validated by cheap structural checks instead of
timestamps or TTLs:

* **Tier 1 — decoded posting blocks** (:class:`DecodedBlockCache`).
  Keyed by ``(list_name, block_no)``.  Every block except the current
  tail is frozen forever, so the only invalidation needed is the tail
  block of a list receiving an append.  Eviction order is pluggable
  (LRU / 2Q / segmented LRU, from :mod:`repro.worm.cache`).

* **Tier 2 — query results** (:class:`QueryResultCache`).  Keyed by the
  normalized query; each entry carries a *fingerprint* of the per-term
  posting-list lengths (plus the disposition count) it was computed
  from.  Because lists only grow, a length match proves the exact same
  candidate set would be recomputed; a mismatch invalidates exactly the
  stale entry — an append to one list never touches cached results for
  queries over other lists.

* **Tier 3 — jump-pointer memo** (:class:`JumpMemo`).  Remembers, per
  posting list, the largest doc ID of frozen (non-tail) blocks and jump
  pointer edges that already passed the certified-reader checks, so hot
  ``FindGeq`` descents skip re-decoding head-path blocks.  Pointer slots
  are write-once and frozen blocks never change, so a memoized fact can
  never go stale within a process.

Trust posture: the caches accelerate the *query* path only.  Audits,
restart recovery, and result verification always re-read the device
(``counted=False`` peeks, never cache-served), and cached blocks were
decoded by the same certified read path that enforces the monotonicity
invariants — so tamper detection (Section 4) is not weakened.  All tiers
are in-process, per-engine memory: they never outlive a restart and hold
no authority over WORM state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.posting import Posting
from repro.worm.cache import make_policy

#: Nominal in-memory cost of one decoded posting (object + refs), used to
#: map the ``--cache-mb`` byte budget onto decoded-entry lists.
POSTING_MEMORY_COST = 64
#: Fixed per-cached-block overhead (key tuple, dict slots, list header).
BLOCK_MEMORY_OVERHEAD = 128


@dataclass
class TierStats:
    """Hit/miss/eviction/invalidation counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class DecodedBlockCache:
    """Tier 1: decoded posting blocks keyed by ``(list_name, block_no)``.

    Holds the *decoded* entry lists (the expensive part of a block read),
    bounded by an approximate byte budget.  Consumers must treat returned
    lists as read-only — they are shared across cursors and queries.
    """

    def __init__(self, *, policy: str = "lru", capacity_bytes: int = 8 << 20):
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.policy_name = policy
        self.capacity_bytes = capacity_bytes
        self._policy = make_policy(policy)
        self._entries: Dict[Tuple[str, int], List[Posting]] = {}
        self._weights: Dict[Tuple[str, int], int] = {}
        self.resident_bytes = 0
        self.stats = TierStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, block_no: int) -> Optional[List[Posting]]:
        """The cached decoded block, or ``None`` on a miss."""
        key = (name, block_no)
        entries = self._entries.get(key)
        if entries is None:
            self.stats.misses += 1
            return None
        self._policy.on_hit(key)
        self.stats.hits += 1
        return entries

    def put(self, name: str, block_no: int, entries: List[Posting]) -> None:
        """Cache a freshly decoded block (evicting under the byte budget).

        Column-valued entries (:class:`~repro.core.vecdecode.DecodedBlock`)
        report their resident size exactly via ``nbytes``; legacy
        ``List[Posting]`` entries keep the per-object cost model.
        """
        key = (name, block_no)
        if key in self._entries:
            # Re-decoded concurrently with an earlier put; keep the newer
            # copy (identical content for frozen blocks, fresher for tails).
            self._drop(key)
        nbytes = getattr(entries, "nbytes", None)
        if nbytes is not None:
            weight = BLOCK_MEMORY_OVERHEAD + nbytes
        else:
            weight = BLOCK_MEMORY_OVERHEAD + POSTING_MEMORY_COST * len(entries)
        if weight > self.capacity_bytes:
            return  # would evict the whole cache for one oversized block
        while self._entries and self.resident_bytes + weight > self.capacity_bytes:
            victim = self._policy.victim()
            self._drop(victim)
            self.stats.evictions += 1
        self._entries[key] = entries
        self._weights[key] = weight
        self.resident_bytes += weight
        self._policy.on_insert(key)

    def invalidate(self, name: str, block_no: int) -> None:
        """Drop one block (the tail of a list that just received an append)."""
        key = (name, block_no)
        if key in self._entries:
            self._drop(key)
            self.stats.invalidations += 1

    def forget_list(self, name: str) -> None:
        """Drop every cached block of ``name`` (the list was retired).

        Used when a segment merge supersedes whole posting lists: the
        retired files can never be read again, so keeping their decoded
        blocks resident only squeezes live entries out of the budget.
        Counted as invalidations.
        """
        for key in [k for k in self._entries if k[0] == name]:
            self._drop(key)
            self.stats.invalidations += 1

    def _drop(self, key: Tuple[str, int]) -> None:
        del self._entries[key]
        self.resident_bytes -= self._weights.pop(key)
        self._policy.discard(key)


class QueryResultCache:
    """Tier 2: match results keyed by normalized query + list-length fingerprint.

    The fingerprint pins down everything the candidate set depends on:
    for each query term its resolved posting list and that list's length,
    plus the disposition-log length.  Append-only growth means a length
    match is proof of byte-identical recomputation; a mismatch evicts
    exactly the stale entry (counted as an invalidation).
    """

    def __init__(self, *, policy: str = "lru", max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._policy = make_policy(policy)
        self._entries: Dict[Hashable, Tuple[Hashable, Any]] = {}
        self.stats = TierStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, fingerprint: Hashable) -> Optional[Any]:
        """The cached payload if present *and* still valid, else ``None``."""
        slot = self._entries.get(key)
        if slot is None:
            self.stats.misses += 1
            return None
        cached_fp, payload = slot
        if cached_fp != fingerprint:
            # An append touched a list this entry depends on.
            del self._entries[key]
            self._policy.discard(key)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._policy.on_hit(key)
        self.stats.hits += 1
        return payload

    def put(self, key: Hashable, fingerprint: Hashable, payload: Any) -> None:
        if key in self._entries:
            self._entries[key] = (fingerprint, payload)
            self._policy.on_hit(key)
            return
        while len(self._entries) >= self.max_entries:
            victim = self._policy.victim()
            del self._entries[victim]
            self._policy.discard(victim)
            self.stats.evictions += 1
        self._entries[key] = (fingerprint, payload)
        self._policy.on_insert(key)


class JumpMemo:
    """Tier 3: per-list memo of frozen-block maxima and verified jump edges.

    ``FindGeq`` descents repeatedly decode head-path blocks just to learn
    each block's largest doc ID, then re-run the certified-reader checks
    on the same write-once pointer slots.  Both facts are immutable once
    observed (non-tail blocks are frozen; slots are write-once and the
    in-process device enforces WORM), so memoizing them preserves
    verification semantics: every edge was checked by the full
    :meth:`BlockJumpIndex._check_jump` tripwire at least once per process
    lifetime, and tail blocks are never memoized.

    Memory is bounded by the structure itself — at most one integer per
    frozen block plus one entry per *distinct followed* pointer edge.
    """

    def __init__(self, stats: Optional[TierStats] = None):
        self.stats = stats if stats is not None else TierStats()
        self._nb: Dict[int, int] = {}
        self._edges: Set[Tuple[int, int, int]] = set()

    def nb(self, block_no: int) -> Optional[int]:
        """Memoized largest doc ID of ``block_no`` (``None`` if unknown)."""
        value = self._nb.get(block_no)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put_nb(self, block_no: int, nb: int) -> None:
        """Record a frozen block's largest ID (caller excludes the tail)."""
        self._nb[block_no] = nb

    def edge_verified(self, block_no: int, slot: int, target: int) -> bool:
        """Whether this exact pointer edge already passed certification."""
        if (block_no, slot, target) in self._edges:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def record_edge(self, block_no: int, slot: int, target: int) -> None:
        """Mark an edge as certified (after the full checks succeeded)."""
        self._edges.add((block_no, slot, target))


class ReadCache:
    """The engine-level container wiring the three tiers together.

    One instance per engine (per shard, in a sharded archive).  The block
    cache takes the whole ``capacity_mb`` byte budget; the result cache
    is entry-bounded and the jump memos are structurally bounded, so
    neither needs a byte share.
    """

    def __init__(
        self,
        *,
        policy: str = "lru",
        capacity_mb: float = 8.0,
        result_entries: int = 256,
    ):
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb}")
        self.policy_name = policy
        self.capacity_mb = capacity_mb
        self.blocks = DecodedBlockCache(
            policy=policy, capacity_bytes=int(capacity_mb * (1 << 20))
        )
        self.results = QueryResultCache(policy=policy, max_entries=result_entries)
        self.memo_stats = TierStats()
        self._memos: Dict[str, JumpMemo] = {}

    def memo_for(self, name: str) -> JumpMemo:
        """The jump memo of posting list ``name`` (created on first use)."""
        memo = self._memos.get(name)
        if memo is None:
            memo = JumpMemo(self.memo_stats)
            self._memos[name] = memo
        return memo

    def forget_lists(self, names: Iterable[str]) -> None:
        """Retire posting lists wholesale (e.g. after a segment merge).

        Drops their tier-1 decoded blocks and tier-3 jump memos.  Tier-2
        results need no action: a merge never changes *which* documents
        match, and the engine's fingerprint carries the tail generation /
        per-term counts that govern result validity.
        """
        for name in names:
            self.blocks.forget_list(name)
            self._memos.pop(name, None)

    def as_dict(self) -> Dict[str, Any]:
        """Per-tier counters plus residency, for stats/metrics export."""
        return {
            "policy": self.policy_name,
            "blocks": {
                **self.blocks.stats.as_dict(),
                "resident": len(self.blocks),
                "resident_bytes": self.blocks.resident_bytes,
            },
            "results": {
                **self.results.stats.as_dict(),
                "resident": len(self.results),
            },
            "jump_memo": self.memo_stats.as_dict(),
        }
