"""The long-lived archive service: one engine open, many requests served.

Everything the one-shot CLI pays per invocation — engine open, journal
replay, index load — this package pays once.  :mod:`repro.service.server`
exposes the engine over HTTP (``/search``, ``/ingest``, ``/audit``,
``/metrics``, ``/healthz``); :mod:`repro.service.admission` supplies the
admission control (per-tenant token buckets → 429, bounded execution
queue → 503); :mod:`repro.service.locks` holds the reader-writer
discipline that serialises ingest against the single-writer append path.

Start one from the CLI (``repro-search serve --archive records.worm``)
or embed one in-process::

    from repro.service import serve_archive

    with serve_archive("records.worm", port=0) as server:
        ...  # drive server.endpoint over HTTP

See ``docs/SERVICE.md`` for endpoint schemas, admission semantics, and
the drain contract.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
    AdmissionGate,
    Decision,
    TenantRateLimiter,
    TokenBucket,
)
from repro.service.locks import NullRequestLock, ReadWriteLock
from repro.service.protocol import (
    DEFAULT_TENANT,
    PROTOCOL_SCHEMA,
    TENANT_HEADER,
    IngestRequest,
    SchemaError,
    SearchRequest,
    error_payload,
    ok_payload,
    parse_ingest_request,
    parse_search_request,
)
from repro.service.server import (
    ArchiveServer,
    ArchiveService,
    ServiceConfig,
    serve_archive,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AdmissionGate",
    "ArchiveServer",
    "ArchiveService",
    "DEFAULT_TENANT",
    "Decision",
    "IngestRequest",
    "NullRequestLock",
    "PROTOCOL_SCHEMA",
    "ReadWriteLock",
    "SchemaError",
    "SearchRequest",
    "ServiceConfig",
    "TENANT_HEADER",
    "TenantRateLimiter",
    "TokenBucket",
    "error_payload",
    "ok_payload",
    "parse_ingest_request",
    "parse_search_request",
    "serve_archive",
]
