"""Admission control for the archive service: rate limits and backpressure.

A regulatory archive is queried by many tenants (investigators,
auditors, retention jobs) while records keep arriving; admission control
is what keeps one tenant's burst from turning into everyone's latency.
Two independent mechanisms compose here, checked in order:

1. **Per-tenant token buckets** (:class:`TenantRateLimiter`) — each
   tenant spends one token per request against a bucket refilled at
   ``rate`` tokens/second up to ``burst``.  An empty bucket is a *429*
   with a ``Retry-After`` hint computed from the refill rate: the
   client is over its contract, and waiting is its problem.
2. **A bounded execution gate** (:class:`AdmissionGate`) — at most
   ``max_inflight`` requests execute concurrently; up to ``max_queue``
   more may wait (bounded, so queueing delay stays bounded too); the
   rest are rejected immediately with a *503*: the service is over
   capacity, and shedding load beats collapsing under it.

Both are stdlib-only, lock-protected, and independently testable
without an HTTP server in sight.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError


class AdmissionError(ReproError):
    """Invalid admission-control configuration."""


class TokenBucket:
    """One tenant's rate-limit state: tokens refilled continuously.

    Parameters
    ----------
    rate:
        Refill rate in tokens per second (must be positive).
    burst:
        Bucket capacity — the largest instantaneous burst allowed.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise AdmissionError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise AdmissionError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(admitted, retry_after_seconds)``; ``retry_after`` is
        ``0.0`` when admitted, otherwise the time until the bucket will
        hold ``cost`` tokens again — the ``Retry-After`` hint.

        Raises
        ------
        AdmissionError
            If ``cost`` exceeds the bucket capacity: the bucket can
            never hold that many tokens, so any finite ``retry_after``
            would be a lie that sends the client into a retry loop.
        """
        if cost > self.burst:
            raise AdmissionError(
                f"cost {cost} exceeds bucket capacity {self.burst}; "
                f"the request can never be admitted"
            )
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            return False, (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (refreshed; for tests and metrics)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            return self._tokens


class TenantRateLimiter:
    """Per-tenant token buckets under one shared rate contract.

    Buckets are created on a tenant's first request.  ``max_tenants``
    bounds the table so an adversary cycling tenant names cannot grow
    it without limit; once full, unknown tenants share one overflow
    bucket (they are collectively, not individually, rate limited —
    the conservative failure mode).
    """

    #: Key of the shared bucket once the tenant table is full.
    OVERFLOW = "\x00overflow"

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        max_tenants: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_tenants < 1:
            raise AdmissionError(
                f"max_tenants must be >= 1, got {max_tenants}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        # Constructing one bucket up front validates rate/burst eagerly.
        self._buckets[self.OVERFLOW] = TokenBucket(rate, burst, clock=clock)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    if len(self._buckets) > self.max_tenants:
                        return self._buckets[self.OVERFLOW]
                    bucket = TokenBucket(
                        self.rate, self.burst, clock=self._clock
                    )
                    self._buckets[tenant] = bucket
        return bucket

    def try_acquire(self, tenant: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend against ``tenant``'s bucket; see :meth:`TokenBucket.try_acquire`."""
        return self._bucket(tenant).try_acquire(cost)

    def __len__(self) -> int:
        return len(self._buckets) - 1  # the overflow bucket is not a tenant


class AdmissionGate:
    """Bounded concurrency with a bounded wait queue.

    ``max_inflight`` requests execute at once; ``max_queue`` more may
    wait up to ``queue_timeout`` seconds for a slot; anything beyond
    that is rejected immediately.  :meth:`try_enter` returns whether the
    caller may proceed — on ``True`` the caller *must* pair it with
    :meth:`leave` (use :meth:`admitted` state for metrics).
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        *,
        queue_timeout: float = 5.0,
    ):
        if max_inflight < 1:
            raise AdmissionError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise AdmissionError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout < 0:
            raise AdmissionError(
                f"queue_timeout must be >= 0, got {queue_timeout}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight = 0

    def try_enter(self) -> bool:
        """Wait (bounded) for an execution slot; ``False`` = shed the load."""
        # Fast path: a free slot means no queueing at all, so the queue
        # bound only applies to requests that would actually wait
        # (max_queue=0 still admits up to max_inflight requests).
        if self._slots.acquire(blocking=False):
            with self._lock:
                self._inflight += 1
            return True
        with self._lock:
            if self._queued >= self.max_queue:
                return False
            self._queued += 1
        admitted = self._slots.acquire(timeout=self.queue_timeout)
        with self._lock:
            self._queued -= 1
            if admitted:
                self._inflight += 1
        return admitted

    def leave(self) -> None:
        """Release the slot taken by a successful :meth:`try_enter`."""
        with self._lock:
            self._inflight -= 1
        self._slots.release()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a slot."""
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        with self._lock:
            return self._inflight


@dataclass(frozen=True)
class AdmissionConfig:
    """The service's admission-control contract.

    Attributes
    ----------
    rate:
        Per-tenant sustained request rate (tokens/second); ``None``
        disables rate limiting entirely.
    burst:
        Per-tenant burst allowance (bucket capacity).
    max_inflight:
        Concurrent requests executing in the service.
    max_queue:
        Requests allowed to wait for an execution slot.
    queue_timeout:
        Longest a queued request waits before being shed (seconds).
    """

    rate: Optional[float] = 200.0
    burst: float = 400.0
    max_inflight: int = 8
    max_queue: int = 64
    queue_timeout: float = 5.0


class AdmissionController:
    """Rate limiter + gate behind one decision point.

    :meth:`admit` makes the full admission decision for one request and
    returns a :class:`Decision`; an admitted decision must be closed
    with :meth:`release` (the server does this in a ``finally``).
    """

    #: Rejection reasons (stable strings — they label metrics series).
    RATE_LIMITED = "rate_limit"
    OVERLOADED = "overload"

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or AdmissionConfig()
        self.limiter = (
            None
            if self.config.rate is None
            else TenantRateLimiter(
                self.config.rate, self.config.burst, clock=clock
            )
        )
        self.gate = AdmissionGate(
            self.config.max_inflight,
            self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )

    def admit(self, tenant: str) -> "Decision":
        """Decide one request: admitted, rate-limited, or shed."""
        if self.limiter is not None:
            ok, retry_after = self.limiter.try_acquire(tenant)
            if not ok:
                return Decision(
                    admitted=False,
                    reason=self.RATE_LIMITED,
                    retry_after=retry_after,
                )
        if not self.gate.try_enter():
            return Decision(
                admitted=False,
                reason=self.OVERLOADED,
                retry_after=self.config.queue_timeout,
            )
        return Decision(admitted=True)

    def release(self, decision: "Decision") -> None:
        """Return the slot held by an admitted :class:`Decision`."""
        if decision.admitted:
            self.gate.leave()


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission check."""

    admitted: bool
    #: ``None`` when admitted; otherwise a stable rejection label.
    reason: Optional[str] = None
    #: Suggested client wait (seconds) for rejected requests.
    retry_after: float = 0.0
