"""Reader-writer lock shared by the service and the load harness.

The engine's append path (journal tail, lexicon, router clock) is
single-writer by design, while searches are safe to run fully
concurrent; both the long-lived archive service and the in-process load
harness therefore serialise ingest against reads with the same
discipline.  This lock is writer-preferring: a waiting writer blocks
new readers (they queue behind it on ``_writer``), so a steady search
stream cannot starve the committing pipeline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Writer-preferring reader-writer lock.

    Readers run concurrently; a writer holds the lock exclusively.  New
    readers queue behind any active or waiting writer, so ingest cannot
    be starved by a saturating search load.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._readers = 0
        self._writer = threading.Lock()

    def acquire_read(self) -> None:
        with self._writer:  # queue behind any active/waiting writer
            with self._mutex:
                self._readers += 1

    def release_read(self) -> None:
        with self._mutex:
            self._readers -= 1
            if self._readers == 0:
                self._readers_done.notify_all()

    def acquire_write(self) -> None:
        self._writer.acquire()
        with self._mutex:
            while self._readers:
                self._readers_done.wait()

    def release_write(self) -> None:
        self._writer.release()

    @contextmanager
    def reading(self):
        """``with lock.reading():`` — shared (search) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self):
        """``with lock.writing():`` — exclusive (ingest) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class NullRequestLock:
    """A :class:`ReadWriteLock` stand-in that synchronises nothing.

    Used when another layer already serialises writers — e.g. the load
    harness driving the archive service over HTTP, where the service's
    own reader-writer discipline is the one under test and a
    client-side lock would only fake serialisation the server never
    sees.
    """

    def acquire_read(self) -> None:
        pass

    def release_read(self) -> None:
        pass

    def acquire_write(self) -> None:
        pass

    def release_write(self) -> None:
        pass

    @contextmanager
    def reading(self):
        yield

    @contextmanager
    def writing(self):
        yield
