"""JSON request/response schemas of the archive service.

Every service endpoint speaks JSON with an explicit, versioned shape
(``repro-service/v1``); this module is the single place that shape is
defined, parsed, and validated, so the HTTP layer stays a thin router
and handler unit tests can exercise schemas without a socket.

Requests are parsed into frozen dataclasses; a malformed request raises
:class:`SchemaError` with a message precise enough to fix the payload
from the error alone.  Responses (including errors) are plain dicts the
server serialises with sorted keys.

Error shape::

    {"error": {"code": "rate_limited", "message": "...", ...}}

Stable error codes: ``bad_request``, ``not_found``, ``method_not_allowed``,
``rate_limited``, ``overloaded``, ``draining``, ``tampering``,
``internal``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Schema tag carried by every response body.
PROTOCOL_SCHEMA = "repro-service/v1"

#: Header naming the calling tenant (rate-limit accounting key).
TENANT_HEADER = "X-Repro-Tenant"

#: Tenant charged when the caller does not identify itself.
DEFAULT_TENANT = "default"

#: Upper bound on documents per ingest request (one bounded batch per
#: exclusive-writer hold; bigger corpora arrive as multiple requests).
MAX_INGEST_DOCUMENTS = 1_000

#: Upper bound on ``top_k`` (a service must bound its own response size).
MAX_TOP_K = 1_000


class SchemaError(ReproError):
    """A request body that does not match the endpoint's schema."""


@dataclass(frozen=True)
class SearchRequest:
    """Parsed body of ``POST /search`` (or query string of ``GET``)."""

    query: str
    top_k: int = 10
    verify: bool = False


@dataclass(frozen=True)
class IngestRequest:
    """Parsed body of ``POST /ingest``."""

    documents: List[str] = field(default_factory=list)
    commit_times: Optional[List[int]] = None


def _require_object(payload: object, endpoint: str) -> Dict[str, object]:
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{endpoint}: request body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(
    payload: Dict[str, object], allowed: Tuple[str, ...], endpoint: str
) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SchemaError(
            f"{endpoint}: unknown field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def parse_search_request(payload: object) -> SearchRequest:
    """Validate a ``/search`` body into a :class:`SearchRequest`."""
    body = _require_object(payload, "/search")
    _reject_unknown(body, ("query", "top_k", "verify"), "/search")
    query = body.get("query")
    if not isinstance(query, str) or not query.strip():
        raise SchemaError("/search: 'query' must be a non-empty string")
    top_k = body.get("top_k", 10)
    if isinstance(top_k, bool) or not isinstance(top_k, int):
        raise SchemaError(f"/search: 'top_k' must be an integer, got {top_k!r}")
    if not 1 <= top_k <= MAX_TOP_K:
        raise SchemaError(
            f"/search: 'top_k' must be in [1, {MAX_TOP_K}], got {top_k}"
        )
    verify = body.get("verify", False)
    if not isinstance(verify, bool):
        raise SchemaError(
            f"/search: 'verify' must be a boolean, got {verify!r}"
        )
    return SearchRequest(query=query, top_k=top_k, verify=verify)


def parse_ingest_request(payload: object) -> IngestRequest:
    """Validate an ``/ingest`` body into an :class:`IngestRequest`."""
    body = _require_object(payload, "/ingest")
    _reject_unknown(body, ("documents", "commit_times"), "/ingest")
    documents = body.get("documents")
    if not isinstance(documents, list) or not documents:
        raise SchemaError(
            "/ingest: 'documents' must be a non-empty list of strings"
        )
    if len(documents) > MAX_INGEST_DOCUMENTS:
        raise SchemaError(
            f"/ingest: at most {MAX_INGEST_DOCUMENTS} documents per "
            f"request, got {len(documents)}"
        )
    for position, text in enumerate(documents):
        if not isinstance(text, str):
            raise SchemaError(
                f"/ingest: documents[{position}] must be a string, "
                f"got {type(text).__name__}"
            )
    commit_times = body.get("commit_times")
    if commit_times is not None:
        if not isinstance(commit_times, list) or any(
            isinstance(t, bool) or not isinstance(t, int)
            for t in commit_times
        ):
            raise SchemaError(
                "/ingest: 'commit_times' must be a list of integers"
            )
        if len(commit_times) != len(documents):
            raise SchemaError(
                f"/ingest: got {len(documents)} documents but "
                f"{len(commit_times)} commit_times"
            )
    return IngestRequest(
        documents=list(documents),
        commit_times=None if commit_times is None else list(commit_times),
    )


def error_payload(code: str, message: str, **extra: object) -> Dict[str, object]:
    """The uniform error body every non-2xx response carries."""
    error: Dict[str, object] = {"code": code, "message": message}
    error.update(extra)
    return {"schema": PROTOCOL_SCHEMA, "error": error}


def ok_payload(**fields: object) -> Dict[str, object]:
    """A 2xx body: the schema tag plus endpoint-specific fields."""
    payload: Dict[str, object] = {"schema": PROTOCOL_SCHEMA}
    payload.update(fields)
    return payload
