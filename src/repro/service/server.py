"""The long-lived archive service: open once, serve many.

Every CLI subcommand pays engine open + index load per invocation; a
compliance archive is instead a continuously available service —
regulators and investigators query it while records keep arriving.
:class:`ArchiveService` opens the (possibly sharded) engine **once** and
serves it over HTTP until drained:

==========  ======  =====================================================
endpoint    method  purpose
==========  ======  =====================================================
/search     POST    ranked keyword search (optionally verified)
/ingest     POST    commit + index a bounded batch of documents
/audit      GET     full tamper audit of the archive
/metrics    GET     Prometheus text (``?format=json`` for the snapshot)
/healthz    GET     liveness + drain state (no admission control)
==========  ======  =====================================================

Admission control is the point, not a bolt-on (see
:mod:`repro.service.admission`): per-tenant token buckets answer *429*
with a ``Retry-After`` hint, the bounded execution gate answers *503*
when the queue is full, and a writer-preferring reader-writer lock
(:mod:`repro.service.locks`) serialises ingest against the
single-writer append path while searches run concurrently.

Shutdown is a *drain*, not a kill: stop accepting, let in-flight
requests finish, fsync every journal, close the engine.  SIGTERM and
SIGINT both trigger it in :func:`repro.cli._cmd_serve`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError, TamperDetectedError
from repro.observability import engine_metrics, export_service
from repro.observability.metrics import MetricsRegistry
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.locks import ReadWriteLock
from repro.service.protocol import (
    DEFAULT_TENANT,
    TENANT_HEADER,
    SchemaError,
    error_payload,
    ok_payload,
    parse_ingest_request,
    parse_search_request,
)

#: Endpoints served without admission control (operational plane).
OPS_ENDPOINTS = frozenset({"/healthz", "/metrics"})

#: Endpoints that exist at all (label cardinality bound for metrics).
KNOWN_ENDPOINTS = frozenset(
    {"/search", "/ingest", "/audit", "/metrics", "/healthz"}
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service process (admission + HTTP plumbing)."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Socket read / keep-alive idle timeout (seconds); bounds how long
    #: a drain waits for idle persistent connections to fall away.
    request_timeout: float = 5.0
    #: Largest accepted request body.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Echo one access-log line per request to stderr.
    log_requests: bool = False
    #: Seconds between background tail seals (tail-mode engines only;
    #: ``0`` disables the sealer thread).  Size-triggered sealing via
    #: ``EngineConfig.tail_max_docs`` still applies either way — this
    #: bounds how long a *quiet* archive keeps documents tail-resident.
    seal_interval: float = 0.0


class ArchiveService:
    """HTTP-agnostic request handling over one long-lived engine.

    Every ``handle_*`` method takes parsed input and returns
    ``(status, body, headers)`` — the HTTP layer is a thin router, and
    handler unit tests exercise schemas, admission, and drain semantics
    without a socket.

    Parameters
    ----------
    engine:
        An opened :class:`~repro.search.engine.TrustworthySearchEngine`
        or :class:`~repro.sharding.engine.ShardedSearchEngine`.
    closer:
        The archive handle from :func:`repro.cli.open_archive`; its
        ``close()`` is called at the end of :meth:`shutdown`.
    config:
        See :class:`ServiceConfig`.
    """

    def __init__(self, engine, closer=None, config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.closer = closer
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(self.config.admission)
        self.lock = ReadWriteLock()
        self.registry = getattr(engine, "metrics", None)
        if self.registry is None or not getattr(self.registry, "enabled", False):
            self.registry = MetricsRegistry()
        self._draining = threading.Event()
        self._started = time.monotonic()
        self._requests = self.registry.counter(
            "repro_service_requests_total",
            "Requests served, by endpoint and status code",
            labels=("endpoint", "status"),
        )
        self._latency = self.registry.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by endpoint",
            labels=("endpoint",),
        )
        self._rejections = self.registry.counter(
            "repro_service_rejections_total",
            "Requests rejected by admission control, by reason",
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether the service has begun its drain."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work; existing requests keep running."""
        self._draining.set()

    def shutdown(self) -> None:
        """Final step of the drain: sync every journal, close the engine.

        Callers must only invoke this after in-flight requests have
        completed (:meth:`ArchiveServer.drain` joins handler threads
        first).
        """
        self.begin_drain()
        sync = getattr(self.engine, "sync", None)
        if sync is not None:
            sync()
        else:
            self.engine.store.sync()
        if self.closer is not None:
            self.closer.close()

    def stats(self) -> Dict[str, object]:
        """Admission-control state for :func:`~repro.observability.export_service`."""
        limiter = self.admission.limiter
        return {
            "draining": self.draining,
            "inflight": self.admission.gate.inflight,
            "queue_depth": self.admission.gate.queue_depth,
            "tenants": len(limiter) if limiter is not None else 0,
            "uptime_seconds": time.monotonic() - self._started,
        }

    # ------------------------------------------------------------------
    # request plane
    # ------------------------------------------------------------------
    def dispatch(
        self,
        method: str,
        path: str,
        payload: object = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """Route one request through admission control to its handler.

        ``payload`` is the decoded JSON body (or the query-string dict
        for GET /search).  Returns ``(status, body, headers)``.
        """
        started = time.perf_counter()
        endpoint = path if path in KNOWN_ENDPOINTS else "other"
        try:
            status, body, headers = self._dispatch(
                method, path, payload, tenant
            )
        except SchemaError as exc:
            status, body, headers = 400, error_payload("bad_request", str(exc)), {}
        except TamperDetectedError as exc:
            status, body, headers = (
                500,
                error_payload("tampering", str(exc)),
                {},
            )
        except ReproError as exc:
            status, body, headers = 400, error_payload("bad_request", str(exc)), {}
        except Exception as exc:  # noqa: BLE001 - a service must answer
            status, body, headers = (
                500,
                error_payload("internal", f"{type(exc).__name__}: {exc}"),
                {},
            )
        self._requests.labels(endpoint=endpoint, status=status).inc()
        self._latency.labels(endpoint=endpoint).observe(
            time.perf_counter() - started
        )
        return status, body, headers

    def _dispatch(
        self, method: str, path: str, payload: object, tenant: str
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if path == "/healthz":
            return self.handle_healthz() if method == "GET" else _method_not_allowed("GET")
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            fmt = "prometheus"
            if isinstance(payload, dict):
                fmt = str(payload.get("format", "prometheus"))
            return self.handle_metrics(fmt)
        if path not in KNOWN_ENDPOINTS:
            return (
                404,
                error_payload("not_found", f"no endpoint at '{path}'"),
                {},
            )
        if self.draining:
            self._rejections.labels(reason="draining").inc()
            return (
                503,
                error_payload("draining", "service is draining; not accepting work"),
                {"Connection": "close"},
            )
        decision = self.admission.admit(tenant)
        if not decision.admitted:
            self._rejections.labels(reason=decision.reason).inc()
            retry_after = max(1, int(decision.retry_after + 0.999))
            if decision.reason == AdmissionController.RATE_LIMITED:
                body = error_payload(
                    "rate_limited",
                    f"tenant '{tenant}' is over its request rate",
                    retry_after_seconds=retry_after,
                )
                return 429, body, {"Retry-After": str(retry_after)}
            body = error_payload(
                "overloaded",
                "request queue is full; shed to protect latency",
                retry_after_seconds=retry_after,
            )
            return 503, body, {"Retry-After": str(retry_after)}
        try:
            if path == "/search":
                if method not in ("GET", "POST"):
                    return _method_not_allowed("GET, POST")
                return self.handle_search(payload)
            if path == "/ingest":
                if method != "POST":
                    return _method_not_allowed("POST")
                return self.handle_ingest(payload)
            # /audit
            if method != "GET":
                return _method_not_allowed("GET")
            return self.handle_audit()
        finally:
            self.admission.release(decision)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def handle_search(
        self, payload: object
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``/search``: ranked results under the shared (reader) lock."""
        request = parse_search_request(payload)
        with self.lock.reading():
            if request.verify:
                results, report = self.engine.search_with_incident_handling(
                    request.query, top_k=request.top_k
                )
                verification = {
                    "verified": True,
                    "ok": report.ok,
                    "violations": list(report.violations),
                }
            else:
                results = self.engine.search(
                    request.query, top_k=request.top_k
                )
                verification = {"verified": False}
        body = ok_payload(
            query=request.query,
            count=len(results),
            results=[
                {"doc_id": hit.doc_id, "score": hit.score} for hit in results
            ],
            **verification,
        )
        return 200, body, {}

    def handle_ingest(
        self, payload: object
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``/ingest``: one batch under the exclusive (writer) lock.

        With a tail-mode engine (``EngineConfig.tail_max_docs``) the
        writer critical section shrinks to WORM document/log commits
        plus an in-memory tail insertion — posting-list I/O moves to
        seal time — so concurrent searches stall far less under a
        write-heavy mix.
        """
        request = parse_ingest_request(payload)
        with self.lock.writing():
            doc_ids = self.engine.index_batch(
                request.documents, commit_times=request.commit_times
            )
        return (
            200,
            ok_payload(doc_ids=list(doc_ids), count=len(doc_ids)),
            {},
        )

    def handle_audit(self) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``/audit``: the full tamper audit, as a reader."""
        from repro.adversary.detection import (
            full_engine_audit,
            full_sharded_audit,
        )

        with self.lock.reading():
            if hasattr(self.engine, "shards"):
                reports = full_sharded_audit(self.engine)
            else:
                reports = full_engine_audit(self.engine)
            incidents = len(self.engine.incidents)
        bad = [report for report in reports if not report.ok]
        body = ok_payload(
            ok=not bad,
            subjects=len(reports),
            entries_checked=sum(r.entries_checked for r in reports),
            violations=[r.to_dict() for r in bad],
            incidents=incidents,
        )
        return 200, body, {}

    def handle_healthz(self) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``/healthz``: liveness, drain state, and archive shape."""
        status = 503 if self.draining else 200
        body = ok_payload(
            status="draining" if self.draining else "ok",
            documents=len(self.engine.documents),
            shards=getattr(self.engine, "num_shards", 1),
            uptime_seconds=round(time.monotonic() - self._started, 3),
        )
        return status, body, {}

    def handle_metrics(
        self, fmt: str = "prometheus"
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``/metrics``: refresh every exporter and render the registry.

        Returns the body under the ``"text"`` key for Prometheus format
        (the HTTP layer writes it verbatim) or the snapshot dict for
        ``format=json``.
        """
        with self.lock.reading():  # archive_stats walks live engine state
            registry = engine_metrics(self.engine)
        export_service(registry, self.stats())
        if fmt == "json":
            return 200, {"schema": "repro-metrics/v1", "metrics": registry.snapshot()}, {}
        if fmt != "prometheus":
            raise SchemaError(
                f"/metrics: unknown format '{fmt}' (prometheus|json)"
            )
        return (
            200,
            {"text": registry.render_prometheus()},
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
        )


def _method_not_allowed(
    allowed: str,
) -> Tuple[int, Dict[str, object], Dict[str, str]]:
    return (
        405,
        error_payload("method_not_allowed", f"allowed: {allowed}"),
        {"Allow": allowed},
    )


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server that joins handler threads on close (drain)."""

    daemon_threads = False  # server_close() must join in-flight handlers
    allow_reuse_address = True

    def __init__(self, address, handler, service: ArchiveService):
        self.service = service
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP router over :meth:`ArchiveService.dispatch`."""

    protocol_version = "HTTP/1.1"
    # Headers and body are written as separate segments; without this,
    # Nagle + delayed ACK turns every loopback response into ~40 ms.
    disable_nagle_algorithm = True
    server: _ServiceHTTPServer

    @property
    def service(self) -> ArchiveService:
        return self.server.service

    def setup(self) -> None:  # bound read timeout (drain + slowloris)
        self.timeout = self.service.config.request_timeout
        super().setup()

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.config.log_requests:
            super().log_message(format, *args)

    def _reply(self, status: int, body: Dict[str, object], headers: Dict[str, str]) -> None:
        content_type = headers.pop("Content-Type", "application/json")
        if "text" in body and content_type.startswith("text/"):
            raw = str(body["text"]).encode("utf-8")
        else:
            raw = (
                json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n"
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        if self.service.draining:
            self.close_connection = True
            self.send_header("Connection", "close")
        for name, value in headers.items():
            if name.lower() != "connection" or not self.service.draining:
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(raw)

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            raise SchemaError(
                f"request body of {length} bytes exceeds the "
                f"{self.service.config.max_body_bytes}-byte limit"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc

    def _handle(self, method: str) -> None:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        try:
            if method == "POST":
                payload = self._read_body()
            else:
                payload = {
                    key: values[-1]
                    for key, values in parse_qs(parts.query).items()
                }
                if path == "/search" and payload:
                    payload = _search_payload_from_query(payload)
        except SchemaError as exc:
            self._reply(400, error_payload("bad_request", str(exc)), {})
            return
        tenant = self.headers.get(TENANT_HEADER, DEFAULT_TENANT).strip()
        status, body, headers = self.service.dispatch(
            method, path, payload, tenant=tenant or DEFAULT_TENANT
        )
        self._reply(status, body, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")


def _search_payload_from_query(params: Dict[str, str]) -> Dict[str, object]:
    """``GET /search?q=...&top_k=...`` → the POST body schema."""
    payload: Dict[str, object] = {}
    if "q" in params:
        payload["query"] = params["q"]
    elif "query" in params:
        payload["query"] = params["query"]
    if "top_k" in params:
        try:
            payload["top_k"] = int(params["top_k"])
        except ValueError as exc:
            raise SchemaError(
                f"/search: 'top_k' must be an integer, got {params['top_k']!r}"
            ) from exc
    if "verify" in params:
        payload["verify"] = params["verify"].lower() in ("1", "true", "yes")
    return payload


class ArchiveServer:
    """One service process: the HTTP listener plus its drain choreography.

    Parameters
    ----------
    service:
        The :class:`ArchiveService` to expose.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    """

    def __init__(self, service: ArchiveService, *, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._httpd = _ServiceHTTPServer((host, port), _Handler, service)
        self._thread: Optional[threading.Thread] = None
        self._drained = threading.Event()
        self._sealer: Optional[threading.Thread] = None
        self._sealer_stop = threading.Event()
        #: Last exception the sealer loop swallowed (surfaced for tests
        #: and operators; the loop itself must outlive transient errors).
        self.sealer_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def endpoint(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ArchiveServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            raise ReproError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="archive-server",
        )
        self._thread.start()
        self._start_sealer()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until another thread drains."""
        self._start_sealer()
        self._httpd.serve_forever(poll_interval=0.05)

    def _start_sealer(self) -> None:
        """Launch the background tail sealer, if configured and useful.

        The sealer takes the *writer* lock for each seal — sealing
        mutates the tail and appends segment lists exactly like ingest
        appends posting lists — so it serialises against /ingest and
        never overlaps a search.
        """
        interval = self.service.config.seal_interval
        if (
            self._sealer is not None
            or interval <= 0
            or not getattr(self.service.engine, "tail_enabled", False)
        ):
            return

        def _run() -> None:
            while not self._sealer_stop.wait(interval):
                try:
                    with self.service.lock.writing():
                        self.service.engine.seal_tail()
                except Exception as exc:  # noqa: BLE001 - keep sealing
                    self.sealer_error = exc

        self._sealer = threading.Thread(target=_run, name="tail-sealer")
        self._sealer.start()

    def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight, sync, close.

        Safe to call from any thread (including a signal handler's);
        idempotent — later calls wait for the first to finish.
        """
        if self._drained.is_set():
            return
        self.service.begin_drain()
        # Stop the sealer before tearing anything down: a seal holds the
        # writer lock and appends to WORM, so it must not race close().
        self._sealer_stop.set()
        if self._sealer is not None:
            self._sealer.join()
            self._sealer = None
        # shutdown() stops the accept loop; server_close() then joins
        # every in-flight handler thread, so no accepted request is lost.
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.shutdown()
        self._drained.set()

    def __enter__(self) -> "ArchiveServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.drain()


def serve_archive(
    archive_path: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServiceConfig] = None,
    **open_kwargs,
) -> ArchiveServer:
    """Open the archive at ``archive_path`` once and wrap it in a server.

    ``open_kwargs`` pass through to :func:`repro.cli.open_archive`
    (durability knobs, read cache, workers...).  The returned server is
    not yet started; use ``with serve_archive(...) as server:`` or call
    :meth:`ArchiveServer.start` / :meth:`ArchiveServer.serve_forever`.
    Draining the server closes the archive.
    """
    from repro.cli import open_archive

    engine, closer = open_archive(archive_path, **open_kwargs)
    service = ArchiveService(engine, closer, config=config)
    return ArchiveServer(service, host=host, port=port)
