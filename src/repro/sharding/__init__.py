"""Sharded parallel query execution and batched ingestion.

Partitions a trustworthy archive across ``K`` independent engine shards
(stable hash routing, WORM document map), fans queries out with globally
consistent ranking — on a thread pool over in-process shards, or on
per-shard worker processes for GIL-free scoring — and ingests document
batches one pass per merged posting list.
"""

from repro.sharding.batch import BatchIngestor
from repro.sharding.engine import ShardedSearchEngine
from repro.sharding.executor import (
    AggregatedTermStats,
    ParallelQueryExecutor,
    ProcessShardExecutor,
)
from repro.sharding.router import ShardAssignment, ShardRouter, stable_shard

__all__ = [
    "AggregatedTermStats",
    "BatchIngestor",
    "ParallelQueryExecutor",
    "ProcessShardExecutor",
    "ShardAssignment",
    "ShardRouter",
    "ShardedSearchEngine",
    "stable_shard",
]
