"""Sharded parallel query execution and batched ingestion.

Partitions a trustworthy archive across ``K`` independent engine shards
(stable hash routing, WORM document map), fans queries out on a thread
pool with globally consistent ranking, and ingests document batches one
pass per merged posting list.
"""

from repro.sharding.batch import BatchIngestor
from repro.sharding.engine import ShardedSearchEngine
from repro.sharding.executor import AggregatedTermStats, ParallelQueryExecutor
from repro.sharding.router import ShardAssignment, ShardRouter, stable_shard

__all__ = [
    "AggregatedTermStats",
    "BatchIngestor",
    "ParallelQueryExecutor",
    "ShardAssignment",
    "ShardRouter",
    "ShardedSearchEngine",
    "stable_shard",
]
