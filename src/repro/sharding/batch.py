"""Batched ingestion across shards.

The unsharded engine indexes each document inside its own call.  At
scale, the per-document overhead — analyzer runs, lexicon lookups,
per-posting physical-list resolution, tail-block cache churn — dominates
ingest cost.  :class:`BatchIngestor` regains that cost without giving up
the paper's real-time-update requirement: a batch is routed per shard,
and each shard indexes its group with
:meth:`~repro.search.engine.TrustworthySearchEngine.index_batch`, which
appends posting entries one pass per merged list.  The call does not
return until every document in the batch is committed *and* queryable,
so there is still no buffering window for Mala to exploit (Section 2.3);
batching changes the grouping of work, not its observability.

Accounting: each shard's I/O counters record exactly what the same
documents would have cost if inserted one at a time (with an unbounded
cache, bit-identical counts; with a bounded cache, the same counting
rules applied to a friendlier access pattern — consecutive appends per
tail block instead of interleaved ones).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.sharding.router import ShardRouter


class BatchIngestor:
    """Routes document batches to shards and ingests each group in bulk.

    Parameters
    ----------
    shards:
        Per-shard :class:`TrustworthySearchEngine` instances.
    router:
        Allocates global IDs and commits the WORM document map.
    batch_size:
        Auto-flush threshold for the buffered :meth:`add` path.
    metrics:
        Optional metrics registry (the sharded engine passes the shared
        one); ``None`` leaves the ingestor unmetered.
    """

    def __init__(
        self,
        shards: Sequence,
        router: ShardRouter,
        *,
        batch_size: int = 64,
        metrics=None,
    ):
        if batch_size <= 0:
            raise WorkloadError(f"batch_size must be positive, got {batch_size}")
        self.shards = list(shards)
        self.router = router
        self.batch_size = batch_size
        self._pending: List[Tuple[str, Optional[int]]] = []
        self._metrics_on = metrics is not None and bool(metrics.enabled)
        if self._metrics_on:
            self._c_batches = metrics.counter(
                "repro_ingest_batches_total",
                "Document batches routed and ingested",
            )
            self._c_batch_docs = metrics.counter(
                "repro_ingest_batch_documents_total",
                "Documents ingested through the batch path",
            )
            self._c_bytes = metrics.counter(
                "repro_ingest_bytes_total",
                "UTF-8 bytes of document text ingested through the batch path",
            )
            self._g_pending = metrics.gauge(
                "repro_ingest_pending_documents",
                "Documents buffered but not yet flushed",
            )

    # ------------------------------------------------------------------
    # immediate path
    # ------------------------------------------------------------------
    def ingest(
        self,
        texts: Sequence[str],
        commit_times: Sequence[int],
    ) -> List[int]:
        """Commit and index ``texts`` with the given commit times.

        Routes every document first (committing its WORM map record),
        then ingests each shard's group in one batched pass.  Returns
        global document IDs in input order.
        """
        texts = list(texts)
        if len(commit_times) != len(texts):
            raise WorkloadError(
                f"got {len(texts)} texts but {len(commit_times)} "
                f"commit times"
            )
        assignments = self.router.assign_many(len(texts))
        groups: Dict[int, List[int]] = {}
        for position, assignment in enumerate(assignments):
            groups.setdefault(assignment.shard_id, []).append(position)
        for shard_id in sorted(groups):
            positions = groups[shard_id]
            local_ids = self.shards[shard_id].index_batch(
                [texts[p] for p in positions],
                commit_times=[commit_times[p] for p in positions],
            )
            for position, local_id in zip(positions, local_ids):
                expected = assignments[position].local_id
                if local_id != expected:
                    raise WorkloadError(
                        f"shard {shard_id} assigned local ID {local_id} "
                        f"where the document map recorded {expected}; "
                        f"shard and map are out of step"
                    )
        if self._metrics_on:
            self._c_batches.inc()
            self._c_batch_docs.inc(len(texts))
            self._c_bytes.inc(sum(len(text.encode("utf-8")) for text in texts))
        return [assignment.global_id for assignment in assignments]

    # ------------------------------------------------------------------
    # buffered path
    # ------------------------------------------------------------------
    def add(self, text: str, *, commit_time: Optional[int] = None) -> None:
        """Buffer one document; flushes when ``batch_size`` is reached.

        Buffered documents are *not yet committed* — callers that need
        the real-time guarantee use :meth:`ingest` (or the sharded
        engine's ``index_document``/``index_batch``, which do).  The
        buffered path exists for bulk loads that end with an explicit
        :meth:`flush`.
        """
        self._pending.append((text, commit_time))
        if self._metrics_on:
            self._g_pending.set(len(self._pending))
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self, *, next_commit_time: Optional[int] = None) -> List[int]:
        """Ingest everything buffered; returns the global IDs assigned."""
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        if self._metrics_on:
            self._g_pending.set(0)
        if next_commit_time is None:
            next_commit_time = (
                max(
                    (
                        shard.time_index.last_commit_time
                        for shard in self.shards
                    ),
                    default=-1,
                )
                + 1
            )
        commit_times: List[int] = []
        for _, explicit in pending:
            if explicit is not None:
                if explicit < next_commit_time:
                    raise WorkloadError(
                        f"commit_time {explicit} precedes the batch clock "
                        f"{next_commit_time}; commits are monotonic"
                    )
                next_commit_time = explicit
            commit_times.append(next_commit_time)
            next_commit_time += 1
        return self.ingest([text for text, _ in pending], commit_times)

    @property
    def pending(self) -> int:
        """Documents buffered but not yet flushed."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchIngestor(shards={len(self.shards)}, "
            f"batch_size={self.batch_size}, pending={self.pending})"
        )
