"""The sharded engine facade: K trustworthy shards behind one API.

:class:`ShardedSearchEngine` partitions an archive across ``K``
independent :class:`~repro.search.engine.TrustworthySearchEngine`
instances and recovers the single-engine API on top:

* **ingest** routes documents by stable global-ID hash
  (:mod:`repro.sharding.router`), committing the global↔local mapping to
  WORM, and indexes each shard's group in one batched pass
  (:mod:`repro.sharding.batch`);
* **search** fans out to every shard on a thread pool, re-ranks under
  aggregated collection statistics, and heap-merges the per-shard runs
  (:mod:`repro.sharding.executor`);
* **trust** is preserved compositionally: every shard enforces the
  paper's invariants over its own monotonic local IDs, the document map
  is append-only and self-verifying, and result verification /
  incident handling work on global IDs end-to-end.

The equivalence that makes sharding safe to adopt — a K-shard engine
returns the same results and scores as a 1-shard engine over the same
corpus — is property-tested in ``tests/sharding``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.verification import AuditReport, audit_search_result
from repro.errors import TamperDetectedError, WorkloadError
from repro.observability.metrics import MetricsRegistry
from repro.search.analyzer import Analyzer
from repro.search.documents import Document
from repro.search.engine import (
    EngineConfig,
    SearchResult,
    TrustworthySearchEngine,
)
from repro.search.query import parse_query
from repro.sharding.batch import BatchIngestor
from repro.sharding.executor import ParallelQueryExecutor, ProcessShardExecutor
from repro.sharding.router import ShardRouter
from repro.worm.storage import CachedWormStore

#: Coordinator WORM file for the sharded engine's incident log.
INCIDENT_FILE = "shard/incidents"


class _GlobalDocumentView:
    """Read-only, global-ID view over the per-shard document stores."""

    def __init__(self, shards: Sequence, router: ShardRouter):
        self._shards = shards
        self._router = router

    def __len__(self) -> int:
        return len(self._router)

    def exists(self, global_id: int) -> bool:
        """Whether ``global_id`` refers to a committed document."""
        if not self._router.has(global_id):
            return False
        shard_id, local_id = self._router.to_local(global_id)
        return self._shards[shard_id].documents.exists(local_id)

    def get(self, global_id: int) -> Document:
        """Fetch a committed document under its global ID."""
        shard_id, local_id = self._router.to_local(global_id)
        local = self._shards[shard_id].documents.get(local_id)
        return Document(
            doc_id=global_id,
            text=local.text,
            commit_time=local.commit_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_GlobalDocumentView(docs={len(self)})"


class ShardedSearchEngine:
    """Sharded, parallel trustworthy search over K independent shards.

    Parameters
    ----------
    config:
        Per-shard engine configuration (shared by all shards; it shapes
        committed state, so it must not drift between shards or
        sessions).
    num_shards:
        Number of shards ``K``.
    store_factory:
        ``shard_id -> CachedWormStore`` for bring-your-own shard storage
        (e.g. one journal file per shard).  Defaults to fresh in-memory
        stores per the config.
    coordinator_store:
        WORM store for cross-shard state (document map, global incident
        log).  Defaults to a fresh in-memory store.
    max_workers:
        Query fan-out thread-pool width (default: one per shard).
    batch_size:
        Auto-flush threshold of the buffered ingest path.
    executor:
        ``"thread"`` (default) fans queries out on a thread pool over
        the in-process shard engines; ``"process"`` spawns one worker
        process per shard (GIL-free matching and scoring) — requires
        ``shard_paths``, and workers see a snapshot of each shard
        journal taken at spawn (``executor.refresh()`` after ingest
        picks up new commits).  Both return identical results.
    shard_paths:
        Filesystem paths of the per-shard WORM journals (one per
        shard), required by the process executor so workers can reopen
        the shards in their own processes.
    metrics:
        Metrics registry shared by every shard, the executor, and the
        batch ingestor; each shard stamps its series with a
        ``shard="<i>"`` label.  Defaults to a fresh
        :class:`~repro.observability.metrics.MetricsRegistry`; pass a
        :class:`~repro.observability.metrics.NullMetricsRegistry` to run
        unmetered.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        num_shards: int = 2,
        store_factory: Optional[Callable[[int], CachedWormStore]] = None,
        coordinator_store: Optional[CachedWormStore] = None,
        max_workers: Optional[int] = None,
        batch_size: int = 64,
        executor: str = "thread",
        shard_paths: Optional[Sequence[str]] = None,
        metrics=None,
    ):
        if num_shards <= 0:
            raise WorkloadError(f"num_shards must be positive, got {num_shards}")
        if executor not in ("thread", "process"):
            raise WorkloadError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if executor == "process":
            if shard_paths is None:
                raise WorkloadError(
                    "executor='process' needs shard_paths (per-shard journal "
                    "files workers can reopen); in-memory shards cannot be "
                    "shared across processes"
                )
            if len(shard_paths) != num_shards:
                raise WorkloadError(
                    f"got {len(shard_paths)} shard paths for {num_shards} shards"
                )
        self.config = config or EngineConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if store_factory is None:
            def store_factory(_shard_id: int) -> CachedWormStore:
                return CachedWormStore(
                    self.config.cache_blocks,
                    block_size=self.config.block_size,
                )
        self.shards: List[TrustworthySearchEngine] = [
            TrustworthySearchEngine(
                self.config,
                store=store_factory(i),
                metrics=self.metrics,
                metrics_labels={"shard": i},
            )
            for i in range(num_shards)
        ]
        self.coordinator = coordinator_store or CachedWormStore(
            None, block_size=self.config.block_size
        )
        self.router = ShardRouter(self.coordinator, num_shards)
        self.analyzer = Analyzer()
        self.executor_kind = executor
        if executor == "process":
            self.executor = ProcessShardExecutor(
                shard_paths,
                self.router,
                self.config,
                analyzer=self.analyzer,
                metrics=self.metrics,
            )
        else:
            self.executor = ParallelQueryExecutor(
                self.shards,
                self.router,
                self.config,
                max_workers=max_workers,
                analyzer=self.analyzer,
                metrics=self.metrics,
            )
        self.ingestor = BatchIngestor(
            self.shards,
            self.router,
            batch_size=batch_size,
            metrics=self.metrics,
        )
        self.documents = _GlobalDocumentView(self.shards, self.router)
        self._clock = (
            max(
                (shard.time_index.last_commit_time for shard in self.shards),
                default=-1,
            )
            + 1
        )
        self._incidents = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards ``K``."""
        return len(self.shards)

    def close(self) -> None:
        """Release the query thread pool (engine state stays usable)."""
        self.executor.close()

    def sync(self) -> None:
        """Durability barrier across every shard journal.

        Fsyncs each shard store and the coordinator store (no-ops for
        in-memory stores).  With journaled shard stores in group-commit
        mode this is one fsync per shard journal — the amortization
        point after a batch of ingests — instead of one per record.
        """
        for shard in self.shards:
            shard.store.sync()
        self.coordinator.sync()

    def __enter__(self) -> "ShardedSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def index_document(
        self, text: str, *, commit_time: Optional[int] = None
    ) -> int:
        """Commit and index one document; returns its global ID."""
        return self.index_batch(
            [text],
            commit_times=None if commit_time is None else [commit_time],
        )[0]

    def index_batch(
        self,
        texts: Sequence[str],
        *,
        commit_times: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Commit and index a batch; returns global IDs in input order.

        Every document is committed to WORM, mapped in the WORM document
        map, and indexed on its shard before this call returns — the
        real-time guarantee of the unsharded engine, at batch
        granularity.
        """
        texts = list(texts)
        if commit_times is None:
            commit_times = list(range(self._clock, self._clock + len(texts)))
        else:
            commit_times = list(commit_times)
            if len(commit_times) != len(texts):
                raise WorkloadError(
                    f"got {len(texts)} texts but {len(commit_times)} "
                    f"commit times"
                )
            for commit_time in commit_times:
                if commit_time < self._clock:
                    raise WorkloadError(
                        f"commit_time {commit_time} precedes the engine "
                        f"clock {self._clock}; commits are monotonic"
                    )
                self._clock = commit_time + 1
        if not texts:
            return []
        self._clock = max(self._clock, commit_times[-1] + 1)
        return self.ingestor.ingest(texts, commit_times)

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def search(
        self,
        query,
        *,
        top_k: int = 10,
        verify: Optional[bool] = None,
        trace=None,
    ) -> List[SearchResult]:
        """Run a query across all shards; returns global ranked results.

        Pass a :class:`~repro.observability.trace.QueryTrace` as
        ``trace`` to record the fan-out: one span per shard (with the
        queue/execution split), the heap merge, and verification.
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        results = self.executor.search(query, top_k=top_k, trace=trace)
        should_verify = self.config.verify_results if verify is None else verify
        if should_verify:
            if trace is not None:
                verify_span = trace.begin("verify", results=len(results))
            report = self.verify_results([r.doc_id for r in results], query.terms)
            if trace is not None:
                verify_span.note(ok=report.ok)
                trace.finish(verify_span)
            if not report.ok:
                raise TamperDetectedError(
                    f"result verification failed: {report.violations}",
                    location=f"query {query.terms!r}",
                    invariant="result-document-consistency",
                )
        return results

    def profile(self, query):
        """Per-shard cost profile of ``query`` (aggregated cost Q)."""
        from repro.search.profiling import profile_sharded_query

        return profile_sharded_query(self, query)

    # ------------------------------------------------------------------
    # verification (Section 5, on global IDs)
    # ------------------------------------------------------------------
    def verify_results(
        self, doc_ids: Sequence[int], terms: Sequence[str]
    ) -> AuditReport:
        """Cross-check global results against the shard WORM documents.

        A global ID with no document-map record (including the negative
        synthetic IDs the router emits for stuffed shard-local postings)
        has no committed document anywhere, so it fails the existence
        check exactly like single-engine stuffing does.
        """

        def exists(global_id: int) -> bool:
            if not self.router.has(global_id):
                return False
            shard_id, local_id = self.router.to_local(global_id)
            shard = self.shards[shard_id]
            if shard.documents.exists(local_id):
                return True
            retention = shard._retention_if_any()
            return retention is not None and retention.is_disposed(local_id)

        def contains(global_id: int, term: str) -> bool:
            if not self.router.has(global_id):
                return True  # existence check already flags it
            shard_id, local_id = self.router.to_local(global_id)
            shard = self.shards[shard_id]
            if not shard.documents.exists(local_id):
                return True  # disposed: the disposition record vouches
            text = shard.documents.get(local_id).text
            return term in self.analyzer.term_counts(text)

        return audit_search_result(
            doc_ids,
            list(terms),
            document_exists=exists,
            document_contains=contains,
        )

    @property
    def incidents(self):
        """Global incident log on the coordinator WORM (lazily created)."""
        if self._incidents is None:
            from repro.core.incidents import IncidentLog

            self._incidents = IncidentLog(self.coordinator, INCIDENT_FILE)
        return self._incidents

    def search_with_incident_handling(
        self, query, *, top_k: int = 10, trace=None
    ):
        """Search, verify, and quarantine any exposed stuffing globally.

        Mirrors the unsharded engine's Section-6 handling: fabricated
        IDs (no document-map record, or a mapped document that was never
        committed and never disposed) are quarantined in the
        coordinator's incident log; keyword-mismatch plants are excluded
        from this result only.  Returns ``(results, report)``.
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        raw = self.search(
            query,
            top_k=top_k + len(self.incidents.quarantined_doc_ids),
            verify=False,
            trace=trace,
        )
        candidates = [r for r in raw if not self.incidents.is_quarantined(r.doc_id)]
        report = self.verify_results([r.doc_id for r in candidates], query.terms)
        if not report.ok:
            def fabricated(global_id: int) -> bool:
                if not self.router.has(global_id):
                    return True
                shard_id, local_id = self.router.to_local(global_id)
                shard = self.shards[shard_id]
                if shard.documents.exists(local_id):
                    return False
                retention = shard._retention_if_any()
                return retention is None or not retention.is_disposed(local_id)

            def mismatched(global_id: int) -> bool:
                if not self.documents.exists(global_id):
                    return False
                text = self.documents.get(global_id).text
                counts = self.analyzer.term_counts(text)
                return not any(t in counts for t in query.terms)

            fabricated_ids = [r.doc_id for r in candidates if fabricated(r.doc_id)]
            mismatch_ids = {r.doc_id for r in candidates if mismatched(r.doc_id)}
            self.incidents.record(
                "posting-stuffing",
                location=f"query {query.terms!r}",
                invariant="result-document-consistency",
                description="; ".join(report.violations),
                quarantine_doc_ids=fabricated_ids,
            )
            candidates = [
                r
                for r in candidates
                if not self.incidents.is_quarantined(r.doc_id)
                and r.doc_id not in mismatch_ids
            ]
        return candidates[:top_k], report

    # ------------------------------------------------------------------
    # tail mode (write–read decoupling, per shard)
    # ------------------------------------------------------------------
    @property
    def tail_enabled(self) -> bool:
        """Whether the shards run in tail mode (``tail_max_docs`` set)."""
        return self.config.tail_max_docs is not None

    def seal_tail(self) -> List[Optional[int]]:
        """Seal every shard's tail into a segment.

        Returns one segment number per shard (``None`` for shards whose
        tail was empty).  Caller holds the writer side of whatever lock
        guards ingest — sealing mutates the tail exactly like ingest
        does.
        """
        return [shard.seal_tail() for shard in self.shards]

    def merge_segments(self) -> List[Optional[int]]:
        """Merge each shard's live segments into one (``None`` if <2)."""
        return [shard.merge_segments() for shard in self.shards]

    def segments_info(self) -> Dict[str, object]:
        """Per-shard segment/tail layout, plus summed tail counters."""
        per_shard = [shard.segments_info() for shard in self.shards]
        return {
            "tail_enabled": self.tail_enabled,
            "tail_docs": sum(info["tail_docs"] for info in per_shard),
            "tail_postings": sum(info["tail_postings"] for info in per_shard),
            "segments_live": sum(len(info["segments"]) for info in per_shard),
            "shards": per_shard,
        }

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def dispose_expired(self, *, now: Optional[int] = None) -> List[int]:
        """Dispose expired documents on every shard; returns global IDs."""
        if now is None:
            now = self._clock
        disposed: List[int] = []
        for shard_id, shard in enumerate(self.shards):
            for local_id in shard.dispose_expired(now=now):
                disposed.append(self.router.to_global(shard_id, local_id))
        return sorted(disposed)

    # ------------------------------------------------------------------
    # operational statistics
    # ------------------------------------------------------------------
    def read_cache_stats(self) -> Optional[Dict[str, object]]:
        """Aggregated read-cache counters across shards (``None`` cache-off).

        Each shard owns an independent :class:`~repro.search.readcache.ReadCache`
        (created from the shared config), so coherence under
        :class:`~repro.sharding.batch.BatchIngestor` appends is local to
        each shard: a batch routed to shard ``i`` invalidates exactly
        shard ``i``'s affected entries.  Tier counters are summed here;
        ``per_shard`` keeps the unsummed dicts for drill-down.
        """
        per_shard = [shard.read_cache_stats() for shard in self.shards]
        if all(stats is None for stats in per_shard):
            return None
        present = [stats for stats in per_shard if stats is not None]
        summed: Dict[str, object] = {"policy": present[0]["policy"]}
        for tier in ("blocks", "results", "jump_memo"):
            summed[tier] = {
                key: sum(stats[tier][key] for stats in present)
                for key in present[0][tier]
                if key != "hit_rate"
            }
        summed["per_shard"] = per_shard
        return summed

    def archive_stats(self) -> Dict[str, object]:
        """Aggregated operational summary across shards.

        Numeric fields are sums over the shard archives (``vocabulary``
        sums per-shard lexicons, so terms present on several shards are
        counted once per shard).  Coordinator state (document map,
        global incidents) is reported alongside.
        """
        per_shard = [shard.archive_stats() for shard in self.shards]
        summed = {
            key: sum(stats[key] for stats in per_shard)
            for key in (
                "documents",
                "vocabulary",
                "physical_lists",
                "postings",
                "posting_blocks",
                "jump_pointers",
                "commit_log_records",
                "incidents",
                "dispositions",
                "tail_docs",
                "tail_postings",
                "segments_live",
                "manifest_records",
                "device_bytes",
            )
        }
        if self._incidents is not None or self.coordinator.device.exists(INCIDENT_FILE):
            summed["incidents"] += len(self.incidents)
        stats: Dict[str, object] = {"shards": self.num_shards}
        stats.update(summed)
        stats["shard_documents"] = [
            self.router.shard_size(i) for i in range(self.num_shards)
        ]
        stats["jump_index"] = per_shard[0]["jump_index"]
        stats["device_bytes"] = (
            summed["device_bytes"] + self.coordinator.device.total_bytes()
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSearchEngine(shards={self.num_shards}, "
            f"docs={len(self.router)})"
        )
