"""Parallel query fan-out over shards with globally consistent ranking.

A query against a sharded archive runs in three stages:

1. **fan-out** — every shard matches the query independently (its own
   merged lists, jump indexes, commit-time index, and disposition log),
   on a thread pool, producing per-shard candidate sets;
2. **global re-rank** — candidates are scored with the engine's
   configured scorer (BM25 or cosine) under *aggregated* collection
   statistics (global document count, global document frequencies,
   global average length), so a document's score does not depend on
   which shard it landed on;
3. **k-way merge** — per-shard ranked runs, already sorted by
   ``(-score, global_id)``, are merged with a heap
   (:func:`heapq.merge`) and cut at ``top_k``.

Because the aggregated statistics equal what a single unsharded engine
would compute over the same corpus, a K-shard archive returns the same
result set — and the same scores — as a 1-shard archive (property-tested
in ``tests/sharding``).
"""

from __future__ import annotations

import heapq
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import repro.errors as _errors
from repro.errors import WorkloadError
from repro.observability.metrics import MetricsRegistry
from repro.search.analyzer import Analyzer
from repro.search.engine import EngineConfig, SearchResult
from repro.search.query import Query, parse_query
from repro.search.ranking import BM25Scorer, CollectionStats, CosineScorer
from repro.sharding.router import ShardRouter


@dataclass(frozen=True)
class AggregatedTermStats:
    """Collection-level statistics aggregated across every shard.

    Term keys are *positions in the query's term tuple* — a shard-neutral
    vocabulary, since each shard grows its own term-ID space.
    """

    df: Dict[int, int]
    num_docs: int
    avg_doc_length: float


class _ShardScopedStats:
    """A :class:`CollectionStats`-compatible view for scoring one shard.

    Global quantities (document count, document frequencies, average
    length) come from the cross-shard aggregate; per-document lengths are
    answered by the owning shard's own statistics, keyed by local ID.
    """

    __slots__ = ("df", "_num_docs", "_avg_doc_length", "_local")

    def __init__(self, aggregate: AggregatedTermStats, local: CollectionStats):
        self.df = aggregate.df
        self._num_docs = aggregate.num_docs
        self._avg_doc_length = aggregate.avg_doc_length
        self._local = local

    @property
    def num_docs(self) -> int:
        return self._num_docs

    @property
    def avg_doc_length(self) -> float:
        return self._avg_doc_length

    def doc_length(self, doc_id: int) -> int:
        return self._local.doc_length(doc_id)


def _merge_key(result: SearchResult) -> Tuple[float, int]:
    return (-result.score, result.doc_id)


class ParallelQueryExecutor:
    """Fans queries out to every shard and merges the ranked runs.

    Parameters
    ----------
    shards:
        The per-shard :class:`TrustworthySearchEngine` instances.
    router:
        Translates shard-local document IDs back to global IDs.
    config:
        Engine configuration (selects the ranking scorer).
    max_workers:
        Thread-pool width; defaults to one thread per shard.  The pool
        is created lazily on the first multi-shard query, so ingest-only
        sessions never spawn threads.
    analyzer:
        Query analyzer; defaults to a fresh :class:`Analyzer` matching
        the shard engines' defaults.
    metrics:
        Metrics registry; the sharded engine passes the registry its
        shards share, so fan-out timings land next to per-shard engine
        series.  Defaults to a fresh registry.
    """

    def __init__(
        self,
        shards: Sequence,
        router: ShardRouter,
        config: EngineConfig,
        *,
        max_workers: Optional[int] = None,
        analyzer: Optional[Analyzer] = None,
        metrics=None,
    ):
        self.shards = list(shards)
        self.router = router
        self.config = config
        self.analyzer = analyzer or Analyzer()
        self._max_workers = max_workers or max(1, len(self.shards))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_on = bool(self.metrics.enabled)
        self._c_fanout = self.metrics.counter(
            "repro_fanout_queries_total",
            "Queries fanned out across shards by the executor",
        )
        queue_family = self.metrics.histogram(
            "repro_shard_queue_seconds",
            "Time a shard sub-query waited for a fan-out worker",
            labels=("shard",),
        )
        run_family = self.metrics.histogram(
            "repro_shard_run_seconds",
            "Time a shard sub-query spent matching and scoring",
            labels=("shard",),
        )
        self._queue_series = [
            queue_family.labels(shard=i) for i in range(len(self.shards))
        ]
        self._run_series = [
            run_family.labels(shard=i) for i in range(len(self.shards))
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The (lazily created) fan-out thread pool.

        Raises :class:`~repro.errors.WorkloadError` after :meth:`close`:
        silently respawning the pool would resurrect an executor its
        owner already released (and leak the new pool, since the owner
        will not close twice).
        """
        if self._closed:
            raise WorkloadError(
                "query executor is closed; open a new engine to run queries"
            )
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="shard-query",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent; queries now error)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def search(self, query, *, top_k: int = 10, trace=None) -> List[SearchResult]:
        """Run ``query`` across all shards; returns global ranked results.

        With a :class:`~repro.observability.trace.QueryTrace` attached,
        each shard contributes a ``shard`` span (recorded from its worker
        thread) whose ``queue_seconds`` attribute separates pool wait
        from execution; the final heap merge gets a ``merge`` span.
        """
        if self._closed:
            raise WorkloadError(
                "query executor is closed; open a new engine to run queries"
            )
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        self._c_fanout.inc()
        aggregate = self.aggregate_term_stats(query.terms)
        submitted = perf_counter()
        if len(self.shards) == 1:
            runs = [self._timed_shard_run(0, query, aggregate, submitted, trace)]
        else:
            futures = [
                self.pool.submit(
                    self._timed_shard_run, i, query, aggregate, submitted, trace
                )
                for i in range(len(self.shards))
            ]
            runs = []
            shard_index = -1
            try:
                for shard_index, future in enumerate(futures):
                    runs.append(future.result())
            except Exception as exc:
                # One shard failed: stop sibling shards that have not
                # started, then surface the failure with the shard
                # attached (type-preserving, so TamperDetectedError
                # handling upstream keeps working).
                for pending in futures:
                    pending.cancel()
                try:
                    exc.shard_index = shard_index
                except AttributeError:  # pragma: no cover - slotted exc
                    pass
                if hasattr(exc, "add_note"):  # Python 3.11+
                    exc.add_note(f"raised by shard {shard_index} during query fan-out")
                raise
        merge_start = perf_counter()
        merged = heapq.merge(*runs, key=_merge_key)
        results = list(islice(merged, top_k))
        if trace is not None:
            trace.record(
                "merge",
                start=merge_start,
                end=perf_counter(),
                runs=len(runs),
                results=len(results),
            )
        return results

    def aggregate_term_stats(
        self, terms: Sequence[str]
    ) -> AggregatedTermStats:
        """Cross-shard collection statistics for one query's terms.

        Sums per-shard document frequencies, document counts, and total
        lengths — exactly the statistics a single unsharded engine would
        hold for the same corpus.
        """
        df: Dict[int, int] = {}
        for position, term in enumerate(terms):
            total = 0
            for shard in self.shards:
                term_id = shard.term_id(term)
                if term_id is not None:
                    total += shard.stats.df.get(term_id, 0)
            df[position] = total
        num_docs = sum(shard.stats.num_docs for shard in self.shards)
        total_length = sum(shard.stats.total_length for shard in self.shards)
        if num_docs:
            avg_doc_length = max(1.0, total_length / num_docs)
        else:
            avg_doc_length = 1.0
        return AggregatedTermStats(
            df=df, num_docs=num_docs, avg_doc_length=avg_doc_length
        )

    def _scorer(self, stats):
        if self.config.ranking == "bm25":
            return BM25Scorer(stats)
        return CosineScorer(stats)

    def _timed_shard_run(
        self,
        shard_index: int,
        query: Query,
        aggregate: AggregatedTermStats,
        submitted: float,
        trace,
    ) -> List[SearchResult]:
        """Run one shard sub-query, splitting pool-queue wait from execution."""
        run_start = perf_counter()
        result = self._shard_run(shard_index, query, aggregate)
        run_end = perf_counter()
        if self._metrics_on:
            self._queue_series[shard_index].observe(run_start - submitted)
            self._run_series[shard_index].observe(run_end - run_start)
        if trace is not None:
            trace.record(
                "shard",
                start=run_start,
                end=run_end,
                shard=shard_index,
                queue_seconds=run_start - submitted,
                results=len(result),
            )
        return result

    def _shard_run(
        self,
        shard_index: int,
        query: Query,
        aggregate: AggregatedTermStats,
    ) -> List[SearchResult]:
        """Match + globally score one shard; returns a sorted run."""
        shard = self.shards[shard_index]
        candidates: Mapping[int, Mapping[int, int]] = shard.match(query)
        if not candidates:
            return []
        position_of: Dict[int, int] = {}
        for position, term in enumerate(query.terms):
            term_id = shard.term_id(term)
            if term_id is not None:
                position_of[term_id] = position
        scorer = self._scorer(_ShardScopedStats(aggregate, shard.stats))
        to_global = self.router.to_global
        run: List[SearchResult] = []
        for local_id, freqs in candidates.items():
            term_freqs = {
                position_of[term_id]: tf
                for term_id, tf in freqs.items()
                if term_id in position_of
            }
            run.append(
                SearchResult(
                    doc_id=to_global(shard_index, local_id),
                    score=scorer.score(local_id, term_freqs),
                )
            )
        run.sort(key=_merge_key)
        return run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "pooled"
        return (
            f"ParallelQueryExecutor(shards={len(self.shards)}, "
            f"workers={self._max_workers}, {state})"
        )


# ----------------------------------------------------------------------
# process-level fan-out
# ----------------------------------------------------------------------
def _open_shard_engine(shard_path: str, config: EngineConfig):
    """Reopen one shard's journal as a read-serving engine (worker side).

    The journaled device replays committed state on open and only writes
    on mutation; a search-only worker never mutates, so reopening the
    parent's shard journal is conflict-free and yields a point-in-time
    snapshot of the shard.
    """
    from repro.observability.metrics import NullMetricsRegistry
    from repro.search.engine import TrustworthySearchEngine
    from repro.worm.persistent import JournaledWormDevice
    from repro.worm.storage import CachedWormStore

    device = JournaledWormDevice(shard_path, fsync=False, group_commit=1)
    store = CachedWormStore(None, device=device)
    return TrustworthySearchEngine(
        config, store=store, metrics=NullMetricsRegistry()
    )


def _shard_worker_main(conn, shard_index: int, shard_path: str, config) -> None:
    """Worker process entry point: serve stats/query requests over a pipe.

    Protocol (parent -> worker / worker -> parent), one reply per
    request, all payloads plain picklable values:

    * ``("stats", terms)`` -> ``("ok", (df_list, num_docs, total_length))``
    * ``("query", query, aggregate)`` ->
      ``("ok", ([(local_id, score), ...], run_seconds))`` with the run
      sorted by ``(-score, local_id)``
    * ``("close",)`` -> worker exits (no reply)
    * any failure -> ``("error", exception_type_name, message)``
    """
    try:
        engine = _open_shard_engine(shard_path, config)
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        conn.send(("error", type(exc).__name__, str(exc)))
        conn.close()
        return
    conn.send(("ok", len(engine.documents)))
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op = request[0]
            if op == "close":
                break
            try:
                if op == "stats":
                    terms = request[1]
                    df = []
                    for term in terms:
                        term_id = engine.term_id(term)
                        df.append(
                            engine.stats.df.get(term_id, 0)
                            if term_id is not None
                            else 0
                        )
                    conn.send(
                        ("ok", (df, engine.stats.num_docs, engine.stats.total_length))
                    )
                elif op == "query":
                    _, query, aggregate = request
                    started = perf_counter()
                    run = _score_shard_locally(engine, query, aggregate, config)
                    conn.send(("ok", (run, perf_counter() - started)))
                else:
                    conn.send(
                        ("error", "WorkloadError", f"unknown request {op!r}")
                    )
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", type(exc).__name__, str(exc)))
    finally:
        conn.close()


def _score_shard_locally(
    engine, query: Query, aggregate: AggregatedTermStats, config
) -> List[Tuple[int, float]]:
    """Match + globally score one shard; shard-local ``(id, score)`` run.

    The same arithmetic as :meth:`ParallelQueryExecutor._shard_run` —
    aggregated df/num_docs/avg length, shard-local document lengths —
    but scored through the bulk :meth:`score_candidates` path and kept
    in local-ID space (the parent owns the router).  Sorting by
    ``(-score, local_id)`` matches the global sort because local IDs are
    assigned in the same arrival order as global IDs within a shard.
    """
    candidates = engine.match(query)
    if not candidates:
        return []
    position_of: Dict[int, int] = {}
    for position, term in enumerate(query.terms):
        term_id = engine.term_id(term)
        if term_id is not None:
            position_of[term_id] = position
    projected: Dict[int, Dict[int, int]] = {}
    for local_id, freqs in candidates.items():
        projected[local_id] = {
            position_of[term_id]: tf
            for term_id, tf in freqs.items()
            if term_id in position_of
        }
    stats = _ShardScopedStats(aggregate, engine.stats)
    scorer = (
        BM25Scorer(stats) if config.ranking == "bm25" else CosineScorer(stats)
    )
    run = scorer.score_candidates(projected)
    run.sort(key=lambda pair: (-pair[1], pair[0]))
    return run


class ProcessShardExecutor:
    """Fans queries out to per-process shard engines (GIL-free scoring).

    Each shard gets a dedicated worker process (``spawn`` start method)
    that reopens the shard's WORM journal read-only-in-practice and
    serves a small request protocol over a pipe.  Matching and bulk
    scoring then run on separate interpreters — true parallelism where
    the thread executor serializes CPU-bound work behind the GIL — at
    the cost of per-query serialization (query + aggregate out, ranked
    run back).

    Statistics aggregation, global-ID translation, the heap merge, and
    result verification all stay in the parent, using the identical
    arithmetic of :class:`ParallelQueryExecutor`, so both executors
    return byte-identical results over the same committed state.

    **Snapshot semantics**: workers replay their journal at spawn time
    and see nothing committed afterwards.  Call :meth:`refresh` after
    ingest to respawn workers against the new journal tail.  Lifecycle
    mirrors the thread executor: lazy spawn on first query,
    :meth:`close` is idempotent, queries after close raise.
    """

    def __init__(
        self,
        shard_paths: Sequence[str],
        router: ShardRouter,
        config: EngineConfig,
        *,
        analyzer: Optional[Analyzer] = None,
        metrics=None,
    ):
        if not shard_paths:
            raise WorkloadError("process executor needs at least one shard path")
        self.shard_paths = [str(path) for path in shard_paths]
        self.router = router
        self.config = config
        self.analyzer = analyzer or Analyzer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_on = bool(self.metrics.enabled)
        self._c_fanout = self.metrics.counter(
            "repro_fanout_queries_total",
            "Queries fanned out across shards by the executor",
        )
        queue_family = self.metrics.histogram(
            "repro_shard_queue_seconds",
            "Time a shard sub-query waited for a fan-out worker",
            labels=("shard",),
        )
        run_family = self.metrics.histogram(
            "repro_shard_run_seconds",
            "Time a shard sub-query spent matching and scoring",
            labels=("shard",),
        )
        self._queue_series = [
            queue_family.labels(shard=i) for i in range(len(self.shard_paths))
        ]
        self._run_series = [
            run_family.labels(shard=i) for i in range(len(self.shard_paths))
        ]
        self._workers: Optional[List[Tuple[object, object]]] = None
        self._closed = False
        # The pipe protocol is strictly request/reply per worker; one
        # lock serializes whole fan-out rounds so concurrent callers
        # (service worker threads, load-test clients) cannot interleave
        # messages.  Shard-level parallelism is across processes, inside
        # a round, so this costs concurrency only between queries.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_workers(self) -> None:
        if self._closed:
            raise WorkloadError(
                "query executor is closed; open a new engine to run queries"
            )
        if self._workers is not None:
            return
        context = multiprocessing.get_context("spawn")
        workers: List[Tuple[object, object]] = []
        for index, path in enumerate(self.shard_paths):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, index, path, self.config),
                name=f"shard-query-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((process, parent_conn))
        self._workers = workers
        for index, (_process, conn) in enumerate(workers):
            self._receive(index, conn)  # ready handshake (replay done)

    def refresh(self) -> None:
        """Respawn workers so the next query sees the current journals."""
        with self._lock:
            self._stop_workers()

    def close(self) -> None:
        """Terminate the worker processes (idempotent; queries now error)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stop_workers()

    def _stop_workers(self) -> None:
        workers, self._workers = self._workers, None
        if not workers:
            return
        for process, conn in workers:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
            conn.close()
        for process, _conn in workers:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def search(self, query, *, top_k: int = 10, trace=None) -> List[SearchResult]:
        """Run ``query`` across all shard workers; global ranked results.

        Stage structure and trace spans mirror the thread executor: one
        ``shard`` span per worker (``queue_seconds`` = pipe round-trip
        minus in-worker execution), then a ``merge`` span.
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        with self._lock:
            return self._search_locked(query, top_k=top_k, trace=trace)

    def _search_locked(
        self, query: Query, *, top_k: int, trace
    ) -> List[SearchResult]:
        self._ensure_workers()
        self._c_fanout.inc()
        aggregate = self._aggregate_from_workers(query.terms)
        submitted = perf_counter()
        for _process, conn in self._workers:
            conn.send(("query", query, aggregate))
        runs: List[List[SearchResult]] = []
        to_global = self.router.to_global
        for index, (_process, conn) in enumerate(self._workers):
            local_run, run_seconds = self._receive(index, conn)
            received = perf_counter()
            run = [
                SearchResult(doc_id=to_global(index, local_id), score=score)
                for local_id, score in local_run
            ]
            run.sort(key=_merge_key)
            runs.append(run)
            queue_seconds = max(0.0, received - submitted - run_seconds)
            if self._metrics_on:
                self._queue_series[index].observe(queue_seconds)
                self._run_series[index].observe(run_seconds)
            if trace is not None:
                trace.record(
                    "shard",
                    start=submitted,
                    end=received,
                    shard=index,
                    queue_seconds=queue_seconds,
                    results=len(run),
                )
        merge_start = perf_counter()
        merged = heapq.merge(*runs, key=_merge_key)
        results = list(islice(merged, top_k))
        if trace is not None:
            trace.record(
                "merge",
                start=merge_start,
                end=perf_counter(),
                runs=len(runs),
                results=len(results),
            )
        return results

    def aggregate_term_stats(self, terms: Sequence[str]) -> AggregatedTermStats:
        """Cross-shard statistics for one query's terms (worker-reported).

        Same sums as :meth:`ParallelQueryExecutor.aggregate_term_stats`,
        sourced from the workers' snapshots so scoring stays internally
        consistent with what the workers will match.
        """
        with self._lock:
            self._ensure_workers()
            return self._aggregate_from_workers(terms)

    def _aggregate_from_workers(
        self, terms: Sequence[str]
    ) -> AggregatedTermStats:
        terms = list(terms)
        for _process, conn in self._workers:
            conn.send(("stats", terms))
        df: Dict[int, int] = {position: 0 for position in range(len(terms))}
        num_docs = 0
        total_length = 0
        for index, (_process, conn) in enumerate(self._workers):
            shard_df, shard_docs, shard_length = self._receive(index, conn)
            for position, count in enumerate(shard_df):
                df[position] += count
            num_docs += shard_docs
            total_length += shard_length
        if num_docs:
            avg_doc_length = max(1.0, total_length / num_docs)
        else:
            avg_doc_length = 1.0
        return AggregatedTermStats(
            df=df, num_docs=num_docs, avg_doc_length=avg_doc_length
        )

    def _receive(self, shard_index: int, conn):
        """One protocol reply; re-raises worker-side failures by type."""
        try:
            reply = conn.recv()
        except EOFError:
            raise WorkloadError(
                f"shard {shard_index} query worker exited unexpectedly"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        _, type_name, message = reply
        exc_type = getattr(_errors, type_name, None)
        if isinstance(exc_type, type) and issubclass(exc_type, Exception):
            exc = exc_type(message)
        else:
            exc = WorkloadError(f"{type_name}: {message}")
        exc.shard_index = shard_index
        if hasattr(exc, "add_note"):  # Python 3.11+
            exc.add_note(
                f"raised by shard {shard_index} during process fan-out"
            )
        raise exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._closed:
            state = "closed"
        elif self._workers is None:
            state = "idle"
        else:
            state = "spawned"
        return (
            f"ProcessShardExecutor(shards={len(self.shard_paths)}, {state})"
        )
