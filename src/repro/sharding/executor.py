"""Parallel query fan-out over shards with globally consistent ranking.

A query against a sharded archive runs in three stages:

1. **fan-out** — every shard matches the query independently (its own
   merged lists, jump indexes, commit-time index, and disposition log),
   on a thread pool, producing per-shard candidate sets;
2. **global re-rank** — candidates are scored with the engine's
   configured scorer (BM25 or cosine) under *aggregated* collection
   statistics (global document count, global document frequencies,
   global average length), so a document's score does not depend on
   which shard it landed on;
3. **k-way merge** — per-shard ranked runs, already sorted by
   ``(-score, global_id)``, are merged with a heap
   (:func:`heapq.merge`) and cut at ``top_k``.

Because the aggregated statistics equal what a single unsharded engine
would compute over the same corpus, a K-shard archive returns the same
result set — and the same scores — as a 1-shard archive (property-tested
in ``tests/sharding``).
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.search.analyzer import Analyzer
from repro.search.engine import EngineConfig, SearchResult
from repro.search.query import Query, parse_query
from repro.search.ranking import BM25Scorer, CollectionStats, CosineScorer
from repro.sharding.router import ShardRouter


@dataclass(frozen=True)
class AggregatedTermStats:
    """Collection-level statistics aggregated across every shard.

    Term keys are *positions in the query's term tuple* — a shard-neutral
    vocabulary, since each shard grows its own term-ID space.
    """

    df: Dict[int, int]
    num_docs: int
    avg_doc_length: float


class _ShardScopedStats:
    """A :class:`CollectionStats`-compatible view for scoring one shard.

    Global quantities (document count, document frequencies, average
    length) come from the cross-shard aggregate; per-document lengths are
    answered by the owning shard's own statistics, keyed by local ID.
    """

    __slots__ = ("df", "_num_docs", "_avg_doc_length", "_local")

    def __init__(self, aggregate: AggregatedTermStats, local: CollectionStats):
        self.df = aggregate.df
        self._num_docs = aggregate.num_docs
        self._avg_doc_length = aggregate.avg_doc_length
        self._local = local

    @property
    def num_docs(self) -> int:
        return self._num_docs

    @property
    def avg_doc_length(self) -> float:
        return self._avg_doc_length

    def doc_length(self, doc_id: int) -> int:
        return self._local.doc_length(doc_id)


def _merge_key(result: SearchResult) -> Tuple[float, int]:
    return (-result.score, result.doc_id)


class ParallelQueryExecutor:
    """Fans queries out to every shard and merges the ranked runs.

    Parameters
    ----------
    shards:
        The per-shard :class:`TrustworthySearchEngine` instances.
    router:
        Translates shard-local document IDs back to global IDs.
    config:
        Engine configuration (selects the ranking scorer).
    max_workers:
        Thread-pool width; defaults to one thread per shard.  The pool
        is created lazily on the first multi-shard query, so ingest-only
        sessions never spawn threads.
    analyzer:
        Query analyzer; defaults to a fresh :class:`Analyzer` matching
        the shard engines' defaults.
    metrics:
        Metrics registry; the sharded engine passes the registry its
        shards share, so fan-out timings land next to per-shard engine
        series.  Defaults to a fresh registry.
    """

    def __init__(
        self,
        shards: Sequence,
        router: ShardRouter,
        config: EngineConfig,
        *,
        max_workers: Optional[int] = None,
        analyzer: Optional[Analyzer] = None,
        metrics=None,
    ):
        self.shards = list(shards)
        self.router = router
        self.config = config
        self.analyzer = analyzer or Analyzer()
        self._max_workers = max_workers or max(1, len(self.shards))
        self._pool: Optional[ThreadPoolExecutor] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_on = bool(self.metrics.enabled)
        self._c_fanout = self.metrics.counter(
            "repro_fanout_queries_total",
            "Queries fanned out across shards by the executor",
        )
        queue_family = self.metrics.histogram(
            "repro_shard_queue_seconds",
            "Time a shard sub-query waited for a fan-out worker",
            labels=("shard",),
        )
        run_family = self.metrics.histogram(
            "repro_shard_run_seconds",
            "Time a shard sub-query spent matching and scoring",
            labels=("shard",),
        )
        self._queue_series = [
            queue_family.labels(shard=i) for i in range(len(self.shards))
        ]
        self._run_series = [
            run_family.labels(shard=i) for i in range(len(self.shards))
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> ThreadPoolExecutor:
        """The (lazily created) fan-out thread pool."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="shard-query",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def search(self, query, *, top_k: int = 10, trace=None) -> List[SearchResult]:
        """Run ``query`` across all shards; returns global ranked results.

        With a :class:`~repro.observability.trace.QueryTrace` attached,
        each shard contributes a ``shard`` span (recorded from its worker
        thread) whose ``queue_seconds`` attribute separates pool wait
        from execution; the final heap merge gets a ``merge`` span.
        """
        if isinstance(query, str):
            query = parse_query(query, analyzer=self.analyzer)
        self._c_fanout.inc()
        aggregate = self.aggregate_term_stats(query.terms)
        submitted = perf_counter()
        if len(self.shards) == 1:
            runs = [self._timed_shard_run(0, query, aggregate, submitted, trace)]
        else:
            futures = [
                self.pool.submit(
                    self._timed_shard_run, i, query, aggregate, submitted, trace
                )
                for i in range(len(self.shards))
            ]
            runs = []
            shard_index = -1
            try:
                for shard_index, future in enumerate(futures):
                    runs.append(future.result())
            except Exception as exc:
                # One shard failed: stop sibling shards that have not
                # started, then surface the failure with the shard
                # attached (type-preserving, so TamperDetectedError
                # handling upstream keeps working).
                for pending in futures:
                    pending.cancel()
                try:
                    exc.shard_index = shard_index
                except AttributeError:  # pragma: no cover - slotted exc
                    pass
                if hasattr(exc, "add_note"):  # Python 3.11+
                    exc.add_note(f"raised by shard {shard_index} during query fan-out")
                raise
        merge_start = perf_counter()
        merged = heapq.merge(*runs, key=_merge_key)
        results = list(islice(merged, top_k))
        if trace is not None:
            trace.record(
                "merge",
                start=merge_start,
                end=perf_counter(),
                runs=len(runs),
                results=len(results),
            )
        return results

    def aggregate_term_stats(
        self, terms: Sequence[str]
    ) -> AggregatedTermStats:
        """Cross-shard collection statistics for one query's terms.

        Sums per-shard document frequencies, document counts, and total
        lengths — exactly the statistics a single unsharded engine would
        hold for the same corpus.
        """
        df: Dict[int, int] = {}
        for position, term in enumerate(terms):
            total = 0
            for shard in self.shards:
                term_id = shard.term_id(term)
                if term_id is not None:
                    total += shard.stats.df.get(term_id, 0)
            df[position] = total
        num_docs = sum(shard.stats.num_docs for shard in self.shards)
        total_length = sum(shard.stats.total_length for shard in self.shards)
        if num_docs:
            avg_doc_length = max(1.0, total_length / num_docs)
        else:
            avg_doc_length = 1.0
        return AggregatedTermStats(
            df=df, num_docs=num_docs, avg_doc_length=avg_doc_length
        )

    def _scorer(self, stats):
        if self.config.ranking == "bm25":
            return BM25Scorer(stats)
        return CosineScorer(stats)

    def _timed_shard_run(
        self,
        shard_index: int,
        query: Query,
        aggregate: AggregatedTermStats,
        submitted: float,
        trace,
    ) -> List[SearchResult]:
        """Run one shard sub-query, splitting pool-queue wait from execution."""
        run_start = perf_counter()
        result = self._shard_run(shard_index, query, aggregate)
        run_end = perf_counter()
        if self._metrics_on:
            self._queue_series[shard_index].observe(run_start - submitted)
            self._run_series[shard_index].observe(run_end - run_start)
        if trace is not None:
            trace.record(
                "shard",
                start=run_start,
                end=run_end,
                shard=shard_index,
                queue_seconds=run_start - submitted,
                results=len(result),
            )
        return result

    def _shard_run(
        self,
        shard_index: int,
        query: Query,
        aggregate: AggregatedTermStats,
    ) -> List[SearchResult]:
        """Match + globally score one shard; returns a sorted run."""
        shard = self.shards[shard_index]
        candidates: Mapping[int, Mapping[int, int]] = shard.match(query)
        if not candidates:
            return []
        position_of: Dict[int, int] = {}
        for position, term in enumerate(query.terms):
            term_id = shard.term_id(term)
            if term_id is not None:
                position_of[term_id] = position
        scorer = self._scorer(_ShardScopedStats(aggregate, shard.stats))
        to_global = self.router.to_global
        run: List[SearchResult] = []
        for local_id, freqs in candidates.items():
            term_freqs = {
                position_of[term_id]: tf
                for term_id, tf in freqs.items()
                if term_id in position_of
            }
            run.append(
                SearchResult(
                    doc_id=to_global(shard_index, local_id),
                    score=scorer.score(local_id, term_freqs),
                )
            )
        run.sort(key=_merge_key)
        return run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "pooled"
        return (
            f"ParallelQueryExecutor(shards={len(self.shards)}, "
            f"workers={self._max_workers}, {state})"
        )
