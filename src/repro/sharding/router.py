"""Stable document routing across independent engine shards.

Sharding partitions the archive into ``K`` fully independent
:class:`~repro.search.engine.TrustworthySearchEngine` instances.  Each
shard assigns its *own* monotonically increasing local document IDs, so
every per-shard trust invariant of the paper — posting-list
monotonicity, write-once jump-pointer placement, commit-log ordering —
holds shard-locally exactly as it does in the unsharded engine.

What makes the partitioned archive *globally* trustworthy is the
document map maintained here: an append-only WORM file recording one
``global_id shard_id local_id`` line per committed document.  The map is
self-verifying, because every field is recomputable by an auditor:

* global IDs are dense (record ``n`` carries global ID ``n``);
* the shard is a pure function of the global ID (:func:`stable_shard`),
  so a record claiming a different placement is tampering, not drift;
* local IDs count up per shard (record ``n`` for shard ``s`` carries the
  number of earlier records routed to ``s``).

A regulator can therefore rebuild — or dispute — the entire global
mapping from the WORM map alone; Mala gains nothing by editing it, and
she cannot edit it anyway (it is append-only on WORM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import TamperDetectedError, WorkloadError
from repro.worm.storage import CachedWormStore

#: Default WORM file holding the global document map.
MAP_FILE = "shard/doc-map"

_MASK = 0xFFFFFFFFFFFFFFFF


def stable_shard(global_id: int, num_shards: int) -> int:
    """Deterministic shard for a global document ID (splitmix64 finalizer).

    Python's hash of a small int is the identity, which would stripe
    consecutive IDs round-robin and make shard membership trivially
    predictable runs of the ingest order; an avalanche mix decorrelates
    placement from arrival order while staying stable across processes,
    platforms, and sessions (no ``PYTHONHASHSEED`` dependence).
    """
    z = (global_id + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    z ^= z >> 31
    return z % num_shards


@dataclass(frozen=True)
class ShardAssignment:
    """One routed document: its global ID and shard-local placement."""

    global_id: int
    shard_id: int
    local_id: int


class ShardRouter:
    """Allocates global document IDs and maps them to shard-local IDs.

    Parameters
    ----------
    store:
        Coordinator WORM store holding the document map (typically the
        archive's main journal, separate from the shard journals).
    num_shards:
        Number of shards ``K``; must match across sessions (the map's
        placement invariant is checked against it on restore).
    map_file:
        WORM file name of the document map.
    """

    def __init__(
        self,
        store: CachedWormStore,
        num_shards: int,
        *,
        map_file: str = MAP_FILE,
    ):
        if num_shards <= 0:
            raise WorkloadError(f"num_shards must be positive, got {num_shards}")
        self.store = store
        self.num_shards = num_shards
        self.map_file = map_file
        self._file = store.ensure_file(map_file)
        #: global_id -> shard_id (dense, index == global_id).
        self._shard_of: List[int] = []
        #: global_id -> local_id (parallel to ``_shard_of``).
        self._local_of: List[int] = []
        #: shard_id -> [global ids in local-id order].
        self._globals: List[List[int]] = [[] for _ in range(num_shards)]
        if self._file.num_blocks:
            self._restore()

    # ------------------------------------------------------------------
    # WORM map
    # ------------------------------------------------------------------
    def _restore(self) -> None:
        """Rebuild the in-memory mapping from the WORM map (reopen path).

        Every record is re-checked against the map invariants, so a
        tampered map is detected at attach time rather than silently
        misrouting queries.
        """
        payload = b"".join(
            self.store.peek_block(self.map_file, b)
            for b in range(self._file.num_blocks)
        )
        for raw in payload.split(b"\n"):
            if not raw:
                continue
            try:
                fields = [int(x) for x in raw.split()]
                global_id, shard_id, local_id = fields
            except ValueError:
                raise TamperDetectedError(
                    f"unparseable document-map record {raw!r}",
                    location=f"doc map '{self.map_file}'",
                    invariant="doc-map-format",
                ) from None
            self._check_record(global_id, shard_id, local_id)
            self._admit(shard_id, local_id)

    def _check_record(
        self, global_id: int, shard_id: int, local_id: int
    ) -> None:
        where = f"doc map '{self.map_file}', record {len(self._shard_of)}"
        if global_id != len(self._shard_of):
            raise TamperDetectedError(
                f"global ID {global_id} where {len(self._shard_of)} was "
                f"expected (IDs are dense and ordered)",
                location=where,
                invariant="doc-map-density",
            )
        if not 0 <= shard_id < self.num_shards:
            raise TamperDetectedError(
                f"shard {shard_id} outside [0, {self.num_shards})",
                location=where,
                invariant="doc-map-placement",
            )
        if shard_id != stable_shard(global_id, self.num_shards):
            raise TamperDetectedError(
                f"document {global_id} recorded on shard {shard_id} but "
                f"hashes to shard "
                f"{stable_shard(global_id, self.num_shards)}",
                location=where,
                invariant="doc-map-placement",
            )
        if local_id != len(self._globals[shard_id]):
            raise TamperDetectedError(
                f"local ID {local_id} where shard {shard_id} expected "
                f"{len(self._globals[shard_id])} (local IDs are "
                f"per-shard monotonic)",
                location=where,
                invariant="doc-map-local-monotonicity",
            )

    def _admit(self, shard_id: int, local_id: int) -> None:
        global_id = len(self._shard_of)
        self._shard_of.append(shard_id)
        self._local_of.append(local_id)
        self._globals[shard_id].append(global_id)

    def verify(self) -> int:
        """Re-audit the committed WORM map; returns records checked.

        Raises
        ------
        TamperDetectedError
            If any stored record violates the map invariants.
        """
        fresh = ShardRouter(self.store, self.num_shards, map_file=self.map_file)
        if fresh._shard_of != self._shard_of:
            raise TamperDetectedError(
                "committed document map diverges from the session's "
                "in-memory mapping",
                location=f"doc map '{self.map_file}'",
                invariant="doc-map-consistency",
            )
        return len(fresh._shard_of)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self) -> ShardAssignment:
        """Route the next document: commit one map record to WORM."""
        global_id = len(self._shard_of)
        shard_id = stable_shard(global_id, self.num_shards)
        local_id = len(self._globals[shard_id])
        self._file.append_record(f"{global_id} {shard_id} {local_id}\n".encode("ascii"))
        self._admit(shard_id, local_id)
        return ShardAssignment(global_id, shard_id, local_id)

    def assign_many(self, count: int) -> List[ShardAssignment]:
        """Route ``count`` documents in global-ID order."""
        return [self.assign() for _ in range(count)]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shard_of)

    @property
    def num_documents(self) -> int:
        """Documents routed so far (== next global ID)."""
        return len(self._shard_of)

    def has(self, global_id: int) -> bool:
        """Whether ``global_id`` has a committed map record."""
        return 0 <= global_id < len(self._shard_of)

    def to_local(self, global_id: int) -> Tuple[int, int]:
        """``(shard_id, local_id)`` of a routed document."""
        if not self.has(global_id):
            raise WorkloadError(f"global doc ID {global_id} has no document-map record")
        return self._shard_of[global_id], self._local_of[global_id]

    def to_global(self, shard_id: int, local_id: int) -> int:
        """Global ID behind a shard-local document ID.

        Shard-local IDs with no map record — e.g. postings stuffed
        directly into a shard's lists — translate to a unique *negative*
        synthetic ID, so they flow through ranking and into result
        verification (where their lack of a WORM document exposes them)
        instead of crashing the query path.
        """
        if not 0 <= shard_id < self.num_shards:
            raise WorkloadError(f"shard {shard_id} outside [0, {self.num_shards})")
        shard_globals = self._globals[shard_id]
        if 0 <= local_id < len(shard_globals):
            return shard_globals[local_id]
        return -(1 + shard_id + local_id * self.num_shards)

    def shard_size(self, shard_id: int) -> int:
        """Documents routed to ``shard_id`` so far."""
        return len(self._globals[shard_id])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(g) for g in self._globals]
        return (
            f"ShardRouter(shards={self.num_shards}, docs={len(self)}, "
            f"sizes={sizes})"
        )
