"""Experiment harness regenerating every figure of the paper's evaluation.

One module per figure family:

* :mod:`repro.simulate.cache_sim` — Figure 2 (random I/Os per inserted
  document vs cache size, unmerged) and its merged-lists counterpart.
* :mod:`repro.simulate.merge_sim` — Figures 3(c)-3(i): workload-cost
  ratios under the merging strategies, learned-statistics variants, and
  per-query cost/slowdown distributions.
* :mod:`repro.simulate.jump_sim` — Figures 8(b) and 8(c): insert I/O with
  jump indexes and conjunctive query speedups.
* :mod:`repro.simulate.runtime` — Figure 4: *measured* (wall-clock)
  workload run-time ratios on a real scan path.
* :mod:`repro.simulate.workload_factory` — shared, cached construction of
  the scaled synthetic workload all experiments run on.
* :mod:`repro.simulate.report` — plain-text table/series rendering used
  by the benchmark harness to print the regenerated figures.

Scale: defaults are deliberately smaller than the paper's 1M-document /
300k-query workload so the whole suite runs in minutes of pure Python;
every entry point takes explicit size parameters for full-scale runs.
The figures are ratio/shape-valued, which down-scaling preserves (see
EXPERIMENTS.md for the paper-vs-measured record).
"""

from repro.simulate.report import format_series, format_table

__all__ = ["format_series", "format_table"]
