"""Figure 2: random I/Os per inserted document vs storage-cache size.

Reproduces the paper's cache simulation (Section 3): posting-list tail
blocks are cached in the storage server's (initially dirty) non-volatile
cache; a cache hit on an index-entry write costs nothing unless the
block fills (one write); a miss writes out the LRU block and reads the
needed one.

Two modes:

* :func:`ios_per_doc_unmerged` — one posting list per term: the Figure 2
  curve, which levels off slowly because Zipf-tail terms never stay
  cached and partial blocks are repeatedly written out;
* :func:`ios_per_doc_merged` — posting lists merged into ``M = cache
  blocks`` lists: every update hits the cache, converging to
  ``postings_per_doc / postings_per_block`` I/Os per document
  (Section 3's ≈1 I/O figure, the 20×/500× speedups of the abstract).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.merge import TermAssignment
from repro.core.posting import POSTING_SIZE
from repro.worm.cache import LRUBlockCache, cache_blocks_for_size
from repro.worm.iostats import IoStats


def _simulate(
    documents: Iterable,
    key_for_term,
    cache_blocks: Optional[int],
    entries_per_block: int,
) -> Tuple[IoStats, int]:
    """Shared tail-block cache simulation.

    ``key_for_term`` maps a term ID to its posting-list cache key (the
    term itself when unmerged; its merged-list ID otherwise).
    """
    io = IoStats()
    cache = LRUBlockCache(cache_blocks, io=io)
    tail_fill: Dict[int, int] = {}
    seen_docs = 0
    for doc in documents:
        seen_docs += 1
        for term in doc.term_ids:
            key = key_for_term(int(term))
            first_time = key not in tail_fill
            cache.access(key, fetch_on_miss=not first_time)
            fill = tail_fill.get(key, 0) + 1
            if fill >= entries_per_block:
                cache.note_block_full(key)
                fill = 0
            tail_fill[key] = fill
    return io, seen_docs


def ios_per_doc_unmerged(
    documents: Sequence,
    *,
    cache_size_bytes: int,
    block_size: int = 4096,
) -> float:
    """Average random I/Os per inserted document, one list per term.

    The Figure 2 simulation (the paper's Section 2.3 arithmetic uses
    4 KB blocks and 8-byte postings).
    """
    entries = block_size // POSTING_SIZE
    io, docs = _simulate(
        documents,
        key_for_term=lambda t: t,
        cache_blocks=cache_blocks_for_size(cache_size_bytes, block_size),
        entries_per_block=entries,
    )
    return io.total / max(1, docs)


def ios_per_doc_merged(
    documents: Sequence,
    assignment: TermAssignment,
    *,
    cache_size_bytes: int,
    block_size: int = 8192,
) -> float:
    """Average random I/Os per inserted document with merged lists.

    With ``assignment.num_lists <= cache blocks``, every tail append
    hits; the only I/O left is the write when a block fills.
    """
    entries = block_size // POSTING_SIZE
    list_ids = assignment.list_ids
    io, docs = _simulate(
        documents,
        key_for_term=lambda t: int(list_ids[t]),
        cache_blocks=cache_blocks_for_size(cache_size_bytes, block_size),
        entries_per_block=entries,
    )
    return io.total / max(1, docs)


def figure2_sweep(
    documents: Sequence,
    cache_sizes_bytes: Sequence[int],
    *,
    block_size: int = 4096,
) -> List[Tuple[int, float]]:
    """The Figure 2 series: ``(cache size, I/Os per document)`` points."""
    return [
        (size, ios_per_doc_unmerged(documents, cache_size_bytes=size, block_size=block_size))
        for size in cache_sizes_bytes
    ]


def analytic_merged_ios_per_doc(
    postings_per_doc: float, *, block_size: int = 4096
) -> float:
    """Section 2.3's arithmetic: ``postings_per_doc * 8 / block_size``.

    The paper's "500 * 8 / 4096 ≈ 1 random I/O per document insertion".
    """
    return postings_per_doc * POSTING_SIZE / block_size
