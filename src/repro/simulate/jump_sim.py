"""Figures 8(b)/8(c): jump-index insert I/O and conjunctive query speedup.

These experiments exercise the *real* index structures (WORM store,
merged posting lists, block jump indexes, B+ tree baseline) rather than
the analytic cost model, so they are the slowest part of the harness.

Scaling note: runs are smaller than the paper's (1M docs, 32,768 lists,
8 KB blocks, N = 2**32) but keep the ratios that shape the figures —
in particular the jump-pointer space overhead per block, which is what
makes 2-keyword queries slightly *slower* with a jump index.  With the
default ``block_size=4096`` and ``max_doc_bits=16``:

====  ======  ==============  ===========
B     levels  pointer bytes   overhead
====  ======  ==============  ===========
2     16      64              ~1.6%  (paper: 1.5% at 8 KB)
32    4       496             ~12%   (paper: 11% at 8 KB)
64    3       756             ~22%
====  ======  ==============  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.unmerged import UnmergedBaselineIndex
from repro.core.block_jump_index import BlockJumpIndex
from repro.core.merge import TermAssignment, UniformHashMerge
from repro.core.posting import POSTING_SIZE
from repro.core.posting_list import PostingList
from repro.search.join import (
    MergedListCursor,
    RawMergedCursor,
    paper_conjunctive_join,
)
from repro.worm.storage import CachedWormStore


@dataclass
class MergedIndexBundle:
    """A fully built merged index over one document set."""

    store: CachedWormStore
    assignment: TermAssignment
    lists: Dict[int, PostingList]
    jumps: Dict[int, BlockJumpIndex]
    num_docs: int

    def ios_per_doc(self) -> float:
        """Average random I/Os per inserted document during the build."""
        return self.store.io.total / max(1, self.num_docs)

    def cursor_for_term(self, term_id: int, length_hint: Optional[int] = None):
        """Term-filtered seekable cursor over the term's merged list."""
        list_id = self.assignment.list_for(term_id)
        posting_list = self.lists.get(list_id)
        if posting_list is None:
            return None
        return MergedListCursor(
            posting_list,
            term_code=term_id,
            jump_index=self.jumps.get(list_id),
            length_hint=length_hint,
        )

    def scan_blocks_for_terms(self, term_ids: Sequence[int]) -> int:
        """Blocks a scan-merge join reads: every block of every list."""
        lists = {self.assignment.list_for(int(t)) for t in term_ids}
        return sum(
            self.lists[l].num_blocks for l in lists if l in self.lists
        )

    def raw_cursors_for_terms(self, term_ids: Sequence[int]):
        """One :class:`RawMergedCursor` per distinct physical list.

        Each cursor carries the query terms that hash into its list, so
        the paper-semantics join can verify all of them at a match.
        Returns ``None`` when some term's list was never created (the
        term has no postings — the query result is trivially empty).
        """
        by_list: Dict[int, List[int]] = {}
        for term in term_ids:
            term = int(term)
            by_list.setdefault(self.assignment.list_for(term), []).append(term)
        cursors = []
        for list_id, codes in by_list.items():
            posting_list = self.lists.get(list_id)
            if posting_list is None:
                return None
            cursors.append(
                RawMergedCursor(
                    posting_list, codes, jump_index=self.jumps.get(list_id)
                )
            )
        return cursors


def build_merged_index(
    documents: Sequence,
    *,
    num_lists: int,
    branching: Optional[int],
    block_size: int = 4096,
    max_doc_bits: int = 16,
    cache_blocks: Optional[int] = None,
    track_tail_path: bool = True,
) -> MergedIndexBundle:
    """Ingest ``documents`` into uniformly merged lists on a fresh store.

    ``branching=None`` builds plain lists (the merged-no-jump-index
    configuration); otherwise each physical list carries a base-``B``
    block jump index.
    """
    store = CachedWormStore(cache_blocks, block_size=block_size)
    assignment = UniformHashMerge(num_lists).assign(
        max(int(d.term_ids.max()) for d in documents) + 1
        if len(documents)
        else 1
    )
    lists: Dict[int, PostingList] = {}
    jumps: Dict[int, BlockJumpIndex] = {}

    def physical(list_id: int) -> Tuple[PostingList, Optional[BlockJumpIndex]]:
        posting_list = lists.get(list_id)
        if posting_list is None:
            name = f"pl/{list_id:08d}"
            if branching is not None:
                jump = BlockJumpIndex.create(
                    store,
                    name,
                    branching=branching,
                    max_doc_bits=max_doc_bits,
                    track_tail_path=track_tail_path,
                )
                posting_list = jump.posting_list
                jumps[list_id] = jump
            else:
                posting_list = PostingList(store, name)
            lists[list_id] = posting_list
        return posting_list, jumps.get(list_id)

    list_ids = assignment.list_ids
    for doc in documents:
        for term in doc.term_ids:
            term = int(term)
            posting_list, jump = physical(int(list_ids[term]))
            if jump is not None:
                jump.insert(doc.doc_id, term_code=term)
            else:
                posting_list.append(doc.doc_id, term_code=term)
    return MergedIndexBundle(
        store=store,
        assignment=assignment,
        lists=lists,
        jumps=jumps,
        num_docs=len(documents),
    )


def insert_ios_sweep(
    documents: Sequence,
    *,
    num_lists: int,
    branchings: Sequence[Optional[int]],
    cache_block_counts: Sequence[int],
    block_size: int = 4096,
    max_doc_bits: int = 16,
    track_tail_path: bool = True,
) -> Dict[Optional[int], List[Tuple[int, float]]]:
    """The Figure 8(b) sweep: I/Os per inserted doc vs cache size per B.

    Include ``None`` in ``branchings`` for the plain append-only
    reference (the "1 I/O per document required to just append" line the
    paper compares against).
    """
    out: Dict[Optional[int], List[Tuple[int, float]]] = {}
    for branching in branchings:
        series: List[Tuple[int, float]] = []
        for cache_blocks in cache_block_counts:
            bundle = build_merged_index(
                documents,
                num_lists=num_lists,
                branching=branching,
                block_size=block_size,
                max_doc_bits=max_doc_bits,
                cache_blocks=cache_blocks,
                track_tail_path=track_tail_path,
            )
            series.append((cache_blocks, bundle.ios_per_doc()))
        out[branching] = series
    return out


@dataclass
class QuerySpeedupResult:
    """Figure 8(c) data: per-configuration speedup by query term count."""

    #: label -> [(num_terms, speedup)]; labels: 'B=2', 'B=32', 'B=64',
    #: 'unmerged' (the B+ tree ideal).
    series: Dict[str, List[Tuple[int, float]]]
    #: Raw mean blocks read per configuration and term count.
    blocks: Dict[str, Dict[int, float]]


def query_speedup_sweep(
    documents: Sequence,
    queries_by_terms: Dict[int, Sequence],
    term_freqs,
    *,
    num_lists: int,
    branchings: Sequence[int] = (2, 32, 64),
    block_size: int = 4096,
    max_doc_bits: int = 16,
    include_unmerged_ideal: bool = True,
    bplus_fanout: Optional[int] = None,
) -> QuerySpeedupResult:
    """The Figure 8(c) sweep: conjunctive query speedup vs #keywords.

    ``speedup = blocks read by a scan-merge join over merged lists with
    no jump index / blocks read by a zigzag join`` (values < 1 mean the
    jump index slows the query down, as for 2-keyword queries).

    ``term_freqs`` supplies ``ti`` hints for shortest-first join order.
    """
    baseline = build_merged_index(
        documents,
        num_lists=num_lists,
        branching=None,
        block_size=block_size,
        max_doc_bits=max_doc_bits,
    )
    bundles = {
        f"B={b}": build_merged_index(
            documents,
            num_lists=num_lists,
            branching=b,
            block_size=block_size,
            max_doc_bits=max_doc_bits,
        )
        for b in branchings
    }
    ideal = None
    if include_unmerged_ideal:
        ideal = UnmergedBaselineIndex(
            fanout=bplus_fanout or max(4, block_size // POSTING_SIZE)
        )
        for doc in documents:
            ideal.add_document(doc.doc_id, (int(t) for t in doc.term_ids))

    series: Dict[str, List[Tuple[int, float]]] = {
        label: [] for label in bundles
    }
    blocks: Dict[str, Dict[int, float]] = {
        label: {} for label in list(bundles) + (["scan"] + (["unmerged"] if ideal else []))
    }
    if ideal is not None:
        series["unmerged"] = []
    for num_terms in sorted(queries_by_terms):
        queries = queries_by_terms[num_terms]
        scan_total = 0
        per_label_total: Dict[str, int] = {label: 0 for label in bundles}
        ideal_total = 0
        for query in queries:
            terms = [int(t) for t in query.term_ids]
            scan_total += baseline.scan_blocks_for_terms(terms)
            for label, bundle in bundles.items():
                cursors = bundle.raw_cursors_for_terms(terms)
                if cursors is None:
                    continue
                _, blocks_read = paper_conjunctive_join(cursors)
                per_label_total[label] += blocks_read
            if ideal is not None:
                _, ideal_blocks = ideal.conjunctive_query(terms)
                ideal_total += ideal_blocks
        n_queries = max(1, len(queries))
        blocks["scan"][num_terms] = scan_total / n_queries
        for label in bundles:
            mean_blocks = per_label_total[label] / n_queries
            blocks[label][num_terms] = mean_blocks
            speedup = scan_total / per_label_total[label] if per_label_total[label] else 0.0
            series[label].append((num_terms, speedup))
        if ideal is not None:
            blocks["unmerged"][num_terms] = ideal_total / n_queries
            speedup = scan_total / ideal_total if ideal_total else 0.0
            series["unmerged"].append((num_terms, speedup))
    return QuerySpeedupResult(series=series, blocks=blocks)
