"""Figures 3(c)-3(i): workload-cost behaviour of the merging strategies.

All experiments here are analytic over the ``ti``/``qi`` statistics (the
paper's workload cost model of Section 3.1), so full sweeps run in
milliseconds and the benchmark harness can afford many configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_model import (
    cost_ratio,
    per_query_costs,
    per_query_unmerged_costs,
    query_slowdowns,
)
from repro.core.epochs import learn_popular_terms
from repro.core.merge import PopularUnmergedMerge, UniformHashMerge, lists_for_cache
from repro.errors import WorkloadError
from repro.workloads.stats import WorkloadStats

#: The paper's Figure 3(d)-(g) x-axis, in bytes (4 MB .. 512 MB).
DEFAULT_CACHE_SIZES = tuple((1 << 22) * (2**i) for i in range(8))

#: The paper's Figure 3(d)-(g) unmerged-popular-term counts.
DEFAULT_UNMERGED_COUNTS = (0, 1_000, 10_000)


def strategy_for(
    num_lists: int,
    stats: WorkloadStats,
    *,
    unmerged_terms: int,
    by: Optional[str],
):
    """Build the merging strategy of Figures 3(d)/3(e).

    ``unmerged_terms == 0`` (or ``by is None``) is uniform merging; the
    popular set otherwise comes from ``stats`` ranked by ``by``.
    """
    if unmerged_terms == 0 or by is None:
        return UniformHashMerge(num_lists)
    if unmerged_terms >= num_lists:
        raise WorkloadError(
            f"cannot keep {unmerged_terms} terms unmerged in {num_lists} lists"
        )
    popular = learn_popular_terms(stats, unmerged_terms, by=by)
    return PopularUnmergedMerge(num_lists, popular)


def cost_ratio_sweep(
    stats: WorkloadStats,
    *,
    cache_sizes_bytes: Sequence[int] = DEFAULT_CACHE_SIZES,
    block_size: int = 8192,
    unmerged_terms: int = 0,
    by: Optional[str] = None,
    learned_stats: Optional[WorkloadStats] = None,
) -> List[Tuple[int, float]]:
    """``(cache size, Q ratio)`` series — one curve of Figures 3(d)-3(g).

    ``learned_stats``, when given, supplies the statistics used to pick
    the popular (unmerged) terms while the *cost* is always evaluated on
    the true ``stats`` — exactly the Figures 3(f)/3(g) learning
    experiment ("use the first 10% of the documents and queries to make
    merging decisions for the entire index").
    """
    ranking_stats = learned_stats if learned_stats is not None else stats
    series: List[Tuple[int, float]] = []
    for cache_bytes in cache_sizes_bytes:
        num_lists = lists_for_cache(cache_bytes, block_size)
        # When the cache affords fewer lists than the requested popular
        # set, cap at half the lists: dedicating nearly all lists to
        # popular terms would crush the remaining terms into a handful of
        # giant lists, a configuration no deployment would choose.
        effective_unmerged = min(unmerged_terms, num_lists // 2)
        strategy = strategy_for(
            num_lists, ranking_stats, unmerged_terms=effective_unmerged, by=by
        )
        assignment = strategy.assign(stats.num_terms)
        series.append((cache_bytes, cost_ratio(assignment, stats)))
    return series


def figure3d_to_3g(
    stats: WorkloadStats,
    *,
    cache_sizes_bytes: Sequence[int] = DEFAULT_CACHE_SIZES,
    block_size: int = 8192,
    unmerged_counts: Sequence[int] = DEFAULT_UNMERGED_COUNTS,
    by: str = "qi",
    learned_stats: Optional[WorkloadStats] = None,
) -> Dict[int, List[Tuple[int, float]]]:
    """All curves of one Figure 3(d)/(e)/(f)/(g) panel, keyed by term count."""
    return {
        count: cost_ratio_sweep(
            stats,
            cache_sizes_bytes=cache_sizes_bytes,
            block_size=block_size,
            unmerged_terms=count,
            by=by if count else None,
            learned_stats=learned_stats,
        )
        for count in unmerged_counts
    }


@dataclass
class QueryCostDistribution:
    """Per-query cost CDF data for Figures 3(h)/3(i)."""

    #: Sorted per-query scan costs (posting entries) — one array per
    #: configuration label ('unmerged', '32 MB', ...).
    sorted_costs: Dict[str, np.ndarray]

    def percentile(self, label: str, pct: float) -> float:
        """Cost at percentile ``pct`` of configuration ``label``."""
        costs = self.sorted_costs[label]
        idx = min(len(costs) - 1, int(pct / 100.0 * len(costs)))
        return float(costs[idx])


def figure3h(
    queries: Sequence[Sequence[int]],
    stats: WorkloadStats,
    *,
    cache_sizes_bytes: Sequence[int] = ((1 << 25), (1 << 26), (1 << 29)),
    block_size: int = 8192,
) -> QueryCostDistribution:
    """Cumulative query-cost distributions: unmerged vs merged configs.

    The paper plots 32 MB, 64 MB and 512 MB uniform-merging caches
    against the unmerged distribution (log-scale x); merging inflates the
    cheap end of the distribution and leaves the expensive end alone.
    """
    term_lists = [list(q) for q in queries]
    out: Dict[str, np.ndarray] = {
        "unmerged": np.sort(per_query_unmerged_costs(term_lists, stats))
    }
    for cache_bytes in cache_sizes_bytes:
        num_lists = lists_for_cache(cache_bytes, block_size)
        assignment = UniformHashMerge(num_lists).assign(stats.num_terms)
        label = f"{cache_bytes // (1 << 20)} MB"
        out[label] = np.sort(per_query_costs(term_lists, assignment, stats))
    return QueryCostDistribution(sorted_costs=out)


def figure3i(
    queries: Sequence[Sequence[int]],
    stats: WorkloadStats,
    *,
    cache_size_bytes: int = 1 << 29,
    block_size: int = 8192,
    percentiles: Sequence[int] = tuple(range(0, 100, 10)),
) -> List[Tuple[int, float]]:
    """Query slowdown vs query-cost percentile (512 MB uniform merging).

    Returns mean slowdown within each decile of the unmerged-cost
    ordering: cheap queries (low percentiles) slow down the most; the
    longest-running half shows no visible slowdown.
    """
    term_lists = [list(q) for q in queries]
    num_lists = lists_for_cache(cache_size_bytes, block_size)
    assignment = UniformHashMerge(num_lists).assign(stats.num_terms)
    merged = per_query_costs(term_lists, assignment, stats)
    unmerged = per_query_unmerged_costs(term_lists, stats)
    ratios = query_slowdowns(merged, unmerged)
    out: List[Tuple[int, float]] = []
    n = len(ratios)
    for pct in percentiles:
        lo = int(pct / 100.0 * n)
        hi = min(n, int((pct + 10) / 100.0 * n)) or (lo + 1)
        out.append((pct, float(np.mean(ratios[lo:hi]))))
    return out
