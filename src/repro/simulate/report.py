"""Plain-text rendering of regenerated tables and figure series.

The benchmark harness prints each figure as the series of numbers the
paper plots, so a reader can diff shapes (who wins, by what factor,
where crossovers fall) against the published curves without a plotting
stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence,
    ys: Sequence,
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as an x/y table."""
    return format_table(
        [x_label, y_label], list(zip(xs, ys)), title=name
    )
