"""Figure 4: *measured* workload run-time ratios (experimental validation).

The paper validates its simulations by implementing uniform merging in a
real search engine and timing a 1% sample of the query log; Figure 4
plots measured run time (merged / unmerged) against cache size and finds
it quantitatively similar to the simulated Figure 3(e) "0 term" curve.

Our equivalent: materialize the merged and unmerged posting lists as
numpy arrays (the in-memory image of what the disk scan delivers), and
time the actual scan-and-filter work each query performs.  This measures
real CPU-bound scan cost rather than modelled entry counts, which is
exactly the simulation-vs-measurement cross-check the figure exists for.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.merge import UniformHashMerge, lists_for_cache


def _materialize_merged(
    documents: Sequence, list_ids: np.ndarray, num_lists: int
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Merged lists as (doc_ids, term_codes) array pairs."""
    per_list_docs: Dict[int, List[int]] = {}
    per_list_terms: Dict[int, List[int]] = {}
    for doc in documents:
        for term in doc.term_ids:
            list_id = int(list_ids[term])
            per_list_docs.setdefault(list_id, []).append(doc.doc_id)
            per_list_terms.setdefault(list_id, []).append(int(term))
    return {
        list_id: (
            np.asarray(per_list_docs[list_id], dtype=np.int64),
            np.asarray(per_list_terms[list_id], dtype=np.int64),
        )
        for list_id in per_list_docs
    }


def _materialize_unmerged(documents: Sequence) -> Dict[int, np.ndarray]:
    """Per-term posting lists as doc-id arrays."""
    per_term: Dict[int, List[int]] = {}
    for doc in documents:
        for term in doc.term_ids:
            per_term.setdefault(int(term), []).append(doc.doc_id)
    return {t: np.asarray(v, dtype=np.int64) for t, v in per_term.items()}


def measured_runtime_ratio(
    documents: Sequence,
    queries: Sequence,
    *,
    cache_size_bytes: int,
    block_size: int = 8192,
    repeats: int = 1,
) -> float:
    """Measured merged/unmerged scan-time ratio for one cache size.

    Runs every query against both physical layouts and returns
    ``time(merged) / time(unmerged)``.
    """
    num_lists = lists_for_cache(cache_size_bytes, block_size)
    num_terms = 1 + max(
        (int(d.term_ids.max()) for d in documents if len(d.term_ids)), default=0
    )
    assignment = UniformHashMerge(num_lists).assign(num_terms)
    merged = _materialize_merged(documents, assignment.list_ids, num_lists)
    unmerged = _materialize_unmerged(documents)

    # The scans below process postings one at a time in Python, like a
    # scoring engine visiting every posting it reads: run time is then
    # proportional to postings scanned (the quantity Q models), not to
    # array-call overheads.
    def run_merged() -> int:
        matched = 0
        for query in queries:
            lists = {assignment.list_for(int(t)) for t in query.term_ids}
            wanted = set(int(t) for t in query.term_ids)
            for list_id in lists:
                entry = merged.get(list_id)
                if entry is None:
                    continue
                _, term_codes = entry
                for code in term_codes.tolist():
                    # Filter false positives introduced by merging.
                    if code in wanted:
                        matched += 1
        return matched

    def run_unmerged() -> int:
        matched = 0
        for query in queries:
            for term in query.term_ids:
                postings = unmerged.get(int(term))
                if postings is None:
                    continue
                for _doc in postings.tolist():
                    # Every posting is a hit; score it.
                    matched += 1
        return matched

    merged_time = 0.0
    unmerged_time = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        run_merged()
        merged_time += time.perf_counter() - start
        start = time.perf_counter()
        run_unmerged()
        unmerged_time += time.perf_counter() - start
    if unmerged_time == 0:
        return 1.0
    return merged_time / unmerged_time


def figure4_sweep(
    documents: Sequence,
    queries: Sequence,
    *,
    cache_sizes_bytes: Sequence[int],
    block_size: int = 8192,
) -> List[Tuple[int, float]]:
    """The Figure 4 series: measured run-time ratio per cache size."""
    return [
        (
            size,
            measured_runtime_ratio(
                documents,
                queries,
                cache_size_bytes=size,
                block_size=block_size,
            ),
        )
        for size in cache_sizes_bytes
    ]
