"""Shared construction of the scaled synthetic workload.

Every figure harness runs against the same corpus + query log so that
cross-figure numbers (e.g. the Section 6 conclusion composite) are
internally consistent.  Construction is cached per scale: the expensive
parts — materialized documents and the ``ti``/``qi`` statistics — are
computed once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.workloads.corpus import CorpusConfig, CorpusGenerator, SyntheticDocument
from repro.workloads.queries import QueryLogConfig, QueryLogGenerator, SyntheticQuery
from repro.workloads.stats import WorkloadStats


@dataclass(frozen=True)
class Scale:
    """A named workload size.

    ``paper()`` mirrors the publication (1M docs / 300k queries); the
    smaller presets keep benchmark wall-clock in check while preserving
    the distributional parameters every figure depends on.
    """

    num_docs: int
    vocabulary_size: int
    num_queries: int
    mean_terms_per_doc: float

    @classmethod
    def tiny(cls) -> "Scale":
        """CI-speed smoke scale."""
        return cls(2_000, 20_000, 4_000, 60.0)

    @classmethod
    def small(cls) -> "Scale":
        """Default benchmark scale (minutes for the whole suite)."""
        return cls(10_000, 60_000, 20_000, 90.0)

    @classmethod
    def medium(cls) -> "Scale":
        """Higher-fidelity scale for overnight runs."""
        return cls(50_000, 200_000, 60_000, 150.0)

    @classmethod
    def paper(cls) -> "Scale":
        """The publication's workload size (expect hours in pure Python)."""
        return cls(1_000_000, 1_000_000, 300_000, 500.0)


@dataclass
class Workload:
    """Materialized workload shared by the figure harnesses."""

    scale: Scale
    corpus: CorpusGenerator
    query_log: QueryLogGenerator
    documents: List[SyntheticDocument]
    queries: List[SyntheticQuery]
    stats: WorkloadStats

    @property
    def vocabulary_size(self) -> int:
        """Term-universe size."""
        return self.scale.vocabulary_size

    def queries_with_terms(self, num_terms: int, *, limit: int) -> List[SyntheticQuery]:
        """Up to ``limit`` queries with exactly ``num_terms`` keywords.

        Figure 8(c) sweeps 2-7 keywords; logs are skewed toward short
        queries, so missing sizes are synthesized by extending shorter
        queries with further draws from the query-popularity profile.
        """
        exact = [q for q in self.queries if q.num_terms == num_terms][:limit]
        if len(exact) >= limit:
            return exact
        # Deterministically extend shorter queries to the requested size.
        rng = np.random.default_rng(num_terms * 7919 + 13)
        popularity = self.query_log.query_popularity()
        candidates = [q for q in self.queries if q.num_terms < num_terms]
        out = list(exact)
        from repro.workloads.zipf import ZipfSampler

        sampler = ZipfSampler(
            self.scale.vocabulary_size, 1.0, rng=rng, weights=popularity
        )
        for query in candidates:
            if len(out) >= limit:
                break
            terms = list(query.term_ids)
            while len(terms) < num_terms:
                t = int(sampler.sample_one())
                if t not in terms:
                    terms.append(t)
            out.append(
                SyntheticQuery(query_id=10_000_000 + len(out), term_ids=tuple(terms))
            )
        return out


def _scale_key(scale: Scale) -> Tuple[int, int, int, float]:
    return (
        scale.num_docs,
        scale.vocabulary_size,
        scale.num_queries,
        scale.mean_terms_per_doc,
    )


@lru_cache(maxsize=4)
def _build(key: Tuple[int, int, int, float]) -> Workload:
    num_docs, vocabulary_size, num_queries, mean_terms = key
    scale = Scale(num_docs, vocabulary_size, num_queries, mean_terms)
    corpus = CorpusGenerator(
        CorpusConfig(
            num_docs=num_docs,
            vocabulary_size=vocabulary_size,
            mean_terms_per_doc=mean_terms,
            zipf_s=1.1,
            seed=7,
        )
    )
    query_log = QueryLogGenerator(
        QueryLogConfig(
            num_queries=num_queries,
            vocabulary_size=vocabulary_size,
            zipf_s=1.1,
            seed=11,
        )
    )
    documents = list(corpus.documents())
    queries = list(query_log.queries())
    ti = np.zeros(vocabulary_size, dtype=np.int64)
    for doc in documents:
        ti[doc.term_ids] += 1
    qi = np.zeros(vocabulary_size, dtype=np.int64)
    for query in queries:
        for term in query.term_ids:
            qi[term] += 1
    stats = WorkloadStats(ti=ti, qi=qi)
    return Workload(
        scale=scale,
        corpus=corpus,
        query_log=query_log,
        documents=documents,
        queries=queries,
        stats=stats,
    )


def get_workload(scale: Scale) -> Workload:
    """The (cached) materialized workload for ``scale``."""
    return _build(_scale_key(scale))
