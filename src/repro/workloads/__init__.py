"""Synthetic IBM-intranet-like workload generators.

The paper evaluates on one million documents crawled from IBM's intranet
and 300,000 logged user queries — both confidential and unavailable.  This
subpackage substitutes generators that reproduce every *property of the
data that the paper's results actually depend on*:

* Zipfian term-frequency distribution ``ti`` (Figure 3(a), citing Zipf),
* Zipfian query-frequency distribution ``qi`` (Figure 3(b)),
* strong rank correlation between the two — "the most common terms in the
  queries are also very common in the documents" (Section 3.3),
* a minority of terms that are common in documents but rarely queried
  (the paper's example: *following*),
* an average of roughly 500 distinct keywords per document at full scale
  (Section 2.3), configurable for scaled-down runs.

All generators are deterministic under a seed and expose their parameters,
so every figure harness records exactly what workload it ran.
"""

from repro.workloads.corpus import CorpusConfig, CorpusGenerator, SyntheticDocument
from repro.workloads.drift import DriftConfig, DriftingWorkload, EpochWorkload
from repro.workloads.queries import QueryLogConfig, QueryLogGenerator, SyntheticQuery
from repro.workloads.stats import WorkloadStats
from repro.workloads.trace import (
    corpus_from_texts,
    load_corpus,
    load_queries,
    queries_from_strings,
    save_corpus,
    save_queries,
    stats_from_traces,
)
from repro.workloads.vocabulary import Vocabulary
from repro.workloads.zipf import ZipfSampler, zipf_weights

__all__ = [
    "CorpusConfig",
    "CorpusGenerator",
    "DriftConfig",
    "DriftingWorkload",
    "EpochWorkload",
    "QueryLogConfig",
    "QueryLogGenerator",
    "SyntheticDocument",
    "SyntheticQuery",
    "Vocabulary",
    "WorkloadStats",
    "ZipfSampler",
    "corpus_from_texts",
    "load_corpus",
    "load_queries",
    "queries_from_strings",
    "save_corpus",
    "save_queries",
    "stats_from_traces",
    "zipf_weights",
]
