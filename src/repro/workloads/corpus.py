"""Synthetic document corpus calibrated to the paper's reported statistics.

The generator reproduces, at any scale, the corpus properties that the
paper's experiments depend on:

* Zipfian distribution of term document-frequencies (Figure 3(a));
* configurable mean number of *distinct* terms per document — "each
  document contains almost 500 keywords on average" (Section 2.3);
* monotonically increasing document IDs assigned by an insertion counter
  (Section 4.1), which is what makes jump indexes applicable.

Scaling note: the paper uses 1M documents over a >1M-term vocabulary.  The
default :class:`CorpusConfig` is deliberately smaller so the full benchmark
suite regenerates in minutes; every knob needed to run at paper scale is a
constructor parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.vocabulary import Vocabulary
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of a synthetic corpus.

    Attributes
    ----------
    num_docs:
        Number of documents to generate.
    vocabulary_size:
        Number of distinct terms in the universe.
    mean_terms_per_doc:
        Target mean number of term *draws* per document.  The number of
        distinct terms per document lands somewhat below this because
        popular terms repeat within a document (as in real text).
    zipf_s:
        Zipf exponent of the term-frequency distribution.
    doc_length_sigma:
        Log-normal shape parameter for per-document length variation
        (``0`` gives constant-length documents).
    seed:
        Master seed; the generator is fully deterministic given the config.
    """

    num_docs: int = 10_000
    vocabulary_size: int = 50_000
    mean_terms_per_doc: float = 100.0
    zipf_s: float = 1.1
    doc_length_sigma: float = 0.4
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_docs <= 0:
            raise WorkloadError(f"num_docs must be positive, got {self.num_docs}")
        if self.vocabulary_size <= 0:
            raise WorkloadError(
                f"vocabulary_size must be positive, got {self.vocabulary_size}"
            )
        if self.mean_terms_per_doc <= 0:
            raise WorkloadError(
                f"mean_terms_per_doc must be positive, got {self.mean_terms_per_doc}"
            )
        if self.doc_length_sigma < 0:
            raise WorkloadError(
                f"doc_length_sigma must be non-negative, got {self.doc_length_sigma}"
            )


@dataclass
class SyntheticDocument:
    """One generated document.

    Attributes
    ----------
    doc_id:
        Monotonically increasing insertion-order ID (0-based).
    term_ids:
        Sorted array of *distinct* term IDs occurring in the document.
    term_counts:
        Occurrence count of each distinct term (parallel to ``term_ids``);
        used by the ranking scorers.
    """

    doc_id: int
    term_ids: np.ndarray
    term_counts: np.ndarray

    @property
    def num_distinct_terms(self) -> int:
        """Number of distinct terms in the document."""
        return len(self.term_ids)

    @property
    def length(self) -> int:
        """Total term occurrences (document length in tokens)."""
        return int(self.term_counts.sum())

    def text(self, vocabulary: Vocabulary) -> str:
        """Render the document as whitespace-joined words.

        Term order is by term ID (synthetic documents carry no word order);
        each term appears as many times as its count so tokenizers and
        scorers see realistic frequencies.
        """
        words: List[str] = []
        for term_id, count in zip(self.term_ids, self.term_counts):
            words.extend([vocabulary.word(int(term_id))] * int(count))
        return " ".join(words)


class CorpusGenerator:
    """Streaming generator of :class:`SyntheticDocument` objects.

    Iterating the generator yields documents in insertion order with
    consecutive IDs starting at ``first_doc_id``.  Iteration can be
    restarted; the same config and seed always produce the same corpus.
    """

    def __init__(self, config: Optional[CorpusConfig] = None, *, first_doc_id: int = 0):
        self.config = config or CorpusConfig()
        self.first_doc_id = first_doc_id

    def documents(self) -> Iterator[SyntheticDocument]:
        """Yield the configured number of documents, deterministically."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        sampler = ZipfSampler(cfg.vocabulary_size, cfg.zipf_s, rng=rng)
        lengths = self._draw_lengths(rng)
        # One bulk draw for the whole corpus keeps numpy overhead per
        # document negligible.
        draws = sampler.sample(int(lengths.sum()))
        cursor = 0
        for i, length in enumerate(lengths):
            doc_draws = draws[cursor : cursor + length]
            cursor += length
            term_ids, term_counts = np.unique(doc_draws, return_counts=True)
            yield SyntheticDocument(
                doc_id=self.first_doc_id + i,
                term_ids=term_ids,
                term_counts=term_counts,
            )

    def __iter__(self) -> Iterator[SyntheticDocument]:
        return self.documents()

    def _draw_lengths(self, rng: np.random.Generator) -> np.ndarray:
        """Per-document token counts (log-normal around the configured mean)."""
        cfg = self.config
        if cfg.doc_length_sigma == 0:
            return np.full(cfg.num_docs, int(round(cfg.mean_terms_per_doc)), dtype=np.int64)
        # Parameterize the log-normal so its mean equals mean_terms_per_doc.
        mu = np.log(cfg.mean_terms_per_doc) - 0.5 * cfg.doc_length_sigma**2
        lengths = rng.lognormal(mu, cfg.doc_length_sigma, size=cfg.num_docs)
        return np.maximum(1, np.round(lengths)).astype(np.int64)

    def term_document_frequencies(self) -> np.ndarray:
        """Document frequency ``ti`` of every term (array of length V).

        ``ti`` is the length of term *i*'s unmerged posting list — the
        quantity the paper's workload-cost model is built on.  Computed by
        a full pass over the corpus (still deterministic).
        """
        counts = np.zeros(self.config.vocabulary_size, dtype=np.int64)
        for doc in self.documents():
            counts[doc.term_ids] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusGenerator({self.config})"
