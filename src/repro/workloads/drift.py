"""Workloads whose term popularity drifts over time (Section 3.3's "if").

Figures 3(f)/3(g) show IBM's intranet statistics are stable, so one
learning pass suffices.  For "an environment where the frequencies are
less stable, the system can learn the frequencies online, and the
merging strategy can be adapted accordingly" — the epoch scheme.  To
evaluate that scheme one needs a workload where the premise of static
learning actually fails; this module generates it.

:class:`DriftingWorkload` produces a sequence of epochs.  Within each
epoch, query popularity follows a Zipf profile over a ranking that
rotates inside a pool of document-popular terms: epoch ``e`` promotes
the pool slice starting at ``e * drift_stride`` to the hottest query
ranks.  For a top-``k`` hot set, adjacent epochs overlap by roughly
``1 - drift_stride / k`` — tunable from "slow drift" to "complete
churn".  Document statistics stay fixed (news-cycle-style workloads:
the content is stable, the interest moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.queries import SyntheticQuery
from repro.workloads.stats import WorkloadStats
from repro.workloads.zipf import ZipfSampler, zipf_weights


@dataclass(frozen=True)
class DriftConfig:
    """Parameters of a drifting multi-epoch workload.

    Attributes
    ----------
    vocabulary_size:
        Term universe size (shared by all epochs).
    num_epochs:
        Number of epochs to generate.
    queries_per_epoch:
        Query count per epoch.
    hot_pool_size:
        The pool of plausibly-hot terms (drawn from the document-popular
        head, as in real logs — people query popular topics).  Query
        popularity rotates *within* this pool.
    drift_stride:
        How many pool ranks the popularity profile rotates per epoch.
        ``0`` reproduces a stable workload; with a top-k hot set, the
        hot-set overlap between consecutive epochs is roughly
        ``1 - stride/k``.
    zipf_s:
        Skew of the per-epoch query popularity.
    terms_per_query:
        Keyword count of every generated query (kept constant so cost
        differences isolate the merging decision).
    seed:
        Determinism seed.
    """

    vocabulary_size: int = 20_000
    num_epochs: int = 4
    queries_per_epoch: int = 4_000
    hot_pool_size: int = 1_000
    drift_stride: int = 50
    zipf_s: float = 1.1
    terms_per_query: int = 2
    seed: int = 13

    def __post_init__(self) -> None:
        if self.vocabulary_size <= 0 or self.num_epochs <= 0:
            raise WorkloadError("vocabulary_size and num_epochs must be positive")
        if self.queries_per_epoch <= 0:
            raise WorkloadError("queries_per_epoch must be positive")
        if not 0 < self.hot_pool_size <= self.vocabulary_size:
            raise WorkloadError(
                f"hot_pool_size must be in (0, {self.vocabulary_size}]"
            )
        if not 0 <= self.drift_stride <= self.hot_pool_size:
            raise WorkloadError(
                f"drift_stride must be in [0, {self.hot_pool_size}]"
            )
        if self.terms_per_query < 1:
            raise WorkloadError("terms_per_query must be >= 1")


@dataclass
class EpochWorkload:
    """One epoch's queries and its query-frequency statistics."""

    epoch_no: int
    queries: List[SyntheticQuery]
    qi: np.ndarray


class DriftingWorkload:
    """Generator of per-epoch query workloads with rotating popularity."""

    def __init__(self, config: Optional[DriftConfig] = None):
        self.config = config = config if config is not None else DriftConfig()
        self._base = zipf_weights(config.vocabulary_size, config.zipf_s)

    def epoch_popularity(self, epoch_no: int) -> np.ndarray:
        """The (normalized) query-popularity profile of epoch ``epoch_no``.

        Terms keep their identity as document-popular or not (ranks
        outside the hot pool are untouched); *within* the pool, the
        ranking rotates by ``epoch_no * drift_stride``, so each epoch a
        slice of the pool takes over the hottest query ranks.
        """
        cfg = self.config
        shift = (epoch_no * cfg.drift_stride) % cfg.hot_pool_size
        ranking = np.concatenate(
            [
                np.roll(np.arange(cfg.hot_pool_size), -shift),
                np.arange(cfg.hot_pool_size, cfg.vocabulary_size),
            ]
        )
        derived = np.empty(cfg.vocabulary_size, dtype=np.float64)
        # The term at permuted rank r receives the base rank-r weight.
        derived[ranking] = self._base
        return derived

    def epochs(self) -> Iterator[EpochWorkload]:
        """Yield every epoch's workload, deterministically."""
        cfg = self.config
        for epoch_no in range(cfg.num_epochs):
            rng = np.random.default_rng(cfg.seed + 7919 * epoch_no)
            sampler = ZipfSampler(
                cfg.vocabulary_size,
                cfg.zipf_s,
                rng=rng,
                weights=self.epoch_popularity(epoch_no),
            )
            queries: List[SyntheticQuery] = []
            qi = np.zeros(cfg.vocabulary_size, dtype=np.int64)
            for query_id in range(cfg.queries_per_epoch):
                terms: List[int] = []
                while len(terms) < cfg.terms_per_query:
                    term = int(sampler.sample_one())
                    if term not in terms:
                        terms.append(term)
                for term in terms:
                    qi[term] += 1
                queries.append(
                    SyntheticQuery(query_id=query_id, term_ids=tuple(terms))
                )
            yield EpochWorkload(epoch_no=epoch_no, queries=queries, qi=qi)

    def hot_set_overlap(self, epoch_a: int, epoch_b: int, *, top_k: int = 100) -> float:
        """Fraction of epoch ``a``'s top-k terms still hot in epoch ``b``.

        Diagnostic for how fast the workload drifts (1.0 = stable).
        """
        pa = self.epoch_popularity(epoch_a)
        pb = self.epoch_popularity(epoch_b)
        top_a = set(np.argsort(pa)[::-1][:top_k].tolist())
        top_b = set(np.argsort(pb)[::-1][:top_k].tolist())
        return len(top_a & top_b) / top_k

    def stats_for_epoch(self, epoch_workload: EpochWorkload, ti: np.ndarray) -> WorkloadStats:
        """Combine an epoch's observed qi with document statistics."""
        return WorkloadStats(ti=ti, qi=epoch_workload.qi)
