"""Synthetic query-log generator with document-correlated popularity.

Reproduces the query-workload properties the paper reports for its 300,000
IBM intranet queries (Section 3.3):

* Zipfian query-frequency distribution ``qi`` (Figure 3(b));
* the most-queried terms are also among the most document-frequent —
  "people generally query on terms that they know about";
* a configurable set of document-popular terms that are *rarely* queried
  (the paper's example: *following*), which is what separates the TF- and
  QF-ranked curves in Figure 3(c);
* short queries dominate, with multi-keyword conjunctive queries up to the
  7 terms swept in Figure 8(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, correlated_popularity, zipf_weights


@dataclass(frozen=True)
class QueryLogConfig:
    """Parameters of a synthetic query log.

    Attributes
    ----------
    num_queries:
        Number of queries to generate.
    vocabulary_size:
        Must match the corpus the log will run against.
    zipf_s:
        Zipf exponent of the query-frequency profile.
    rank_jitter:
        Gaussian rank noise (in ranks) between document popularity and
        query popularity; small values give the strong correlation the
        paper observes.
    demoted_fraction:
        Fraction of the top document-frequency ranks that are demoted to
        near-zero query popularity ('following'-style terms).
    term_count_weights:
        Unnormalized probability of a query having 1, 2, ... keywords.
        The default mix is dominated by 1-3 term queries, as in published
        web/intranet query-log studies the paper cites.
    seed:
        Master seed; the log is fully deterministic given the config.
    """

    num_queries: int = 30_000
    vocabulary_size: int = 50_000
    zipf_s: float = 1.1
    rank_jitter: float = 25.0
    demoted_fraction: float = 0.02
    term_count_weights: Tuple[float, ...] = (0.30, 0.38, 0.18, 0.08, 0.03, 0.02, 0.01)
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise WorkloadError(f"num_queries must be positive, got {self.num_queries}")
        if self.vocabulary_size <= 0:
            raise WorkloadError(
                f"vocabulary_size must be positive, got {self.vocabulary_size}"
            )
        if not 0 <= self.demoted_fraction < 1:
            raise WorkloadError(
                f"demoted_fraction must be in [0, 1), got {self.demoted_fraction}"
            )
        if not self.term_count_weights or any(w < 0 for w in self.term_count_weights):
            raise WorkloadError("term_count_weights must be non-empty, non-negative")


@dataclass
class SyntheticQuery:
    """One generated query: a tuple of distinct term IDs."""

    query_id: int
    term_ids: Tuple[int, ...]

    @property
    def num_terms(self) -> int:
        """Number of keywords in the query."""
        return len(self.term_ids)

    def text(self, vocabulary) -> str:
        """Render the query as a space-joined keyword string.

        The string form the search engine's query parser accepts;
        ``vocabulary`` is the :class:`~repro.workloads.vocabulary.
        Vocabulary` the corpus was rendered with, so generated queries
        hit the same term universe as the indexed documents.
        """
        return " ".join(vocabulary.word(int(t)) for t in self.term_ids)


class QueryLogGenerator:
    """Streaming generator of :class:`SyntheticQuery` objects."""

    def __init__(self, config: Optional[QueryLogConfig] = None):
        self.config = config or QueryLogConfig()

    def query_popularity(self) -> np.ndarray:
        """The per-term query-popularity profile (normalized weights).

        Derived deterministically from the config: a Zipf profile over
        document-frequency ranks, rank-jittered, with the demoted
        ('following'-style) terms pushed to the tail.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        base = zipf_weights(cfg.vocabulary_size, cfg.zipf_s)
        demoted = self._demoted_ranks(rng)
        return correlated_popularity(
            base, rank_jitter=cfg.rank_jitter, rng=rng, demoted_ranks=demoted
        )

    def _demoted_ranks(self, rng: np.random.Generator) -> np.ndarray:
        """Ranks of document-popular terms that are rarely queried."""
        cfg = self.config
        top_pool = max(1, int(cfg.vocabulary_size * 0.05))
        count = int(top_pool * cfg.demoted_fraction / 0.05) if cfg.demoted_fraction else 0
        count = min(count, top_pool)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(top_pool, size=count, replace=False).astype(np.int64)

    def queries(self) -> Iterator[SyntheticQuery]:
        """Yield the configured number of queries, deterministically."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        sampler = ZipfSampler(
            cfg.vocabulary_size, cfg.zipf_s, rng=rng, weights=self.query_popularity()
        )
        weights = np.asarray(cfg.term_count_weights, dtype=np.float64)
        weights = weights / weights.sum()
        sizes = rng.choice(len(weights), size=cfg.num_queries, p=weights) + 1
        # Oversample so that dropping within-query duplicates still leaves
        # enough distinct terms almost always; top up in the rare remainder.
        for query_id, size in enumerate(sizes):
            terms = self._distinct_terms(sampler, int(size))
            yield SyntheticQuery(query_id=query_id, term_ids=terms)

    def __iter__(self) -> Iterator[SyntheticQuery]:
        return self.queries()

    @staticmethod
    def _distinct_terms(sampler: ZipfSampler, size: int) -> Tuple[int, ...]:
        """Draw ``size`` *distinct* term IDs from the sampler."""
        seen: List[int] = []
        # Popular terms repeat often under Zipf; a few redraw rounds always
        # suffice for the ≤7-term queries used here.
        while len(seen) < size:
            for term in sampler.sample(size * 2):
                term = int(term)
                if term not in seen:
                    seen.append(term)
                    if len(seen) == size:
                        break
        return tuple(seen)

    def term_query_frequencies(self) -> np.ndarray:
        """Query frequency ``qi`` of every term (array of length V).

        ``qi`` is the number of queries containing term *i* — the weight of
        that term's posting-list scans in the workload-cost model Q.
        """
        counts = np.zeros(self.config.vocabulary_size, dtype=np.int64)
        for query in self.queries():
            for term in query.term_ids:
                counts[term] += 1
        return counts

    def sample_queries(self, fraction: float, *, seed: int = 0) -> List[SyntheticQuery]:
        """A uniform random sample of the log (the paper's Figure 4 uses 1%)."""
        if not 0 < fraction <= 1:
            raise WorkloadError(f"fraction must be in (0, 1], got {fraction}")
        rng = np.random.default_rng(seed)
        sampled: List[SyntheticQuery] = []
        for query in self.queries():
            if rng.random() < fraction:
                sampled.append(query)
        return sampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryLogGenerator({self.config})"
