"""Workload statistics: the ``ti`` / ``qi`` arrays behind every Figure-3 plot.

:class:`WorkloadStats` bundles the two per-term frequency vectors the
paper's cost model is built from:

* ``ti`` — term frequency: the number of documents containing term *i*,
  i.e. the length of its unmerged posting list;
* ``qi`` — query frequency: the number of queries containing term *i*.

and provides the derived series the figures plot: rank-ordered
distributions (3(a)/3(b)), cumulative workload-cost curves by QF- and
TF-rank (3(c)), and top-k popular-term selections used by the merging
heuristics (3(d)-3(g)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import WorkloadError


@dataclass
class WorkloadStats:
    """Per-term frequency statistics for a corpus + query-log pair.

    Both arrays are indexed by term ID and must have equal length.
    """

    ti: np.ndarray
    qi: np.ndarray

    def __post_init__(self) -> None:
        self.ti = np.asarray(self.ti, dtype=np.int64)
        self.qi = np.asarray(self.qi, dtype=np.int64)
        if self.ti.shape != self.qi.shape or self.ti.ndim != 1:
            raise WorkloadError(
                f"ti and qi must be 1-D arrays of equal length, got "
                f"{self.ti.shape} and {self.qi.shape}"
            )
        if np.any(self.ti < 0) or np.any(self.qi < 0):
            raise WorkloadError("frequencies must be non-negative")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_workload(cls, corpus, query_log) -> "WorkloadStats":
        """Compute stats by one pass over a corpus and query-log generator."""
        return cls(
            ti=corpus.term_document_frequencies(),
            qi=query_log.term_query_frequencies(),
        )

    @property
    def num_terms(self) -> int:
        """Size of the term universe."""
        return len(self.ti)

    # ------------------------------------------------------------------
    # rank-ordered views (Figures 3(a), 3(b))
    # ------------------------------------------------------------------
    def tf_ranked(self) -> np.ndarray:
        """``ti`` sorted descending — the Figure 3(a) series."""
        return np.sort(self.ti)[::-1]

    def qf_ranked(self) -> np.ndarray:
        """``qi`` sorted descending — the Figure 3(b) series."""
        return np.sort(self.qi)[::-1]

    def top_terms_by_tf(self, k: int) -> np.ndarray:
        """Term IDs of the ``k`` most document-frequent terms."""
        return self._top_terms(self.ti, k)

    def top_terms_by_qf(self, k: int) -> np.ndarray:
        """Term IDs of the ``k`` most query-frequent terms."""
        return self._top_terms(self.qi, k)

    @staticmethod
    def _top_terms(values: np.ndarray, k: int) -> np.ndarray:
        if k < 0:
            raise WorkloadError(f"k must be non-negative, got {k}")
        k = min(k, len(values))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        # argpartition then sort gives the exact top-k ordering cheaply.
        top = np.argpartition(values, -k)[-k:]
        return top[np.argsort(values[top])[::-1]].astype(np.int64)

    # ------------------------------------------------------------------
    # workload cost (Figure 3(c))
    # ------------------------------------------------------------------
    def per_term_cost(self) -> np.ndarray:
        """Each term's contribution ``ti * qi`` to the unmerged cost Q."""
        return self.ti.astype(np.float64) * self.qi.astype(np.float64)

    def total_unmerged_cost(self) -> float:
        """The unmerged workload cost ``Q = Σ ti·qi`` (Section 3.1)."""
        return float(self.per_term_cost().sum())

    def cumulative_cost_by_qf_rank(self, top_k: Optional[int] = None) -> np.ndarray:
        """Cumulative Σ ti·qi over terms in descending-``qi`` order.

        The 'QF' curve of Figure 3(c); it saturates fast because the most
        queried terms carry almost all of the workload cost.
        """
        return self._cumulative_cost(np.argsort(self.qi)[::-1], top_k)

    def cumulative_cost_by_tf_rank(self, top_k: Optional[int] = None) -> np.ndarray:
        """Cumulative Σ ti·qi over terms in descending-``ti`` order.

        The 'TF' curve of Figure 3(c); it saturates more slowly because
        some document-frequent terms are rarely queried.
        """
        return self._cumulative_cost(np.argsort(self.ti)[::-1], top_k)

    def _cumulative_cost(self, order: np.ndarray, top_k: Optional[int]) -> np.ndarray:
        costs = self.per_term_cost()[order]
        if top_k is not None:
            costs = costs[:top_k]
        return np.cumsum(costs)

    # ------------------------------------------------------------------
    # correlation diagnostics
    # ------------------------------------------------------------------
    def rank_correlation(self) -> float:
        """Spearman rank correlation between ``ti`` and ``qi``.

        The paper observes a strong positive correlation; generators in
        this package are validated against that property.
        """
        def ranks(values: np.ndarray) -> np.ndarray:
            # Average ranks over ties (proper Spearman): frequency vectors
            # are full of ties (most terms share qi = 0).
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            r = np.empty(len(values), dtype=np.float64)
            i = 0
            while i < len(values):
                j = i
                while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
                    j += 1
                r[order[i : j + 1]] = (i + j) / 2.0
                i = j + 1
            return r

        rt, rq = ranks(self.ti), ranks(self.qi)
        rt -= rt.mean()
        rq -= rq.mean()
        denom = np.sqrt((rt**2).sum() * (rq**2).sum())
        if denom == 0:
            return 0.0
        return float((rt * rq).sum() / denom)

    def restrict_to(self, term_ids: Iterable[int]) -> "WorkloadStats":
        """Stats over a subset of terms (used by epoch-prefix learning)."""
        idx = np.asarray(list(term_ids), dtype=np.int64)
        return WorkloadStats(ti=self.ti[idx], qi=self.qi[idx])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadStats(terms={self.num_terms}, "
            f"docs-with-terms={int(self.ti.sum())}, query-terms={int(self.qi.sum())})"
        )
