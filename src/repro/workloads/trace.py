"""Workload traces: run the experiment harness on your own data.

The simulation and benchmark harnesses consume streams of
:class:`~repro.workloads.corpus.SyntheticDocument` and
:class:`~repro.workloads.queries.SyntheticQuery`.  This module round-trips
those streams to JSON-lines files and builds them from raw text, so the
paper's experiments can be replayed on a real corpus and query log
instead of the synthetic substitutes:

* :func:`save_corpus` / :func:`load_corpus` — document term vectors;
* :func:`save_queries` / :func:`load_queries` — query term tuples;
* :func:`corpus_from_texts` — analyze raw document texts into a trace
  plus the vocabulary mapping used;
* :func:`queries_from_strings` — analyze raw query strings against that
  vocabulary.

Format (one JSON object per line)::

    {"doc_id": 0, "terms": [[12, 3], [40, 1]]}     # corpus line
    {"query_id": 0, "terms": [12, 7]}              # query line
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.corpus import SyntheticDocument
from repro.workloads.queries import SyntheticQuery
from repro.workloads.stats import WorkloadStats


# ----------------------------------------------------------------------
# corpus traces
# ----------------------------------------------------------------------
def save_corpus(documents: Iterable[SyntheticDocument], path: str) -> int:
    """Write a corpus trace; returns the number of documents written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for doc in documents:
            terms = [
                [int(t), int(c)] for t, c in zip(doc.term_ids, doc.term_counts)
            ]
            handle.write(
                json.dumps({"doc_id": doc.doc_id, "terms": terms}) + "\n"
            )
            count += 1
    return count


def load_corpus(path: str) -> List[SyntheticDocument]:
    """Read a corpus trace written by :func:`save_corpus`.

    Validates the monotonic-document-ID invariant every index here
    relies on.
    """
    documents: List[SyntheticDocument] = []
    last_id = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            doc_id = int(data["doc_id"])
            if doc_id <= last_id:
                raise WorkloadError(
                    f"{path}:{line_no + 1}: doc_id {doc_id} not increasing"
                )
            last_id = doc_id
            terms = sorted((int(t), int(c)) for t, c in data["terms"])
            documents.append(
                SyntheticDocument(
                    doc_id=doc_id,
                    term_ids=np.asarray([t for t, _ in terms], dtype=np.int64),
                    term_counts=np.asarray([c for _, c in terms], dtype=np.int64),
                )
            )
    return documents


# ----------------------------------------------------------------------
# query traces
# ----------------------------------------------------------------------
def save_queries(queries: Iterable[SyntheticQuery], path: str) -> int:
    """Write a query trace; returns the number of queries written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(
                json.dumps(
                    {"query_id": query.query_id, "terms": list(query.term_ids)}
                )
                + "\n"
            )
            count += 1
    return count


def load_queries(path: str) -> List[SyntheticQuery]:
    """Read a query trace written by :func:`save_queries`."""
    queries: List[SyntheticQuery] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            queries.append(
                SyntheticQuery(
                    query_id=int(data["query_id"]),
                    term_ids=tuple(int(t) for t in data["terms"]),
                )
            )
    return queries


# ----------------------------------------------------------------------
# building traces from raw text
# ----------------------------------------------------------------------
def corpus_from_texts(
    texts: Sequence[str], *, analyzer=None
) -> Tuple[List[SyntheticDocument], Dict[str, int]]:
    """Analyze raw document texts into a corpus trace.

    Returns ``(documents, vocabulary)`` where the vocabulary maps each
    term string to the integer ID used in the trace (assigned in order
    of first appearance, so popular early terms get small IDs).
    """
    from repro.search.analyzer import Analyzer

    if analyzer is None:
        analyzer = Analyzer()
    vocabulary: Dict[str, int] = {}
    documents: List[SyntheticDocument] = []
    for doc_id, text in enumerate(texts):
        counts = analyzer.term_counts(text)
        id_counts: Dict[int, int] = {}
        for term, count in counts.items():
            term_id = vocabulary.setdefault(term, len(vocabulary))
            id_counts[term_id] = count
        ordered = sorted(id_counts.items())
        documents.append(
            SyntheticDocument(
                doc_id=doc_id,
                term_ids=np.asarray([t for t, _ in ordered], dtype=np.int64),
                term_counts=np.asarray([c for _, c in ordered], dtype=np.int64),
            )
        )
    return documents, vocabulary


def queries_from_strings(
    queries: Sequence[str],
    vocabulary: Dict[str, int],
    *,
    analyzer=None,
    skip_unknown_terms: bool = True,
) -> List[SyntheticQuery]:
    """Analyze raw query strings against an existing vocabulary.

    Unknown terms are dropped (``skip_unknown_terms=True``, matching a
    real engine where they simply have no postings) or raise.
    Queries with no known terms are omitted.
    """
    from repro.search.analyzer import Analyzer

    if analyzer is None:
        analyzer = Analyzer()
    out: List[SyntheticQuery] = []
    for raw in queries:
        term_ids: List[int] = []
        for term in analyzer.query_terms(raw):
            if term in vocabulary:
                term_ids.append(vocabulary[term])
            elif not skip_unknown_terms:
                raise WorkloadError(f"query term '{term}' not in vocabulary")
        if term_ids:
            out.append(
                SyntheticQuery(query_id=len(out), term_ids=tuple(term_ids))
            )
    return out


def stats_from_traces(
    documents: Sequence[SyntheticDocument],
    queries: Sequence[SyntheticQuery],
    *,
    vocabulary_size: int = 0,
) -> WorkloadStats:
    """Compute the ``ti``/``qi`` statistics of loaded traces.

    ``vocabulary_size`` may be given explicitly; otherwise it is inferred
    as one past the largest term ID seen.
    """
    max_term = -1
    for doc in documents:
        if len(doc.term_ids):
            max_term = max(max_term, int(doc.term_ids.max()))
    for query in queries:
        if query.term_ids:
            max_term = max(max_term, max(query.term_ids))
    size = max(vocabulary_size, max_term + 1, 1)
    ti = np.zeros(size, dtype=np.int64)
    qi = np.zeros(size, dtype=np.int64)
    for doc in documents:
        ti[doc.term_ids] += 1
    for query in queries:
        for term in query.term_ids:
            qi[term] += 1
    return WorkloadStats(ti=ti, qi=qi)
