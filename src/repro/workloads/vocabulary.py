"""Deterministic synthetic vocabulary with readable term strings.

The search-engine layer works on term *strings* (what a tokenizer emits),
while the simulation layer works on integer term *IDs* (array indices into
``ti``/``qi`` statistics).  :class:`Vocabulary` is the bijection between the
two.

Term strings are synthesized as pronounceable lowercase words so that the
examples read like real search sessions, with a small prefix of genuinely
common business-English words occupying the most popular ranks (so demos
like "query for 'report meeting'" behave the way the rank statistics say
they should).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import WorkloadError

#: Common business-English words assigned to the most popular ranks, in
#: rough order of ubiquity.  Includes 'following', the paper's example of a
#: term common in documents but rarely queried.
_COMMON_WORDS: List[str] = [
    "report", "meeting", "project", "team", "please", "review", "update",
    "schedule", "budget", "client", "email", "attached", "following",
    "document", "policy", "request", "office", "manager", "system", "data",
    "plan", "week", "time", "call", "group", "change", "issue", "status",
    "product", "service", "market", "sales", "quarter", "revenue", "audit",
    "record", "retention", "storage", "index", "search", "query", "server",
    "network", "account", "contract", "legal", "finance", "development",
    "quality", "customer",
]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _synthetic_word(term_id: int) -> str:
    """Deterministic pronounceable word for a term ID.

    Encodes ``term_id`` in base ``len(consonants) * len(vowels)`` as
    alternating consonant-vowel syllables, guaranteeing uniqueness and a
    stable mapping across runs.
    """
    base = len(_CONSONANTS) * len(_VOWELS)
    syllables = []
    value = term_id
    while True:
        digit = value % base
        syllables.append(_CONSONANTS[digit // len(_VOWELS)] + _VOWELS[digit % len(_VOWELS)])
        value //= base
        if value == 0:
            break
    # A fixed suffix syllable keeps synthetic words from colliding with the
    # common-word prefix list.
    return "".join(reversed(syllables)) + "x"


class Vocabulary:
    """Bijection between term IDs ``0 .. size-1`` and term strings.

    Rank 0 is, by convention, the most document-frequent term; generators
    in this package sample term IDs under that convention.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise WorkloadError(f"vocabulary size must be positive, got {size}")
        self.size = size
        self._words: List[str] = []
        self._ids: Dict[str, int] = {}
        for term_id in range(size):
            if term_id < len(_COMMON_WORDS):
                word = _COMMON_WORDS[term_id]
            else:
                word = _synthetic_word(term_id)
            self._words.append(word)
            self._ids[word] = term_id

    def word(self, term_id: int) -> str:
        """The term string for ``term_id``."""
        if not 0 <= term_id < self.size:
            raise WorkloadError(
                f"term id {term_id} out of range [0, {self.size})"
            )
        return self._words[term_id]

    def term_id(self, word: str) -> int:
        """The term ID for ``word``; raises if unknown."""
        try:
            return self._ids[word]
        except KeyError:
            raise WorkloadError(f"unknown vocabulary word '{word}'") from None

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def words(self, term_ids) -> List[str]:
        """Map an iterable of term IDs to their strings."""
        return [self.word(int(t)) for t in term_ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(size={self.size})"
