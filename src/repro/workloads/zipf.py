"""Zipf-distributed sampling over a finite rank space.

Typical document databases have Zipfian keyword distributions (the paper
cites Zipf's classic study and observes it in Figure 3(a) for the IBM
intranet corpus).  :class:`ZipfSampler` draws ranks ``0 .. n-1`` where rank
``r`` has probability proportional to ``1 / (r + 1) ** s``.

``numpy.random.Generator.zipf`` samples from the *unbounded* zeta
distribution, which is unusable here — we need a bounded vocabulary and
full control over the exponent (including ``s <= 1``, where the unbounded
law does not normalize).  Sampling is therefore done by inverse-CDF lookup
(``searchsorted`` over the cumulative weights), which is exact, vectorized
and deterministic under a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError


def zipf_weights(n: int, s: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities for ranks ``0 .. n-1``.

    Parameters
    ----------
    n:
        Size of the rank space (vocabulary size).
    s:
        Zipf exponent; larger means more skew.  ``s = 0`` degenerates to
        the uniform distribution.
    """
    if n <= 0:
        raise WorkloadError(f"rank space must be positive, got n={n}")
    if s < 0:
        raise WorkloadError(f"Zipf exponent must be non-negative, got s={s}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


class ZipfSampler:
    """Draw Zipf-distributed ranks from a bounded rank space.

    Parameters
    ----------
    n:
        Size of the rank space.
    s:
        Zipf exponent.
    rng:
        Optional ``numpy.random.Generator``; a fresh deterministic one is
        created from ``seed`` when omitted.
    seed:
        Seed used when ``rng`` is omitted.
    weights:
        Optional explicit (unnormalized) weight vector overriding the pure
        Zipf law, e.g. a permuted or perturbed popularity profile.  Length
        must equal ``n``.
    """

    def __init__(
        self,
        n: int,
        s: float = 1.0,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        weights: Optional[np.ndarray] = None,
    ):
        if weights is None:
            probabilities = zipf_weights(n, s)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise WorkloadError(
                    f"weights must have shape ({n},), got {weights.shape}"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise WorkloadError("weights must be non-negative and sum > 0")
            probabilities = weights / weights.sum()
        self.n = n
        self.s = s
        self.probabilities = probabilities
        self._cumulative = np.cumsum(probabilities)
        # Guard against floating-point undershoot at the top end.
        self._cumulative[-1] = 1.0
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks (with replacement), as an int64 array."""
        if size < 0:
            raise WorkloadError(f"sample size must be non-negative, got {size}")
        uniforms = self.rng.random(size)
        return np.searchsorted(self._cumulative, uniforms, side="right").astype(
            np.int64
        )

    def sample_one(self) -> int:
        """Draw a single rank."""
        return int(self.sample(1)[0])

    def expected_counts(self, total: int) -> np.ndarray:
        """Expected occurrence counts of each rank over ``total`` draws."""
        if total < 0:
            raise WorkloadError(f"total must be non-negative, got {total}")
        return self.probabilities * float(total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfSampler(n={self.n}, s={self.s})"


def correlated_popularity(
    base_weights: np.ndarray,
    *,
    rank_jitter: float,
    rng: np.random.Generator,
    demoted_ranks: Optional[np.ndarray] = None,
    demotion_factor: float = 1e-3,
) -> np.ndarray:
    """Derive a second popularity profile rank-correlated with a first.

    Used to build the query-frequency profile ``qi`` from the
    term-frequency profile ``ti``: people "generally query on terms that
    they know about" (Section 3.3), so the profiles correlate strongly —
    but not perfectly, and some document-popular terms (the paper's
    *following*) are almost never queried.

    Parameters
    ----------
    base_weights:
        The source profile (e.g. Zipf weights by term rank).
    rank_jitter:
        Standard deviation, in ranks, of Gaussian noise applied to each
        term's rank before re-assigning weights.  ``0`` reproduces the
        source ranking exactly.
    rng:
        Randomness source.
    demoted_ranks:
        Ranks (indices into ``base_weights``) whose derived popularity is
        multiplied by ``demotion_factor`` — the document-popular,
        rarely-queried terms.
    demotion_factor:
        Multiplier applied to demoted terms (default: three orders of
        magnitude down).
    """
    n = len(base_weights)
    positions = np.arange(n, dtype=np.float64)
    if rank_jitter > 0:
        positions = positions + rng.normal(0.0, rank_jitter, size=n)
    # The term whose (jittered) position is smallest receives the largest
    # weight, preserving the Zipf *shape* while shuffling *which* term holds
    # each rank.
    order = np.argsort(positions)
    sorted_base = np.sort(base_weights)[::-1]
    derived = np.empty(n, dtype=np.float64)
    derived[order] = sorted_base
    if demoted_ranks is not None and len(demoted_ranks) > 0:
        derived = derived.copy()
        derived[demoted_ranks] *= demotion_factor
    return derived / derived.sum()
