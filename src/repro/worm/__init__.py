"""Simulated append-capable WORM storage substrate.

The paper's storage model (Section 2.2) is a magnetic-disk "WORM box" whose
software enforces write-once semantics through a file-system-like interface,
*extended* with two capabilities conventional WORM boxes lack:

1. appending records to otherwise immutable files (needed to grow posting
   lists in place), and
2. appending new bytes / setting write-once slots inside partially-written
   file blocks (needed to set jump-index pointers after block creation).

This subpackage provides that device in simulation:

* :class:`~repro.worm.block.Block` — a fixed-capacity block with an
  append-only data region and write-once pointer slots.
* :class:`~repro.worm.device.WormDevice` / :class:`~repro.worm.device.WormFile`
  — the device's namespace of append-only block files.
* :class:`~repro.worm.cache.LRUBlockCache` — the storage server's
  non-volatile cache, the lever behind the paper's merging scheme.
* :class:`~repro.worm.iostats.IoStats` — random-I/O accounting used by every
  Figure-2/8 experiment.
* :class:`~repro.worm.storage.CachedWormStore` — device + cache + accounting
  glued together behind one interface.
"""

from repro.worm.block import Block
from repro.worm.cache import CacheStats, LRUBlockCache
from repro.worm.device import WormDevice, WormFile
from repro.worm.iostats import IoStats
from repro.worm.persistent import (
    JournalScanReport,
    JournaledWormDevice,
    scan_journal,
)
from repro.worm.storage import CachedWormStore

__all__ = [
    "Block",
    "CacheStats",
    "CachedWormStore",
    "IoStats",
    "JournalScanReport",
    "JournaledWormDevice",
    "LRUBlockCache",
    "WormDevice",
    "WormFile",
    "scan_journal",
]
