"""Fixed-capacity WORM blocks with append-only data and write-once slots.

A :class:`Block` models one disk block on the paper's extended WORM device.
It has two regions:

* a **data region** that grows strictly by appends — once a byte has been
  written it can never change; and
* an optional array of **write-once pointer slots** reserved at block
  creation time (used by jump indexes, Section 4.3, where "the pointer
  assignment operation can also be implemented as an append operation").

Both regions enforce WORM semantics themselves, so even code holding a
direct reference to a block — including the adversary in
:mod:`repro.adversary` — cannot rewrite committed bytes.  That mirrors the
threat model: Mala may issue any *legal* device operation, and the device is
trusted to refuse illegal ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import BlockBoundsError, WormViolationError


class Block:
    """One append-only block with optional write-once pointer slots.

    Parameters
    ----------
    capacity:
        Usable size of the data region in bytes.
    slot_count:
        Number of write-once pointer slots reserved alongside the data
        region.  Slots are addressed ``0 .. slot_count - 1`` and each may be
        assigned exactly once.
    block_no:
        Position of this block within its file; informational only.
    """

    __slots__ = ("capacity", "block_no", "_data", "_slots", "_slots_set")

    def __init__(self, capacity: int, *, slot_count: int = 0, block_no: int = 0):
        if capacity <= 0:
            raise ValueError(f"block capacity must be positive, got {capacity}")
        if slot_count < 0:
            raise ValueError(f"slot_count must be non-negative, got {slot_count}")
        self.capacity = capacity
        self.block_no = block_no
        self._data = bytearray()
        self._slots: List[Optional[int]] = [None] * slot_count
        self._slots_set = 0

    # ------------------------------------------------------------------
    # data region
    # ------------------------------------------------------------------
    @property
    def fill(self) -> int:
        """Number of committed data bytes."""
        return len(self._data)

    @property
    def remaining(self) -> int:
        """Free data bytes left in the block."""
        return self.capacity - len(self._data)

    def is_full(self) -> bool:
        """Whether the data region has no free space left."""
        return len(self._data) >= self.capacity

    def append(self, payload: bytes) -> int:
        """Append ``payload`` to the data region and return its offset.

        Raises
        ------
        BlockBoundsError
            If the payload does not fit in the remaining space.  Callers are
            expected to check :attr:`remaining` and roll to a fresh block.
        """
        if len(payload) > self.remaining:
            raise BlockBoundsError(
                f"append of {len(payload)} bytes exceeds remaining "
                f"{self.remaining} bytes in block {self.block_no}"
            )
        offset = len(self._data)
        self._data.extend(payload)
        return offset

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` committed bytes starting at ``offset``.

        With no arguments, returns the whole committed data region.
        """
        if length is None:
            length = len(self._data) - offset
        if offset < 0 or length < 0 or offset + length > len(self._data):
            raise BlockBoundsError(
                f"read [{offset}, {offset + length}) outside committed "
                f"region [0, {len(self._data)}) of block {self.block_no}"
            )
        return bytes(self._data[offset : offset + length])

    # ------------------------------------------------------------------
    # write-once pointer slots
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of pointer slots reserved in this block."""
        return len(self._slots)

    @property
    def slots_set(self) -> int:
        """Number of pointer slots that have been assigned."""
        return self._slots_set

    def set_slot(self, slot_no: int, value: int) -> None:
        """Assign write-once slot ``slot_no`` to ``value``.

        Raises
        ------
        WormViolationError
            If the slot was already assigned — rewriting a pointer is
            exactly the manipulation WORM must prevent.
        BlockBoundsError
            If ``slot_no`` is out of range.
        """
        if not 0 <= slot_no < len(self._slots):
            raise BlockBoundsError(
                f"slot {slot_no} out of range [0, {len(self._slots)}) "
                f"in block {self.block_no}"
            )
        if self._slots[slot_no] is not None:
            raise WormViolationError(
                f"slot {slot_no} of block {self.block_no} is already set to "
                f"{self._slots[slot_no]}; WORM slots are write-once"
            )
        self._slots[slot_no] = value
        self._slots_set += 1

    def get_slot(self, slot_no: int) -> Optional[int]:
        """Return the value of slot ``slot_no``, or ``None`` if unset."""
        if not 0 <= slot_no < len(self._slots):
            raise BlockBoundsError(
                f"slot {slot_no} out of range [0, {len(self._slots)}) "
                f"in block {self.block_no}"
            )
        return self._slots[slot_no]

    def slots(self) -> Tuple[Optional[int], ...]:
        """Snapshot of all slots (``None`` where unset)."""
        return tuple(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(no={self.block_no}, fill={self.fill}/{self.capacity}, "
            f"slots={self._slots_set}/{len(self._slots)})"
        )
