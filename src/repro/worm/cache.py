"""LRU simulator for the storage server's non-volatile block cache.

This is the model behind Section 3 of the paper:

    "If there is a cache hit when writing an index entry, then no I/O
    occurs (unless the block becomes full, in which case it is written
    out).  If there is a cache miss, then the least recently used cache
    block is written out, and the needed block is read."

Data sitting in the non-volatile cache counts as *committed to WORM* from
the application's point of view, which is what makes cache-resident tail
blocks compatible with the trustworthiness requirement of real-time index
update.

The cache is deliberately agnostic about what a "block" is: keys are
arbitrary hashables (posting-list IDs, ``(file, block_no)`` pairs, ...),
because the Figure-2 and Figure-8(b) experiments only need occupancy and
eviction behaviour, not block contents.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.worm.iostats import IoStats


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for an :class:`LRUBlockCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Writes caused by a resident block filling up and being flushed.
    full_flushes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 when no accesses occurred."""
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        """Counters (and derived rates) as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "full_flushes": self.full_flushes,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class LRUBlockCache:
    """Least-recently-used cache of block slots with I/O accounting.

    Parameters
    ----------
    capacity_blocks:
        Number of block slots.  ``None`` simulates an unbounded cache (every
        access after the first is a hit) — useful as the "no caching
        pressure" end of a sweep.
    io:
        Counter mutated on every simulated disk access.  A fresh one is
        created when omitted.
    writeback_on_evict:
        Whether evicting a block costs a write.  The paper's cache starts
        (and effectively stays) dirty — posting-list tail blocks are always
        modified while resident — so this defaults to ``True``.
    """

    def __init__(
        self,
        capacity_blocks: Optional[int],
        *,
        io: Optional[IoStats] = None,
        writeback_on_evict: bool = True,
    ):
        if capacity_blocks is not None and capacity_blocks <= 0:
            raise ValueError(
                f"capacity_blocks must be positive or None, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self.io = io if io is not None else IoStats()
        self.writeback_on_evict = writeback_on_evict
        self.stats = CacheStats()
        self._resident: "OrderedDict[Hashable, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # core access paths
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._resident

    def access(self, key: Hashable, *, fetch_on_miss: bool = True) -> bool:
        """Touch ``key`` for reading or writing; return ``True`` on a hit.

        On a miss the least-recently-used resident block is written out
        (one random write, if ``writeback_on_evict``) and, when
        ``fetch_on_miss``, the needed block is read in (one random read).
        Pass ``fetch_on_miss=False`` for brand-new blocks that have no
        on-disk contents yet (e.g. the first block of a new posting list).
        """
        resident = self._resident
        if key in resident:
            resident.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.capacity_blocks is not None and len(resident) >= self.capacity_blocks:
            resident.popitem(last=False)
            self.stats.evictions += 1
            if self.writeback_on_evict:
                self.io.block_writes += 1
        if fetch_on_miss:
            self.io.block_reads += 1
        resident[key] = None
        return False

    def note_block_full(self, key: Hashable) -> None:
        """Record that the resident block under ``key`` filled and was flushed.

        Costs one random write.  The cache slot is retained: it now holds
        the fresh (empty) successor tail block of the same list, which does
        not need to be read from disk.
        """
        self.io.block_writes += 1
        self.stats.full_flushes += 1
        if key in self._resident:
            self._resident.move_to_end(key)

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without any I/O (e.g. block retired read-only)."""
        self._resident.pop(key, None)

    def flush_all(self) -> int:
        """Write out every resident block; return the number written."""
        count = len(self._resident)
        if self.writeback_on_evict:
            self.io.block_writes += count
        self._resident.clear()
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity_blocks is None else self.capacity_blocks
        return f"LRUBlockCache(resident={len(self._resident)}/{cap})"


# ----------------------------------------------------------------------
# pluggable eviction policies (read-path caches)
# ----------------------------------------------------------------------
class EvictionPolicy:
    """Recency bookkeeping for a read cache: who gets evicted next.

    The write-path :class:`LRUBlockCache` above models the paper's
    storage-server cache and is deliberately LRU-only (Section 3 fixes
    that).  The *read-path* caches in :mod:`repro.search.readcache` are
    ours to tune, so their eviction order is pluggable: a policy tracks
    key recency and answers :meth:`victim`; the owning cache stores the
    actual values and calls back on insert/hit/removal.

    Policies never remove keys on their own — :meth:`victim` nominates,
    the cache evicts and then calls :meth:`discard`.
    """

    #: Registry name (also the CLI ``--cache-policy`` value).
    name = "base"

    def on_insert(self, key: Hashable) -> None:
        """A key was added to the cache."""
        raise NotImplementedError

    def on_hit(self, key: Hashable) -> None:
        """A resident key was accessed."""
        raise NotImplementedError

    def victim(self) -> Hashable:
        """The key that should be evicted next (must be non-empty)."""
        raise NotImplementedError

    def discard(self, key: Hashable) -> None:
        """Forget a key (evicted or invalidated by the cache)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Classic least-recently-used ordering."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def discard(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)


class TwoQPolicy(EvictionPolicy):
    """Simplified 2Q (Johnson & Shasha): scan-resistant LRU.

    New keys enter a FIFO probation queue (``A1in``); only a *second*
    access promotes to the main LRU (``Am``), so a one-pass scan over a
    cold posting list cannot flush the hot working set.  Evicted
    probation keys leave a ghost entry (``A1out``, keys only) whose
    readmission goes straight to ``Am``.
    """

    name = "2q"

    def __init__(self, *, a1_fraction: float = 0.25, ghost_factor: int = 2):
        if not 0.0 < a1_fraction < 1.0:
            raise ValueError(f"a1_fraction must be in (0, 1), got {a1_fraction}")
        self._a1_fraction = a1_fraction
        self._ghost_factor = ghost_factor
        self._a1in: "OrderedDict[Hashable, None]" = OrderedDict()
        self._am: "OrderedDict[Hashable, None]" = OrderedDict()
        self._ghost: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        if key in self._ghost:
            del self._ghost[key]
            self._am[key] = None
        else:
            self._a1in[key] = None

    def on_hit(self, key: Hashable) -> None:
        if key in self._a1in:
            del self._a1in[key]
            self._am[key] = None
        elif key in self._am:
            self._am.move_to_end(key)

    def victim(self) -> Hashable:
        total = len(self._a1in) + len(self._am)
        if self._a1in and (
            not self._am or len(self._a1in) >= self._a1_fraction * total
        ):
            key = next(iter(self._a1in))
            # Remember the evictee so a re-reference promotes directly.
            self._ghost[key] = None
            ghost_cap = max(1, self._ghost_factor * total)
            while len(self._ghost) > ghost_cap:
                self._ghost.popitem(last=False)
            return key
        return next(iter(self._am))

    def discard(self, key: Hashable) -> None:
        self._a1in.pop(key, None)
        self._am.pop(key, None)

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)


class SegmentedLRUPolicy(EvictionPolicy):
    """Segmented LRU: probationary and protected segments.

    First access lands in the probationary segment; a hit promotes to
    the protected segment (capped at ``protected_fraction`` of resident
    keys, overflow demoting back to probationary-MRU).  Eviction always
    takes the probationary LRU tail, so keys touched twice survive
    one-shot scans — similar insight to 2Q, different mechanics.
    """

    name = "slru"

    def __init__(self, *, protected_fraction: float = 0.75):
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}"
            )
        self._protected_fraction = protected_fraction
        self._probation: "OrderedDict[Hashable, None]" = OrderedDict()
        self._protected: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._probation[key] = None

    def on_hit(self, key: Hashable) -> None:
        if key in self._probation:
            del self._probation[key]
            self._protected[key] = None
            cap = max(1, int(self._protected_fraction * len(self)))
            while len(self._protected) > cap:
                demoted, _ = self._protected.popitem(last=False)
                self._probation[demoted] = None
        elif key in self._protected:
            self._protected.move_to_end(key)

    def victim(self) -> Hashable:
        if self._probation:
            return next(iter(self._probation))
        return next(iter(self._protected))

    def discard(self, key: Hashable) -> None:
        self._probation.pop(key, None)
        self._protected.pop(key, None)

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)


#: Read-cache policies by registry/CLI name.
READ_CACHE_POLICIES = {
    LRUPolicy.name: LRUPolicy,
    TwoQPolicy.name: TwoQPolicy,
    SegmentedLRUPolicy.name: SegmentedLRUPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a read-cache eviction policy by registry name."""
    try:
        return READ_CACHE_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown cache policy '{name}'; "
            f"choose from {sorted(READ_CACHE_POLICIES)}"
        ) from None


def cache_blocks_for_size(cache_size_bytes: int, block_size: int) -> int:
    """Number of block slots in a cache of ``cache_size_bytes``.

    This is the paper's ``M = cache size / block size`` relation that links
    cache capacity to the number of merged posting lists (Section 3.4).
    """
    if cache_size_bytes <= 0 or block_size <= 0:
        raise ValueError("cache size and block size must be positive")
    return max(1, cache_size_bytes // block_size)
