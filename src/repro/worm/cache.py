"""LRU simulator for the storage server's non-volatile block cache.

This is the model behind Section 3 of the paper:

    "If there is a cache hit when writing an index entry, then no I/O
    occurs (unless the block becomes full, in which case it is written
    out).  If there is a cache miss, then the least recently used cache
    block is written out, and the needed block is read."

Data sitting in the non-volatile cache counts as *committed to WORM* from
the application's point of view, which is what makes cache-resident tail
blocks compatible with the trustworthiness requirement of real-time index
update.

The cache is deliberately agnostic about what a "block" is: keys are
arbitrary hashables (posting-list IDs, ``(file, block_no)`` pairs, ...),
because the Figure-2 and Figure-8(b) experiments only need occupancy and
eviction behaviour, not block contents.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.worm.iostats import IoStats


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for an :class:`LRUBlockCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Writes caused by a resident block filling up and being flushed.
    full_flushes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 when no accesses occurred."""
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        """Counters (and derived rates) as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "full_flushes": self.full_flushes,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class LRUBlockCache:
    """Least-recently-used cache of block slots with I/O accounting.

    Parameters
    ----------
    capacity_blocks:
        Number of block slots.  ``None`` simulates an unbounded cache (every
        access after the first is a hit) — useful as the "no caching
        pressure" end of a sweep.
    io:
        Counter mutated on every simulated disk access.  A fresh one is
        created when omitted.
    writeback_on_evict:
        Whether evicting a block costs a write.  The paper's cache starts
        (and effectively stays) dirty — posting-list tail blocks are always
        modified while resident — so this defaults to ``True``.
    """

    def __init__(
        self,
        capacity_blocks: Optional[int],
        *,
        io: Optional[IoStats] = None,
        writeback_on_evict: bool = True,
    ):
        if capacity_blocks is not None and capacity_blocks <= 0:
            raise ValueError(
                f"capacity_blocks must be positive or None, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self.io = io if io is not None else IoStats()
        self.writeback_on_evict = writeback_on_evict
        self.stats = CacheStats()
        self._resident: "OrderedDict[Hashable, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # core access paths
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._resident

    def access(self, key: Hashable, *, fetch_on_miss: bool = True) -> bool:
        """Touch ``key`` for reading or writing; return ``True`` on a hit.

        On a miss the least-recently-used resident block is written out
        (one random write, if ``writeback_on_evict``) and, when
        ``fetch_on_miss``, the needed block is read in (one random read).
        Pass ``fetch_on_miss=False`` for brand-new blocks that have no
        on-disk contents yet (e.g. the first block of a new posting list).
        """
        resident = self._resident
        if key in resident:
            resident.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.capacity_blocks is not None and len(resident) >= self.capacity_blocks:
            resident.popitem(last=False)
            self.stats.evictions += 1
            if self.writeback_on_evict:
                self.io.block_writes += 1
        if fetch_on_miss:
            self.io.block_reads += 1
        resident[key] = None
        return False

    def note_block_full(self, key: Hashable) -> None:
        """Record that the resident block under ``key`` filled and was flushed.

        Costs one random write.  The cache slot is retained: it now holds
        the fresh (empty) successor tail block of the same list, which does
        not need to be read from disk.
        """
        self.io.block_writes += 1
        self.stats.full_flushes += 1
        if key in self._resident:
            self._resident.move_to_end(key)

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without any I/O (e.g. block retired read-only)."""
        self._resident.pop(key, None)

    def flush_all(self) -> int:
        """Write out every resident block; return the number written."""
        count = len(self._resident)
        if self.writeback_on_evict:
            self.io.block_writes += count
        self._resident.clear()
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity_blocks is None else self.capacity_blocks
        return f"LRUBlockCache(resident={len(self._resident)}/{cap})"


def cache_blocks_for_size(cache_size_bytes: int, block_size: int) -> int:
    """Number of block slots in a cache of ``cache_size_bytes``.

    This is the paper's ``M = cache size / block size`` relation that links
    cache capacity to the number of merged posting lists (Section 3.4).
    """
    if cache_size_bytes <= 0 or block_size <= 0:
        raise ValueError("cache size and block size must be positive")
    return max(1, cache_size_bytes // block_size)
