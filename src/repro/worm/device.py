"""The simulated append-capable WORM device and its block files.

:class:`WormDevice` exposes the interface the paper argues storage vendors
can provide "relatively easily" (Section 2.2): a namespace of files whose
contents can be *appended to* but never rewritten or deleted before their
retention period expires.

Trust boundary
--------------
Everything above this module — index code, search engine, and the adversary
alike — manipulates storage exclusively through this interface.  The device
enforces:

* no overwrite of committed data bytes (``Block.append`` only grows),
* no reassignment of pointer slots (``Block.set_slot`` is write-once),
* no file deletion before ``retention_until``.

What the device deliberately does **not** enforce is *semantic* validity:
Mala can append garbage records, out-of-order document IDs, or spurious
pointer targets, exactly as in the paper.  Detecting those is the job of
the certified readers in :mod:`repro.core` and :mod:`repro.adversary.detection`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    FileExistsOnWormError,
    UnknownFileError,
    WormViolationError,
)
from repro.worm.block import Block

#: Default block size used throughout the library; matches the 8 KB blocks
#: of the paper's Section 3.4 simulations.
DEFAULT_BLOCK_SIZE = 8192


class WormFile:
    """An append-only sequence of blocks on a :class:`WormDevice`.

    Files are created through :meth:`WormDevice.create_file`; they remember
    their device-assigned name and grow by whole blocks.  The *tail* block
    is the only block accepting data appends; earlier blocks remain open for
    write-once slot assignments only (the jump-index pointer pattern).
    """

    __slots__ = ("name", "block_size", "slot_count", "_blocks", "retention_until")

    def __init__(
        self,
        name: str,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        slot_count: int = 0,
        retention_until: Optional[float] = None,
    ):
        self.name = name
        self.block_size = block_size
        #: Pointer slots reserved in every block of this file.
        self.slot_count = slot_count
        self._blocks: List[Block] = []
        #: Epoch-seconds until which the file may not be deleted
        #: (``None`` = infinite retention).
        self.retention_until = retention_until

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks."""
        return len(self._blocks)

    @property
    def tail_block_no(self) -> int:
        """Index of the tail (append-target) block; ``-1`` when empty."""
        return len(self._blocks) - 1

    def block(self, block_no: int) -> Block:
        """Return block ``block_no``.

        The returned object enforces WORM semantics itself, so handing it
        out does not widen the trust boundary.
        """
        try:
            return self._blocks[block_no]
        except IndexError:
            raise UnknownFileError(
                f"block {block_no} does not exist in file '{self.name}' "
                f"({len(self._blocks)} blocks)"
            ) from None

    def blocks(self) -> Iterator[Block]:
        """Iterate over all allocated blocks in order."""
        return iter(self._blocks)

    # ------------------------------------------------------------------
    # mutation (append-only)
    # ------------------------------------------------------------------
    def allocate_block(self) -> Block:
        """Allocate and return a fresh tail block."""
        block = Block(
            self.block_size, slot_count=self.slot_count, block_no=len(self._blocks)
        )
        self._blocks.append(block)
        return block

    def validate_append(self, payload: bytes) -> None:
        """Check that :meth:`append_record` would accept ``payload``.

        Raises without mutating anything — the journaled device calls
        this *before* logging the append, so an operation that the
        device would refuse is never written to the journal.
        """
        if len(payload) > self.block_size:
            raise WormViolationError(
                f"record of {len(payload)} bytes exceeds block size "
                f"{self.block_size} of file '{self.name}'"
            )

    def validate_set_slot(self, block_no: int, slot_no: int) -> None:
        """Check that :meth:`set_slot` would accept the assignment.

        Raises without mutating anything (see :meth:`validate_append`).
        """
        block = self.block(block_no)
        # get_slot bounds-checks slot_no; a committed value means the
        # write-once slot is already taken.
        if block.get_slot(slot_no) is not None:
            raise WormViolationError(
                f"slot {slot_no} of block {block_no} is already set to "
                f"{block.get_slot(slot_no)}; WORM slots are write-once"
            )

    def append_record(
        self, payload: bytes, *, force_new_block: bool = False
    ) -> Tuple[int, int]:
        """Append ``payload`` to the tail block, rolling blocks as needed.

        Returns ``(block_no, offset)`` of the committed record.  A record
        never spans blocks; payloads larger than the block size are
        rejected.  ``force_new_block`` starts a fresh block even if the
        tail has room — used by posting lists that cap entries per block
        below raw capacity to reserve space for jump pointers.
        """
        self.validate_append(payload)
        if (
            not self._blocks
            or force_new_block
            or self._blocks[-1].remaining < len(payload)
        ):
            self.allocate_block()
        tail = self._blocks[-1]
        offset = tail.append(payload)
        return tail.block_no, offset

    def set_slot(self, block_no: int, slot_no: int, value: int) -> None:
        """Assign write-once pointer slot ``slot_no`` in block ``block_no``."""
        self.block(block_no).set_slot(slot_no, value)

    def get_slot(self, block_no: int, slot_no: int) -> Optional[int]:
        """Read pointer slot ``slot_no`` of block ``block_no`` (``None`` if unset)."""
        return self.block(block_no).get_slot(slot_no)

    def read(self, block_no: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read committed bytes from block ``block_no``."""
        return self.block(block_no).read(offset, length)

    def total_bytes(self) -> int:
        """Total committed data bytes across all blocks."""
        return sum(b.fill for b in self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WormFile('{self.name}', blocks={len(self._blocks)})"


class WormDevice:
    """A namespace of :class:`WormFile` objects with WORM semantics.

    Parameters
    ----------
    block_size:
        Default block size for files created without an explicit override.
    """

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self._files: Dict[str, WormFile] = {}

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create_file(
        self,
        name: str,
        *,
        block_size: Optional[int] = None,
        slot_count: int = 0,
        retention_until: Optional[float] = None,
    ) -> WormFile:
        """Create a new append-only file.

        Raises
        ------
        FileExistsOnWormError
            If ``name`` is already taken.  Honest writers never reuse names;
            Mala cannot replace a file by re-creating it.
        """
        self.validate_create(name)
        worm_file = self._new_file(
            name,
            block_size=block_size or self.block_size,
            slot_count=slot_count,
            retention_until=retention_until,
        )
        self._files[name] = worm_file
        return worm_file

    def validate_create(self, name: str) -> None:
        """Check that :meth:`create_file` would accept ``name``.

        Raises without mutating anything — the journaled device calls
        this *before* logging the create, so a refused operation never
        reaches the journal.
        """
        if name in self._files:
            raise FileExistsOnWormError(
                f"WORM file '{name}' already exists and cannot be replaced"
            )

    def validate_delete(self, name: str, *, now: Optional[float] = None) -> None:
        """Check that :meth:`delete_file` would accept the deletion.

        Raises without mutating anything (see :meth:`validate_create`).
        """
        worm_file = self.open_file(name)
        expired = (
            worm_file.retention_until is not None
            and now is not None
            and now >= worm_file.retention_until
        )
        if not expired:
            raise WormViolationError(
                f"WORM file '{name}' is within its retention period and "
                "cannot be deleted"
            )

    def _new_file(self, name: str, **kwargs) -> WormFile:
        """File factory; subclasses (e.g. the journaled device) override."""
        return WormFile(name, **kwargs)

    def open_file(self, name: str) -> WormFile:
        """Return the existing file ``name``."""
        try:
            return self._files[name]
        except KeyError:
            raise UnknownFileError(f"no WORM file named '{name}'") from None

    def exists(self, name: str) -> bool:
        """Whether a file named ``name`` exists."""
        return name in self._files

    def delete_file(self, name: str, *, now: Optional[float] = None) -> None:
        """Delete ``name`` if (and only if) its retention period has expired.

        The paper's records are "term-immutable": immutable for a mandated
        retention period.  Deleting before expiry raises
        :class:`WormViolationError`; files with infinite retention
        (``retention_until is None``) can never be deleted.
        """
        self.validate_delete(name, now=now)
        del self._files[name]

    def list_files(self) -> List[str]:
        """Sorted names of all files on the device."""
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Total committed data bytes across the whole device."""
        return sum(f.total_bytes() for f in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WormDevice(files={len(self._files)}, block_size={self.block_size})"
