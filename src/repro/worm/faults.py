"""Fault injection for the journaled WORM device.

Crash-safety is a property of the *recovery path*, and recovery paths
rot unless they are executed: journaled systems fail precisely at torn
and partial writes (Protocol-Aware Recovery, FAST 2018), not on the
happy path.  This module makes every failure mode of the journal write
pipeline injectable so the test suite can drive replay through all of
them:

* **I/O faults** — fail (or tear) the journal file's ``write``,
  ``flush``, or ``fsync`` on the Nth call.  An
  :class:`InjectedFaultError` behaves like a real ``OSError``: the
  device rolls the partial frame back and leaves memory untouched.
* **Simulated crashes** — power loss at any byte of a journal write
  (``keep_bytes``) or at any registered WAL stage between logging and
  applying an operation.  :class:`SimulatedCrashError` derives from
  ``BaseException`` *on purpose*: the device's rollback handler catches
  ``Exception``, so a crash leaves its torn bytes on disk exactly like
  a real power cut, and recovery has to cope at replay time.
* **Byte-boundary tears** — :func:`tear_journal` truncates a journal
  file to any prefix length, simulating the suffix a torn sector write
  leaves behind.

The registry of injection points is public so tests can enumerate them
exhaustively: :data:`JOURNAL_OPS` are the faultable file operations and
:data:`CRASH_POINTS` the WAL stages every journaled mutation passes
through (see ``JournaledWormDevice._fault_point``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Optional

from repro.worm.persistent import JournaledWormDevice

#: Faultable journal file operations (Nth-call granularity).
JOURNAL_OPS = ("write", "flush", "fsync")

#: WAL stages of one journaled mutation (log first, then apply).
WAL_STAGES = ("between-log-and-apply", "after-apply")

#: Journaled mutating operations.
JOURNALED_OPS = ("create", "append", "set_slot", "delete")

#: Every registered crash point: ``"<op>:<stage>"``.
CRASH_POINTS = tuple(
    f"{op}:{stage}" for op in JOURNALED_OPS for stage in WAL_STAGES
)


class InjectedFaultError(OSError):
    """A scripted I/O failure: the journal op fails, the process lives."""


class SimulatedCrashError(BaseException):
    """Simulated power loss.

    Derives from ``BaseException`` so the device's
    rollback-on-log-failure handler (``except Exception``) does not
    engage: a crash must leave any partially written frame on disk for
    replay to recognize as a torn tail, unlike a survivable I/O error
    which is rolled back in-process.
    """


@dataclass
class _Rule:
    """One scripted fault: trip ``point`` on its ``on_call``-th hit."""

    kind: str  # "fail" (survivable) or "crash" (process death)
    point: str  # a JOURNAL_OPS name or a CRASH_POINTS name
    on_call: int  # 1-based call index at which the fault fires
    keep_bytes: Optional[int] = None  # torn write: bytes that reach disk
    fired: bool = False


class FaultPlan:
    """A schedule of faults plus call counters for every fault point.

    The counters tick even with no rules installed, so a dry run of a
    workload through :class:`FaultInjectingWormDevice` doubles as the
    enumeration of its injection points (one per counted call).
    """

    def __init__(self):
        self.rules: List[_Rule] = []
        self.counts: Dict[str, int] = {}
        #: Set once a crash fired; every later journal op re-raises.
        self.crashed = False

    def fail(self, point: str, on_call: int = 1, *,
             keep_bytes: Optional[int] = None) -> "FaultPlan":
        """Fail ``point`` on its Nth call with :class:`InjectedFaultError`.

        For ``write``, ``keep_bytes`` first lets that many bytes of the
        frame reach the file (a torn write the device must roll back).
        """
        self.rules.append(_Rule("fail", point, on_call, keep_bytes))
        return self

    def crash(self, point: str, on_call: int = 1, *,
              keep_bytes: Optional[int] = None) -> "FaultPlan":
        """Simulate power loss at ``point``'s Nth call.

        ``point`` may be a journal file op (``write``/``flush``/
        ``fsync``) or a WAL stage from :data:`CRASH_POINTS`.
        """
        self.rules.append(_Rule("crash", point, on_call, keep_bytes))
        return self

    def count(self, point: str) -> int:
        """How many times ``point`` has been hit so far."""
        return self.counts.get(point, 0)

    def _take(self, point: str) -> Optional[_Rule]:
        calls = self.counts.get(point, 0) + 1
        self.counts[point] = calls
        for rule in self.rules:
            if rule.point == point and rule.on_call == calls and not rule.fired:
                rule.fired = True
                return rule
        return None


class FaultyJournalFile:
    """Journal file wrapper that counts calls and injects planned faults."""

    def __init__(self, raw: BinaryIO, plan: FaultPlan):
        self._raw = raw
        self.plan = plan

    def _trip(self, point: str, data: Optional[bytes] = None) -> None:
        if self.plan.crashed:
            raise SimulatedCrashError(
                f"journal {point} after simulated power loss"
            )
        rule = self.plan._take(point)
        if rule is None:
            return
        if data is not None and rule.keep_bytes:
            # A torn write: only a prefix of the frame reaches the file.
            self._raw.write(data[: rule.keep_bytes])
        if rule.kind == "crash":
            self.plan.crashed = True
            raise SimulatedCrashError(
                f"simulated power loss at journal {point} "
                f"(call #{rule.on_call})"
            )
        raise InjectedFaultError(
            f"injected journal {point} failure (call #{rule.on_call})"
        )

    def write(self, data: bytes) -> int:
        self._trip("write", data)
        return self._raw.write(data)

    def flush(self) -> None:
        self._trip("flush")
        self._raw.flush()

    def fsync(self) -> None:
        """Counted fsync; ``JournaledWormDevice._fsync_journal`` calls it."""
        self._trip("fsync")
        os.fsync(self._raw.fileno())

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyJournalFile({self._raw!r}, counts={self.plan.counts})"


class FaultInjectingWormDevice(JournaledWormDevice):
    """A journaled device whose journal I/O follows a :class:`FaultPlan`.

    Behaves identically to :class:`JournaledWormDevice` until a planned
    fault fires.  Note the initial magic stamp of a brand-new v2 journal
    is ``write`` call #1, so the first record's frame is call #2.
    """

    def __init__(self, path: str, *, plan: Optional[FaultPlan] = None, **kwargs):
        # Set before super().__init__, which opens (and may write) the journal.
        self.plan = plan if plan is not None else FaultPlan()
        super().__init__(path, **kwargs)

    def _open_journal(self, path: str) -> BinaryIO:
        return FaultyJournalFile(super()._open_journal(path), self.plan)

    def _fault_point(self, name: str) -> None:
        if self.plan.crashed:
            raise SimulatedCrashError(
                f"operation reached WAL stage '{name}' after simulated "
                "power loss"
            )
        rule = self.plan._take(name)
        if rule is not None:
            # A fault *between* WAL stages can only be a crash: a
            # survivable error here would leave the journal ahead of
            # memory inside a live process, which the write-ahead
            # contract forbids.
            self.plan.crashed = True
            raise SimulatedCrashError(
                f"simulated power loss at WAL stage '{name}' "
                f"(call #{rule.on_call})"
            )


def tear_journal(path: str, length: int) -> None:
    """Truncate the journal at ``path`` to its first ``length`` bytes.

    Simulates the prefix a torn write leaves behind at an arbitrary byte
    boundary.  ``length`` must lie within the current file size — this
    helper only tears, it never extends.
    """
    size = os.path.getsize(path)
    if not 0 <= length <= size:
        raise ValueError(
            f"tear length {length} outside journal size {size} of '{path}'"
        )
    os.truncate(path, length)
