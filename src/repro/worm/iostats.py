"""Random-I/O accounting shared by every storage-level experiment.

The paper's update-performance results (Figure 2, Figure 8(b)) are counts
of *random I/Os per inserted document* produced by a cache simulator, not
wall-clock times.  :class:`IoStats` is the single counter object those
simulations mutate, so that a figure harness can snapshot/diff it around
each document insertion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IoSnapshot:
    """Immutable point-in-time copy of an :class:`IoStats` counter."""

    block_reads: int
    block_writes: int

    @property
    def total(self) -> int:
        """Total random I/Os (reads + writes)."""
        return self.block_reads + self.block_writes


class IoStats:
    """Mutable counters of random block reads and writes.

    All I/Os in the paper's cache model are random (posting-list tails are
    scattered across the device), so ``total`` is the quantity plotted on
    the y-axes of Figures 2 and 8(b).
    """

    __slots__ = ("block_reads", "block_writes")

    def __init__(self) -> None:
        self.block_reads = 0
        self.block_writes = 0

    @property
    def total(self) -> int:
        """Total random I/Os so far."""
        return self.block_reads + self.block_writes

    def count_read(self, n: int = 1) -> None:
        """Record ``n`` random block reads."""
        self.block_reads += n

    def count_write(self, n: int = 1) -> None:
        """Record ``n`` random block writes."""
        self.block_writes += n

    def reset(self) -> None:
        """Zero all counters."""
        self.block_reads = 0
        self.block_writes = 0

    def snapshot(self) -> IoSnapshot:
        """Return an immutable copy of the current counters."""
        return IoSnapshot(self.block_reads, self.block_writes)

    def since(self, snap: IoSnapshot) -> IoSnapshot:
        """Counters accumulated since ``snap`` was taken."""
        return IoSnapshot(
            self.block_reads - snap.block_reads,
            self.block_writes - snap.block_writes,
        )

    def as_dict(self) -> dict:
        """Counters as a plain dict (metrics-adapter convenience)."""
        return {
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IoStats(reads={self.block_reads}, writes={self.block_writes})"
