"""Journaled WORM device: durable storage on the host filesystem.

The in-memory :class:`~repro.worm.device.WormDevice` simulates the
paper's storage box for experiments; :class:`JournaledWormDevice` makes
the same semantics *durable* by writing every mutating operation to an
append-only journal file before applying it, and replaying the journal
on open. The journal is itself WORM-shaped: records are only ever
appended, each protected by a CRC32, with a strictly increasing sequence
number — so offline tampering with the journal (edits, reordering,
splices) is detected at replay time, exactly in the spirit of the
paper's read-time monotonicity checks.

Journal record format (little-endian)::

    u32 crc32( everything after this field )
    u64 sequence number
    u8  opcode
    u16 name length | name bytes          (opcodes with a file name)
    ... opcode-specific fields ...

A torn final record (power loss mid-append) is distinguishable from
tampering: it fails to parse *and* is the suffix of the journal; replay
truncates it and continues, because the paper's commit contract is that
an operation counts once it is fully on stable storage.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import BinaryIO, Optional

from repro.errors import TamperDetectedError, WormError
from repro.worm.device import DEFAULT_BLOCK_SIZE, WormDevice, WormFile

_OP_CREATE = 1
_OP_APPEND = 2
_OP_SET_SLOT = 3
_OP_DELETE = 4

_HEADER = struct.Struct("<IQB")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


class _JournaledWormFile(WormFile):
    """WormFile that journals appends and slot assignments."""

    __slots__ = ("_journal",)

    def __init__(self, name, *, journal: "JournaledWormDevice", **kwargs):
        super().__init__(name, **kwargs)
        self._journal = journal

    def append_record(self, payload: bytes, *, force_new_block: bool = False):
        if not self._journal.replaying:
            self._journal.log_append(self.name, payload, force_new_block)
        return super().append_record(payload, force_new_block=force_new_block)

    def set_slot(self, block_no: int, slot_no: int, value: int) -> None:
        if not self._journal.replaying:
            self._journal.log_set_slot(self.name, block_no, slot_no, value)
        super().set_slot(block_no, slot_no, value)


class JournaledWormDevice(WormDevice):
    """A WORM device whose full state is journaled to one host file.

    Parameters
    ----------
    path:
        Journal file path.  Created if missing; replayed if present.
    block_size:
        Default block size for new files (must match across sessions;
        recorded per file in the journal).
    fsync:
        Call ``os.fsync`` after every journal write.  Durable but slow;
        defaults to off for experiments.
    """

    def __init__(
        self,
        path: str,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        fsync: bool = False,
    ):
        super().__init__(block_size=block_size)
        self.path = path
        self.fsync = fsync
        self._sequence = 0
        #: True while the constructor replays history (suppresses logging).
        self.replaying = False
        existing = os.path.exists(path) and os.path.getsize(path) > 0
        self._journal_file: BinaryIO = open(path, "ab")
        if existing:
            self._replay()

    # ------------------------------------------------------------------
    # file factory / namespace ops (journaled)
    # ------------------------------------------------------------------
    def _new_file(self, name: str, **kwargs) -> WormFile:
        return _JournaledWormFile(name, journal=self, **kwargs)

    def create_file(self, name, **kwargs):
        worm_file = super().create_file(name, **kwargs)
        if not self.replaying:
            self._log_create(worm_file)
        return worm_file

    def delete_file(self, name: str, *, now: Optional[float] = None) -> None:
        super().delete_file(name, now=now)
        if not self.replaying:
            body = self._name_bytes(name) + _F64.pack(now if now is not None else -1.0)
            self._write_record(_OP_DELETE, body)

    # ------------------------------------------------------------------
    # journal writing
    # ------------------------------------------------------------------
    @staticmethod
    def _name_bytes(name: str) -> bytes:
        raw = name.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise WormError(f"file name too long to journal: {len(raw)} bytes")
        return _U16.pack(len(raw)) + raw

    def _write_record(self, opcode: int, body: bytes) -> None:
        tail = _U64.pack(self._sequence) + bytes([opcode]) + body
        self._journal_file.write(_U32.pack(zlib.crc32(tail)) + _U16.pack(len(tail)) + tail)
        self._journal_file.flush()
        if self.fsync:
            os.fsync(self._journal_file.fileno())
        self._sequence += 1

    def _log_create(self, worm_file: WormFile) -> None:
        retention = (
            worm_file.retention_until
            if worm_file.retention_until is not None
            else -1.0
        )
        body = (
            self._name_bytes(worm_file.name)
            + _U32.pack(worm_file.block_size)
            + _U32.pack(worm_file.slot_count)
            + _F64.pack(retention)
        )
        self._write_record(_OP_CREATE, body)

    def log_append(self, name: str, payload: bytes, force_new_block: bool) -> None:
        """Journal one data append (called by the file before applying)."""
        body = (
            self._name_bytes(name)
            + bytes([1 if force_new_block else 0])
            + _U32.pack(len(payload))
            + payload
        )
        self._write_record(_OP_APPEND, body)

    def log_set_slot(self, name: str, block_no: int, slot_no: int, value: int) -> None:
        """Journal one write-once slot assignment."""
        body = (
            self._name_bytes(name)
            + _U32.pack(block_no)
            + _U32.pack(slot_no)
            + _U64.pack(value)
        )
        self._write_record(_OP_SET_SLOT, body)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        self.replaying = True
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
            offset = 0
            expected_seq = 0
            while offset < len(data):
                parsed = self._parse_record(data, offset, expected_seq)
                if parsed is None:
                    # Torn tail: only acceptable as the journal's suffix.
                    break
                offset, opcode, body = parsed
                self._apply(opcode, body)
                expected_seq += 1
            self._sequence = expected_seq
            if offset < len(data):
                # Something unparseable before EOF that is not a clean
                # suffix would have raised in _parse_record; reaching here
                # means a torn trailing record, which we discard.
                pass
        finally:
            self.replaying = False

    def _parse_record(self, data: bytes, offset: int, expected_seq: int):
        if offset + 6 > len(data):
            return None  # torn length header
        (crc,) = _U32.unpack_from(data, offset)
        (length,) = _U16.unpack_from(data, offset + 4)
        start = offset + 6
        end = start + length
        if end > len(data):
            return None  # torn body
        tail = data[start:end]
        if zlib.crc32(tail) != crc:
            raise TamperDetectedError(
                f"journal record at byte {offset} fails its CRC",
                location=f"journal '{self.path}'",
                invariant="journal-crc",
            )
        seq, opcode = _U64.unpack_from(tail, 0)[0], tail[8]
        if seq != expected_seq:
            raise TamperDetectedError(
                f"journal record at byte {offset} claims sequence {seq}, "
                f"expected {expected_seq}",
                location=f"journal '{self.path}'",
                invariant="journal-sequence",
            )
        return end, opcode, tail[9:]

    def _apply(self, opcode: int, body: bytes) -> None:
        (name_len,) = _U16.unpack_from(body, 0)
        name = body[2 : 2 + name_len].decode("utf-8")
        cursor = 2 + name_len
        if opcode == _OP_CREATE:
            (block_size,) = _U32.unpack_from(body, cursor)
            (slot_count,) = _U32.unpack_from(body, cursor + 4)
            (retention,) = _F64.unpack_from(body, cursor + 8)
            self.create_file(
                name,
                block_size=block_size,
                slot_count=slot_count,
                retention_until=None if retention < 0 else retention,
            )
        elif opcode == _OP_APPEND:
            force_new = bool(body[cursor])
            (length,) = _U32.unpack_from(body, cursor + 1)
            payload = body[cursor + 5 : cursor + 5 + length]
            self.open_file(name).append_record(payload, force_new_block=force_new)
        elif opcode == _OP_SET_SLOT:
            (block_no,) = _U32.unpack_from(body, cursor)
            (slot_no,) = _U32.unpack_from(body, cursor + 4)
            (value,) = _U64.unpack_from(body, cursor + 8)
            self.open_file(name).set_slot(block_no, slot_no, value)
        elif opcode == _OP_DELETE:
            (now,) = _F64.unpack_from(body, cursor)
            self.delete_file(name, now=None if now < 0 else now)
        else:
            raise TamperDetectedError(
                f"journal contains unknown opcode {opcode}",
                location=f"journal '{self.path}'",
                invariant="journal-opcode",
            )

    def close(self) -> None:
        """Close the journal file handle (the device stays readable)."""
        self._journal_file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JournaledWormDevice('{self.path}', files={len(self)}, "
            f"records={self._sequence})"
        )
