"""Journaled WORM device: durable storage on the host filesystem.

The in-memory :class:`~repro.worm.device.WormDevice` simulates the
paper's storage box for experiments; :class:`JournaledWormDevice` makes
the same semantics *durable* by writing every mutating operation to an
append-only journal file before applying it, and replaying the journal
on open.  The journal is itself WORM-shaped: records are only ever
appended, each protected by a CRC32, with a strictly increasing sequence
number — so offline tampering with the journal (edits, reordering,
splices) is detected at replay time, exactly in the spirit of the
paper's read-time monotonicity checks.

Write-ahead contract
--------------------
Every mutating operation follows strict log-before-apply discipline
(ARIES-style): the operation is validated against the in-memory state,
then journaled, then applied.  If the journal write fails partway, the
partial frame is rolled back (truncated) and the in-memory state is left
untouched, so memory and journal never diverge inside a live process.
A crash between log and apply is harmless: replay applies the logged
operation on the next open.  Crash-safety is exercised exhaustively by
the fault-injection suite driving :mod:`repro.worm.faults`.

Journal formats (little-endian)
-------------------------------
Format **v2** (current; the file begins with the 8-byte magic
``b"WORMJRN2"``)::

    u8  record format version (currently 2)
    u32 crc32( everything after the length field )
    u32 record length
    u64 sequence number
    u8  opcode
    u16 name length | name bytes          (opcodes with a file name)
    ... opcode-specific fields ...

Format **v1** (legacy; no file magic) framed records with a *u16*
length, capping any record — and therefore any journaled append payload
— below 64 KiB::

    u32 crc32( everything after the length field )
    u16 record length
    u64 sequence number | u8 opcode | ...

v1 journals written by earlier releases replay transparently and keep
accepting v1-framed appends (with an explicit :class:`WormError` once a
record would overflow the u16 length, instead of a raw ``struct.error``).
New journals are always created in v2.

A torn final record (power loss mid-append) is distinguishable from
tampering: it fails to parse *and* is the suffix of the journal; replay
truncates it and continues, because the paper's commit contract is that
an operation counts once it is fully on stable storage.

Group commit
------------
With ``fsync=True``, durability defaults to one ``os.fsync`` per record.
``group_commit=N`` amortizes that to one fsync every N records; the
:meth:`JournaledWormDevice.sync` barrier forces the tail group down at
any time (and :meth:`~JournaledWormDevice.close` always ends with one).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, Optional, Tuple

from repro.errors import TamperDetectedError, WormError
from repro.worm.device import DEFAULT_BLOCK_SIZE, WormDevice, WormFile

_OP_CREATE = 1
_OP_APPEND = 2
_OP_SET_SLOT = 3
_OP_DELETE = 4

#: Opcode -> human-readable operation name (used by journal scans).
OP_NAMES = {
    _OP_CREATE: "create",
    _OP_APPEND: "append",
    _OP_SET_SLOT: "set_slot",
    _OP_DELETE: "delete",
}

#: Journal format versions.
FORMAT_V1 = 1
FORMAT_V2 = 2

#: File magic opening every v2 journal; v1 journals have no magic.
JOURNAL_MAGIC = b"WORMJRN2"

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

#: v1 record frame: crc32, u16 record length.
_FRAME_V1 = struct.Struct("<IH")
#: v2 record frame: u8 record format version, crc32, u32 record length.
_FRAME_V2 = struct.Struct("<BII")

#: Largest record tail encodable in each format's length field.
_MAX_TAIL = {FORMAT_V1: 0xFFFF, FORMAT_V2: 0xFFFFFFFF}


def _parse_record(
    data: bytes,
    offset: int,
    expected_seq: int,
    fmt: int,
    path: str,
) -> Optional[Tuple[int, int, bytes]]:
    """Parse one journal record at ``offset``.

    Returns ``(end_offset, opcode, body)``; ``None`` for a torn record
    (one that does not extend to a full frame); raises
    :class:`TamperDetectedError` for CRC or sequence violations.
    """
    if fmt == FORMAT_V2:
        if offset + _FRAME_V2.size > len(data):
            return None  # torn frame header
        version, crc, length = _FRAME_V2.unpack_from(data, offset)
        if version != FORMAT_V2:
            raise TamperDetectedError(
                f"journal record at byte {offset} has unsupported format "
                f"version {version}",
                location=f"journal '{path}'",
                invariant="journal-record-version",
            )
        start = offset + _FRAME_V2.size
    else:
        if offset + _FRAME_V1.size > len(data):
            return None  # torn frame header
        crc, length = _FRAME_V1.unpack_from(data, offset)
        start = offset + _FRAME_V1.size
    end = start + length
    if end > len(data):
        return None  # torn body
    tail = data[start:end]
    if zlib.crc32(tail) != crc:
        raise TamperDetectedError(
            f"journal record at byte {offset} fails its CRC",
            location=f"journal '{path}'",
            invariant="journal-crc",
        )
    seq, opcode = _U64.unpack_from(tail, 0)[0], tail[8]
    if seq != expected_seq:
        raise TamperDetectedError(
            f"journal record at byte {offset} claims sequence {seq}, "
            f"expected {expected_seq}",
            location=f"journal '{path}'",
            invariant="journal-sequence",
        )
    if opcode not in OP_NAMES:
        raise TamperDetectedError(
            f"journal contains unknown opcode {opcode}",
            location=f"journal '{path}'",
            invariant="journal-opcode",
        )
    return end, opcode, tail[9:]


def _sniff_format(data: bytes) -> Tuple[int, int, bool]:
    """Classify journal bytes: ``(format, record start offset, torn header)``.

    A strict prefix of the v2 magic is a journal torn during creation —
    treated as empty (the caller truncates and re-stamps the magic).
    """
    if data.startswith(JOURNAL_MAGIC):
        return FORMAT_V2, len(JOURNAL_MAGIC), False
    if data and len(data) < len(JOURNAL_MAGIC) and JOURNAL_MAGIC.startswith(data):
        return FORMAT_V2, len(JOURNAL_MAGIC), True
    if data:
        return FORMAT_V1, 0, False
    return FORMAT_V2, len(JOURNAL_MAGIC), False


@dataclass
class JournalScanReport:
    """fsck-style summary of one journal file (no state is applied)."""

    path: str
    format_version: int
    records: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    #: Bytes covered by fully committed records (magic + whole frames).
    committed_bytes: int = 0
    #: Trailing bytes of a torn final record (discarded at replay).
    torn_bytes: int = 0
    #: Tamper diagnosis, or ``None`` when the journal is sound.
    error: Optional[str] = None
    #: Short name of the violated invariant when ``error`` is set.
    invariant: str = ""

    @property
    def ok(self) -> bool:
        """Whether the journal replays without a tamper alarm."""
        return self.error is None

    def summary(self) -> str:
        """One human-readable line per journal, fsck style."""
        status = "OK" if self.ok else "TAMPERED"
        if self.ok and self.torn_bytes:
            status = f"OK (torn tail: {self.torn_bytes} B discarded)"
        ops = ", ".join(
            f"{name}={count}" for name, count in sorted(self.op_counts.items())
        )
        line = (
            f"{self.path}: {status}  format=v{self.format_version} "
            f"records={self.records} bytes={self.committed_bytes}"
        )
        if ops:
            line += f"  [{ops}]"
        if not self.ok:
            line += f"\n  {self.invariant}: {self.error}"
        return line


def scan_journal(path: str) -> JournalScanReport:
    """Verify a journal file without constructing a device.

    Walks every record, checking framing, CRCs, sequence numbers, and
    opcodes — the same checks replay performs — but applies nothing, so
    it is safe to run on corrupt or foreign files.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    fmt, offset, torn_header = _sniff_format(data)
    report = JournalScanReport(
        path=path, format_version=fmt, total_bytes=len(data)
    )
    if torn_header:
        report.torn_bytes = len(data)
        return report
    if not data:
        return report
    report.committed_bytes = min(offset, len(data))
    expected_seq = 0
    while offset < len(data):
        try:
            parsed = _parse_record(data, offset, expected_seq, fmt, path)
        except TamperDetectedError as exc:
            report.error = str(exc)
            report.invariant = exc.invariant
            break
        if parsed is None:
            report.torn_bytes = len(data) - offset
            break
        offset, opcode, _body = parsed
        name = OP_NAMES[opcode]
        report.op_counts[name] = report.op_counts.get(name, 0) + 1
        report.committed_bytes = offset
        expected_seq += 1
    report.records = expected_seq
    return report


class _JournaledWormFile(WormFile):
    """WormFile that journals appends and slot assignments (log first)."""

    __slots__ = ("_journal",)

    def __init__(self, name, *, journal: "JournaledWormDevice", **kwargs):
        super().__init__(name, **kwargs)
        self._journal = journal

    def append_record(self, payload: bytes, *, force_new_block: bool = False):
        journal = self._journal
        if journal.replaying:
            return super().append_record(payload, force_new_block=force_new_block)
        # Validate -> log -> apply: a payload the device would refuse is
        # never journaled, and a journaled payload is always applied.
        self.validate_append(payload)
        journal.log_append(self.name, payload, force_new_block)
        journal._fault_point("append:between-log-and-apply")
        result = super().append_record(payload, force_new_block=force_new_block)
        journal._fault_point("append:after-apply")
        return result

    def set_slot(self, block_no: int, slot_no: int, value: int) -> None:
        journal = self._journal
        if journal.replaying:
            super().set_slot(block_no, slot_no, value)
            return
        self.validate_set_slot(block_no, slot_no)
        journal.log_set_slot(self.name, block_no, slot_no, value)
        journal._fault_point("set_slot:between-log-and-apply")
        super().set_slot(block_no, slot_no, value)
        journal._fault_point("set_slot:after-apply")


class JournaledWormDevice(WormDevice):
    """A WORM device whose full state is journaled to one host file.

    Parameters
    ----------
    path:
        Journal file path.  Created if missing (format v2); replayed if
        present (v1 and v2 journals both replay; the on-disk format is
        preserved for subsequent appends).
    block_size:
        Default block size for new files (must match across sessions;
        recorded per file in the journal).
    fsync:
        Call ``os.fsync`` after journal writes.  Durable but slow;
        defaults to off for experiments.
    group_commit:
        With ``fsync=True``, fsync once per ``group_commit`` records
        instead of once per record; :meth:`sync` is the explicit
        barrier, and :meth:`close` always syncs the tail group.
    """

    def __init__(
        self,
        path: str,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        fsync: bool = False,
        group_commit: int = 1,
    ):
        super().__init__(block_size=block_size)
        if group_commit < 1:
            raise ValueError(f"group_commit must be >= 1, got {group_commit}")
        self.path = path
        self.fsync = fsync
        self.group_commit = group_commit
        self._sequence = 0
        self._pending_records = 0
        self._closed = False
        #: True while the constructor replays history (suppresses logging).
        self.replaying = False
        data = b""
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
        self.format_version, body_start, torn_header = _sniff_format(data)
        self._journal_file: BinaryIO = self._open_journal(path)
        if torn_header:
            # Crash while stamping the magic of a brand-new journal:
            # nothing was ever committed, so restart from scratch.
            os.ftruncate(self._journal_file.fileno(), 0)
            data = b""
        if not data:
            self._journal_file.write(JOURNAL_MAGIC)
            self._journal_file.flush()
            self._journal_size = len(JOURNAL_MAGIC)
        else:
            self._journal_size = len(data)
            self._replay(data, body_start)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _open_journal(self, path: str) -> BinaryIO:
        """Open the append handle; the fault-injecting device wraps it.

        Unbuffered, so every journal write reaches the OS immediately
        and a failed write can be rolled back to an exact byte boundary.
        """
        return open(path, "ab", buffering=0)

    def _fault_point(self, name: str) -> None:
        """Crash-point hook between WAL stages; a no-op in production.

        :class:`repro.worm.faults.FaultInjectingWormDevice` overrides
        this to simulate power loss at any registered point.
        """

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def records(self) -> int:
        """Journal records committed so far (the WAL sequence number)."""
        return self._sequence

    @property
    def journal_bytes(self) -> int:
        """Committed journal size in bytes (magic header included)."""
        return self._journal_size

    @property
    def pending_records(self) -> int:
        """Records in the open group-commit batch, not yet fsynced."""
        return self._pending_records

    def sync(self) -> None:
        """Durability barrier: flush and fsync the journal now.

        Completes any open group-commit batch regardless of the
        ``fsync`` setting, so callers can run with ``fsync=False`` and
        still place explicit durability points.
        """
        if self._closed:
            raise WormError(f"journal '{self.path}' is closed")
        self._journal_file.flush()
        self._fsync_journal()
        self._pending_records = 0

    def close(self) -> None:
        """Sync and close the journal handle (idempotent).

        The in-memory device state stays readable; only further
        journaled mutations are refused.
        """
        if self._closed:
            return
        try:
            if self._pending_records:
                self.sync()
        finally:
            self._closed = True
            self._journal_file.close()

    def __enter__(self) -> "JournaledWormDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # file factory / namespace ops (journaled, log-before-apply)
    # ------------------------------------------------------------------
    def _new_file(self, name: str, **kwargs) -> WormFile:
        return _JournaledWormFile(name, journal=self, **kwargs)

    def create_file(self, name, *, block_size=None, slot_count=0,
                    retention_until=None):
        if self.replaying:
            return super().create_file(
                name,
                block_size=block_size,
                slot_count=slot_count,
                retention_until=retention_until,
            )
        self.validate_create(name)
        self._log_create(
            name, block_size or self.block_size, slot_count, retention_until
        )
        self._fault_point("create:between-log-and-apply")
        worm_file = super().create_file(
            name,
            block_size=block_size,
            slot_count=slot_count,
            retention_until=retention_until,
        )
        self._fault_point("create:after-apply")
        return worm_file

    def delete_file(self, name: str, *, now: Optional[float] = None) -> None:
        if self.replaying:
            super().delete_file(name, now=now)
            return
        self.validate_delete(name, now=now)
        body = self._name_bytes(name) + _F64.pack(now if now is not None else -1.0)
        self._write_record(_OP_DELETE, body)
        self._fault_point("delete:between-log-and-apply")
        super().delete_file(name, now=now)
        self._fault_point("delete:after-apply")

    # ------------------------------------------------------------------
    # journal writing
    # ------------------------------------------------------------------
    @staticmethod
    def _name_bytes(name: str) -> bytes:
        raw = name.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise WormError(f"file name too long to journal: {len(raw)} bytes")
        return _U16.pack(len(raw)) + raw

    def _write_record(self, opcode: int, body: bytes) -> None:
        if self._closed:
            raise WormError(f"journal '{self.path}' is closed")
        tail = _U64.pack(self._sequence) + bytes([opcode]) + body
        if len(tail) > _MAX_TAIL[self.format_version]:
            raise WormError(
                f"record of {len(tail)} bytes overflows the length field of "
                f"journal format v{self.format_version} "
                f"(max {_MAX_TAIL[self.format_version]} bytes)"
                + (
                    "; re-create the archive to get a v2 journal with u32 "
                    "record lengths"
                    if self.format_version == FORMAT_V1
                    else ""
                )
            )
        if self.format_version == FORMAT_V1:
            frame = _FRAME_V1.pack(zlib.crc32(tail), len(tail)) + tail
        else:
            frame = _FRAME_V2.pack(FORMAT_V2, zlib.crc32(tail), len(tail)) + tail
        committed = self._journal_size
        pending = self._pending_records
        try:
            self._journal_file.write(frame)
            self._journal_file.flush()
            if self.fsync:
                self._pending_records += 1
                if self._pending_records >= self.group_commit:
                    self._fsync_journal()
                    self._pending_records = 0
        except Exception:
            # Rollback-on-log-failure: scrub any partially written frame
            # so the journal never runs ahead of (or diverges from) the
            # in-memory state the caller is about to leave unmutated.
            # Simulated crashes derive from BaseException and skip this
            # — a power loss leaves its torn bytes for replay to discard.
            self._pending_records = pending
            self._rollback_journal(committed)
            raise
        self._journal_size = committed + len(frame)
        self._sequence += 1

    def _rollback_journal(self, size: int) -> None:
        try:
            self._journal_file.flush()
        except Exception:
            pass  # best effort; ftruncate below is what matters
        os.ftruncate(self._journal_file.fileno(), size)

    def _fsync_journal(self) -> None:
        # The fault-injecting wrapper exposes its own fsync so syncs can
        # be counted and failed; a plain file handle falls back to the OS.
        fsync = getattr(self._journal_file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            os.fsync(self._journal_file.fileno())

    def _log_create(
        self,
        name: str,
        block_size: int,
        slot_count: int,
        retention_until: Optional[float],
    ) -> None:
        retention = retention_until if retention_until is not None else -1.0
        body = (
            self._name_bytes(name)
            + _U32.pack(block_size)
            + _U32.pack(slot_count)
            + _F64.pack(retention)
        )
        self._write_record(_OP_CREATE, body)

    def log_append(self, name: str, payload: bytes, force_new_block: bool) -> None:
        """Journal one data append (called by the file before applying)."""
        body = (
            self._name_bytes(name)
            + bytes([1 if force_new_block else 0])
            + _U32.pack(len(payload))
            + payload
        )
        self._write_record(_OP_APPEND, body)

    def log_set_slot(self, name: str, block_no: int, slot_no: int, value: int) -> None:
        """Journal one write-once slot assignment."""
        body = (
            self._name_bytes(name)
            + _U32.pack(block_no)
            + _U32.pack(slot_no)
            + _U64.pack(value)
        )
        self._write_record(_OP_SET_SLOT, body)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(self, data: bytes, start: int) -> None:
        self.replaying = True
        try:
            offset = start
            expected_seq = 0
            while offset < len(data):
                parsed = _parse_record(
                    data, offset, expected_seq, self.format_version, self.path
                )
                if parsed is None:
                    # Torn tail: only acceptable as the journal's suffix.
                    break
                offset, opcode, body = parsed
                self._apply(opcode, body)
                expected_seq += 1
            self._sequence = expected_seq
            if offset < len(data):
                # Discard the torn trailing record on disk too, so new
                # appends land at the committed boundary instead of
                # after crash garbage (which would shadow them forever).
                os.ftruncate(self._journal_file.fileno(), offset)
                self._journal_size = offset
        finally:
            self.replaying = False

    def _apply(self, opcode: int, body: bytes) -> None:
        (name_len,) = _U16.unpack_from(body, 0)
        name = body[2 : 2 + name_len].decode("utf-8")
        cursor = 2 + name_len
        if opcode == _OP_CREATE:
            (block_size,) = _U32.unpack_from(body, cursor)
            (slot_count,) = _U32.unpack_from(body, cursor + 4)
            (retention,) = _F64.unpack_from(body, cursor + 8)
            self.create_file(
                name,
                block_size=block_size,
                slot_count=slot_count,
                retention_until=None if retention < 0 else retention,
            )
        elif opcode == _OP_APPEND:
            force_new = bool(body[cursor])
            (length,) = _U32.unpack_from(body, cursor + 1)
            payload = body[cursor + 5 : cursor + 5 + length]
            self.open_file(name).append_record(payload, force_new_block=force_new)
        elif opcode == _OP_SET_SLOT:
            (block_no,) = _U32.unpack_from(body, cursor)
            (slot_no,) = _U32.unpack_from(body, cursor + 4)
            (value,) = _U64.unpack_from(body, cursor + 8)
            self.open_file(name).set_slot(block_no, slot_no, value)
        elif opcode == _OP_DELETE:
            (now,) = _F64.unpack_from(body, cursor)
            self.delete_file(name, now=None if now < 0 else now)
        else:  # pragma: no cover - _parse_record rejects unknown opcodes
            raise TamperDetectedError(
                f"journal contains unknown opcode {opcode}",
                location=f"journal '{self.path}'",
                invariant="journal-opcode",
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JournaledWormDevice('{self.path}', files={len(self)}, "
            f"records={self._sequence}, format=v{self.format_version})"
        )
