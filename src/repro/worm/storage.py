"""Device + cache + accounting combined behind one storage interface.

:class:`CachedWormStore` is what the index layer actually talks to.  Every
data access is routed through the :class:`~repro.worm.cache.LRUBlockCache`
so that random I/Os are counted with the same rules the paper's simulator
uses, while the bytes themselves live on the :class:`~repro.worm.device.WormDevice`,
which enforces write-once semantics.

The store tracks cache residency per ``(file, block)`` pair.  Tail blocks
of append-only files follow the paper's lifecycle: a fresh tail block is
installed without a disk read, appends to a resident tail are free, and a
block is written out (one random write) when it fills or is evicted.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.worm.cache import LRUBlockCache
from repro.worm.device import DEFAULT_BLOCK_SIZE, WormDevice, WormFile
from repro.worm.iostats import IoStats


class CachedWormStore:
    """A WORM device fronted by a simulated non-volatile block cache.

    Parameters
    ----------
    cache_blocks:
        Capacity of the storage server cache, in blocks (``None`` =
        unbounded).
    block_size:
        Device block size in bytes; defaults to the paper's 8 KB.
    """

    def __init__(
        self,
        cache_blocks: Optional[int] = None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        device: Optional[WormDevice] = None,
    ):
        self.device = device if device is not None else WormDevice(block_size=block_size)
        self.io = IoStats()
        self.cache = LRUBlockCache(cache_blocks, io=self.io)

    @property
    def block_size(self) -> int:
        """Device block size in bytes."""
        return self.device.block_size

    # ------------------------------------------------------------------
    # file lifecycle
    # ------------------------------------------------------------------
    def create_file(self, name: str, *, slot_count: int = 0) -> WormFile:
        """Create a new append-only file on the underlying device."""
        return self.device.create_file(name, slot_count=slot_count)

    def open_file(self, name: str) -> WormFile:
        """Open an existing file on the underlying device."""
        return self.device.open_file(name)

    def ensure_file(self, name: str, *, slot_count: int = 0) -> WormFile:
        """Open ``name``, creating it first if it does not exist."""
        if self.device.exists(name):
            return self.device.open_file(name)
        return self.device.create_file(name, slot_count=slot_count)

    def sync(self) -> None:
        """Durability barrier: fsync the device's journal, if it has one.

        A no-op for purely in-memory devices; for a
        :class:`~repro.worm.persistent.JournaledWormDevice` in
        group-commit mode this forces the buffered tail of records to
        stable storage.
        """
        sync = getattr(self.device, "sync", None)
        if sync is not None:
            sync()

    def close(self) -> None:
        """Close the device's journal handle, if it has one (idempotent)."""
        close = getattr(self.device, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # counted data paths
    # ------------------------------------------------------------------
    def append_record(
        self, name: str, payload: bytes, *, force_new_block: bool = False
    ) -> Tuple[int, int]:
        """Append a record to ``name``'s tail block, counting I/O.

        Returns ``(block_no, offset)``.  Cost model (Section 3):

        * append hits the resident tail block — no I/O;
        * tail block not resident — one write (evicted LRU block) plus one
          read (the needed tail block);
        * append fills the block — one write (flush), and the successor
          tail block is installed without a read.

        ``force_new_block`` rolls to a fresh block first (see
        :meth:`repro.worm.device.WormFile.append_record`).
        """
        worm_file = self.device.open_file(name)
        prev_tail = worm_file.tail_block_no
        block_no, offset = worm_file.append_record(
            payload, force_new_block=force_new_block
        )
        key = (name, block_no)
        if block_no != prev_tail:
            if prev_tail >= 0 and (name, prev_tail) in self.cache:
                # Rolled off a partially-filled tail (record did not fit):
                # the partial block is written out, as in Figure 2's model.
                self.cache.note_block_full((name, prev_tail))
                self.cache.invalidate((name, prev_tail))
            self.cache.access(key, fetch_on_miss=False)
        else:
            self.cache.access(key)
        if worm_file.block(block_no).is_full():
            self.cache.note_block_full(key)
            self.cache.invalidate(key)
        return block_no, offset

    def read_block(self, name: str, block_no: int) -> bytes:
        """Read the committed bytes of a block, counting a miss as one read."""
        worm_file = self.device.open_file(name)
        self.cache.access((name, block_no))
        return worm_file.read(block_no)

    def set_slot(self, name: str, block_no: int, slot_no: int, value: int) -> None:
        """Assign a write-once pointer slot, counting a miss as one read.

        The block becomes dirty in cache; the corresponding write is
        counted when the block is evicted (or flushed), matching the
        paper's jump-index insert accounting (Section 4.5).
        """
        worm_file = self.device.open_file(name)
        self.cache.access((name, block_no))
        worm_file.set_slot(block_no, slot_no, value)

    def get_slot(self, name: str, block_no: int, slot_no: int) -> Optional[int]:
        """Read a pointer slot, counting a miss as one read."""
        worm_file = self.device.open_file(name)
        self.cache.access((name, block_no))
        return worm_file.get_slot(block_no, slot_no)

    # ------------------------------------------------------------------
    # uncounted paths (application-memory metadata, verification passes)
    # ------------------------------------------------------------------
    def peek_block(self, name: str, block_no: int) -> bytes:
        """Read block bytes *without* touching the cache or counters.

        Used by code that models application-side memory (the tail-path
        optimization of Section 4.5) and by offline auditors whose I/O is
        not part of any reported figure.
        """
        return self.device.open_file(name).read(block_no)

    def peek_slot(self, name: str, block_no: int, slot_no: int) -> Optional[int]:
        """Read a pointer slot without touching the cache or counters."""
        return self.device.open_file(name).get_slot(block_no, slot_no)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedWormStore(files={len(self.device)}, cache={self.cache!r})"
