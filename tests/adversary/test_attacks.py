"""The paper's attack/defence asymmetry, as executable tests.

Against the baselines the attacks succeed *silently*; against the
trustworthy structures the same class of WORM-legal manipulation either
fails outright or trips a :class:`TamperDetectedError`.
"""

import pytest

from repro.adversary.attacks import (
    AttackNotApplicableError,
    binary_search_tail_attack,
    block_jump_pointer_attack,
    bplus_shadow_attack,
    buffer_wipe_attack,
    jump_pointer_attack,
    posting_stuffing_attack,
)
from repro.baselines.binary_search import SortedAppendLog
from repro.baselines.bplus_tree import BPlusTree
from repro.baselines.buffered import BufferedInvertedIndex
from repro.core.block_jump_index import BlockJumpIndex
from repro.core.jump_index import JumpIndex
from repro.core.posting_list import PostingList
from repro.core.verification import audit_posting_list
from repro.errors import TamperDetectedError
from repro.worm.storage import CachedWormStore


def make_paper_tree():
    """Figure 6's tree extended with one in-subtree key (36) to hide."""
    tree = BPlusTree(fanout=4)
    for k in [2, 4, 7, 11, 13, 19, 23, 29, 31, 36]:
        tree.insert(k)
    return tree


class TestBPlusShadowAttack:
    def test_hides_committed_key_silently(self):
        tree = make_paper_tree()
        assert tree.lookup(36)
        bplus_shadow_attack(tree, 36)
        assert not tree.lookup(36)  # wrong answer, no exception

    def test_find_geq_misled(self):
        """Figure 6(b): FindGeq returns Mala's decoy, skipping the truth.

        Probes at or past the planted separator descend into the fake
        subtree, so the committed key 36 is skipped in favour of a decoy.
        """
        tree = make_paper_tree()
        separator = bplus_shadow_attack(tree, 36)
        got = tree.find_geq(separator)
        assert got is not None and got != 36 and got > 36

    def test_other_keys_unaffected(self):
        tree = make_paper_tree()
        bplus_shadow_attack(tree, 36)
        for k in [2, 4, 7, 11, 13, 19, 23, 29, 31]:
            assert tree.lookup(k)

    def test_not_applicable_when_key_absent(self):
        tree = make_paper_tree()
        with pytest.raises(AttackNotApplicableError):
            bplus_shadow_attack(tree, 999)

    def test_not_applicable_on_full_path(self):
        tree = BPlusTree(fanout=3)
        for k in [2, 4, 7, 11, 13, 19, 23, 29, 31]:
            tree.insert(k)  # root ends up full
        with pytest.raises(AttackNotApplicableError):
            bplus_shadow_attack(tree, 31)

    def test_decoys_must_exclude_hidden_key(self):
        tree = make_paper_tree()
        with pytest.raises(AttackNotApplicableError):
            bplus_shadow_attack(tree, 36, decoys=[35, 36])


class TestBinarySearchAttack:
    def test_hides_key_silently(self):
        log = SortedAppendLog()
        for k in [2, 4, 7, 11, 13, 19, 23, 29, 31]:
            log.append(k)
        planted = binary_search_tail_attack(log, 31)
        assert planted  # at least one append sufficed
        assert not log.binary_search(31)

    def test_key_still_physically_present(self):
        log = SortedAppendLog()
        for k in [2, 4, 7, 11, 13, 19, 23, 29, 31]:
            log.append(k)
        binary_search_tail_attack(log, 31)
        assert 31 in log.keys()  # WORM kept it; the index lost it

    def test_certified_reader_detects(self):
        log = SortedAppendLog()
        for k in [2, 4, 7, 11]:
            log.append(k)
        binary_search_tail_attack(log, 11)
        with pytest.raises(TamperDetectedError):
            log.verify_sorted()

    def test_not_applicable_for_absent_key(self):
        log = SortedAppendLog()
        log.append(5)
        with pytest.raises(AttackNotApplicableError):
            binary_search_tail_attack(log, 7)


class TestJumpIndexAttacks:
    def test_binary_jump_attack_detected_not_wrong(self):
        ji = JumpIndex()
        for v in [1, 2, 5, 7, 10, 15]:
            ji.insert(v)
        jump_pointer_attack(ji, fake_value=3)
        hit_alarm = False
        for k in range(0, 40):
            try:
                got = ji.find_geq(k)
                # Any answer actually returned must be correct.
                expect = min((v for v in [1, 2, 5, 7, 10, 15] if v >= k), default=None)
                assert got == expect
            except TamperDetectedError:
                hit_alarm = True
        assert hit_alarm

    def test_binary_jump_attack_on_empty_rejected(self):
        with pytest.raises(AttackNotApplicableError):
            jump_pointer_attack(JumpIndex())

    def test_block_jump_attack_detected_by_audit(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        for v in range(0, 900, 2):
            bji.insert(v)
        block_jump_pointer_attack(bji)
        report = audit_posting_list(bji.posting_list, bji)
        assert not report.ok

    def test_block_jump_attack_needs_two_blocks(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        bji.insert(1)
        with pytest.raises(AttackNotApplicableError):
            block_jump_pointer_attack(bji)


class TestStuffingAttack:
    def test_stuffed_ids_pass_order_audit_but_fail_doc_check(self, store):
        pl = PostingList(store, "pl")
        for i in range(10):
            pl.append(i, term_code=7)
        fake_ids = posting_stuffing_attack(pl, 7, count=5)
        assert fake_ids == list(range(10, 15))
        pl.verify_order()  # monotonic: the order audit passes
        # ...but the documents do not exist, which result verification sees.
        from repro.core.verification import audit_search_result

        report = audit_search_result(
            fake_ids,
            ["term7"],
            document_exists=lambda d: d < 10,
            document_contains=lambda d, t: True,
        )
        assert len(report.violations) == 5

    def test_zero_count_rejected(self, store):
        pl = PostingList(store, "pl2")
        with pytest.raises(AttackNotApplicableError):
            posting_stuffing_attack(pl, 0, count=0)


class TestBufferWipeAttack:
    def test_wipe_loses_unflushed(self, store):
        index = BufferedInvertedIndex(store, flush_threshold=100)
        for doc_id in range(5):
            index.add_document(doc_id, [1])
        assert buffer_wipe_attack(index) == 5
        index.flush()
        assert index.lookup(1) == []

    def test_wipe_on_empty_buffer_rejected(self, store):
        index = BufferedInvertedIndex(store, flush_threshold=100)
        with pytest.raises(AttackNotApplicableError):
            buffer_wipe_attack(index)
