"""Unit tests for the full-engine audit pass."""

import struct

import pytest

from repro.adversary.attacks import posting_stuffing_attack
from repro.adversary.detection import full_engine_audit
from repro.search.engine import EngineConfig, TrustworthySearchEngine


@pytest.fixture()
def engine():
    engine = TrustworthySearchEngine(EngineConfig(num_lists=16, branching=4))
    for text in [
        "imclone trading memo for stewart",
        "quarterly revenue audit for finance",
        "meeting notes about drug development",
    ]:
        engine.index_document(text)
    return engine


class TestCleanEngine:
    def test_all_reports_ok(self, engine):
        reports = full_engine_audit(engine)
        assert reports  # at least the commit-log report
        assert all(r.ok for r in reports)

    def test_covers_every_list_and_the_commit_log(self, engine):
        reports = full_engine_audit(engine)
        assert len(reports) == len(engine._lists) + 1
        assert reports[-1].subject == "commit-time log"
        assert reports[-1].entries_checked == 3


class TestTamperedEngine:
    def test_out_of_order_raw_posting_caught(self, engine):
        from repro.core.posting import encode_posting

        name = next(iter(engine._lists.values())).name
        engine.store.device.open_file(name).append_record(encode_posting(0, 0))
        reports = full_engine_audit(engine)
        bad = [r for r in reports if not r.ok]
        # Doc IDs already reached 2, so appending 0 violates order —
        # unless the list's last ID was 0, in which case it is legal.
        assert len(bad) <= 1

    def test_retro_dated_commit_caught(self, engine):
        engine.store.device.open_file("engine/commit-times").append_record(
            struct.pack("<QI", 0, 99)
        )
        reports = full_engine_audit(engine)
        commit_report = reports[-1]
        assert not commit_report.ok

    def test_stuffing_passes_structural_audit(self, engine):
        """Stuffing is structurally clean — only result verification or a
        document cross-check exposes it, which is the Section 5 point."""
        tid = engine.term_id("imclone")
        pl = engine._lists[engine._list_id_for(tid)]
        posting_stuffing_attack(pl, tid, count=3)
        reports = full_engine_audit(engine)
        assert all(r.ok for r in reports)
        report = engine.verify_results(
            [p.doc_id for p in pl.scan(counted=False) if p.term_code == tid],
            ["imclone"],
        )
        assert not report.ok
