"""Unit tests for the binary-search baseline and its certified reader."""

import pytest

from repro.baselines.binary_search import SortedAppendLog
from repro.errors import TamperDetectedError


@pytest.fixture()
def log():
    log = SortedAppendLog()
    for k in [2, 4, 7, 11, 13, 19, 23, 29, 31]:
        log.append(k)
    return log


class TestHonestOperation:
    def test_binary_search(self, log):
        assert log.binary_search(13)
        assert not log.binary_search(14)
        assert log.probes > 0

    def test_find_geq(self, log):
        assert log.find_geq(14) == 19
        assert log.find_geq(31) == 31
        assert log.find_geq(32) is None

    def test_verify_sorted_clean(self, log):
        log.verify_sorted()

    def test_safe_lookup(self, log):
        assert log.safe_lookup(23)
        assert not log.safe_lookup(24)

    def test_keys_snapshot(self, log):
        keys = log.keys()
        keys.append(999)
        assert len(log) == 9  # snapshot, not a live view


class TestTamperedOperation:
    def test_out_of_order_append_breaks_search_silently(self, log):
        """The Section 4 attack: binary search goes wrong with no error."""
        # Enough smaller keys at the tail deflect the probes past 31.
        for _ in range(3):
            log.append(30)
        assert not log.binary_search(31)  # wrong answer, no exception

    def test_verify_sorted_detects(self, log):
        log.append(30)
        with pytest.raises(TamperDetectedError) as excinfo:
            log.verify_sorted()
        assert excinfo.value.invariant == "sorted-run-monotonicity"

    def test_safe_lookup_detects_before_reaching_target(self, log):
        log.append(30)
        with pytest.raises(TamperDetectedError):
            log.safe_lookup(999)  # scan crosses the violation

    def test_safe_lookup_finds_keys_before_violation(self, log):
        log.append(30)
        assert log.safe_lookup(2)  # found before the scan reaches the tail
