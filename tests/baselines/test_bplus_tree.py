"""Unit + property tests for the append-only B+ tree baseline."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bplus_tree import BPlusTree
from repro.errors import DocumentIdOrderError, IndexError_, WormViolationError

key_sequences = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300, unique=True
).map(sorted)


class TestHonestOperation:
    def test_lookup_and_find_geq_small(self):
        tree = BPlusTree(fanout=3)
        keys = [2, 4, 7, 11, 13, 19, 23, 29, 31]
        for k in keys:
            tree.insert(k)
        for k in keys:
            assert tree.lookup(k)
        assert not tree.lookup(12)
        assert tree.find_geq(12) == 13
        assert tree.find_geq(32) is None
        assert tree.find_geq(0) == 2

    def test_leaf_keys_in_order(self):
        tree = BPlusTree(fanout=4)
        for k in range(0, 100, 3):
            tree.insert(k)
        assert tree.leaf_keys() == list(range(0, 100, 3))

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(fanout=4)
        for k in range(64):
            tree.insert(k)
        assert 3 <= tree.height <= 5
        assert len(tree) == 64

    def test_strictly_increasing_enforced(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5)
        with pytest.raises(DocumentIdOrderError):
            tree.insert(5)
        with pytest.raises(DocumentIdOrderError):
            tree.insert(4)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(IndexError_):
            BPlusTree(fanout=1)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert not tree.lookup(1)
        assert tree.find_geq(0) is None
        assert tree.leaf_keys() == []
        assert tree.height == 0

    @given(keys=key_sequences, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_reference_equivalence(self, keys, data):
        tree = BPlusTree(fanout=4)
        for k in keys:
            tree.insert(k)
        probe = data.draw(st.integers(min_value=0, max_value=10_010))
        assert tree.lookup(probe) == (probe in set(keys))
        idx = bisect.bisect_left(keys, probe)
        expect = keys[idx] if idx < len(keys) else None
        assert tree.find_geq(probe) == expect

    @given(keys=key_sequences)
    @settings(max_examples=40, deadline=None)
    def test_property_leaf_chain_complete(self, keys):
        tree = BPlusTree(fanout=3)
        for k in keys:
            tree.insert(k)
        assert tree.leaf_keys() == keys


class TestAccounting:
    def test_nodes_read_counted(self):
        tree = BPlusTree(fanout=4)
        for k in range(100):
            tree.insert(k)
        before = tree.nodes_read
        tree.lookup(50)
        assert tree.nodes_read - before == tree.height

    def test_visited_set_dedupes(self):
        tree = BPlusTree(fanout=4)
        for k in range(100):
            tree.insert(k)
        visited = set()
        tree.lookup(50, visited=visited)
        first = tree.nodes_read
        tree.lookup(50, visited=visited)
        assert tree.nodes_read == first  # same path, all deduped


class TestWormSurface:
    def test_raw_append_to_full_node_rejected(self):
        tree = BPlusTree(fanout=2)
        for k in range(8):
            tree.insert(k)
        full_internal = tree.root
        fake = tree.make_leaf([99])
        with pytest.raises(WormViolationError):
            tree.raw_append_entry(full_internal, 99, fake)

    def test_raw_append_to_leaf_rejected(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1)
        with pytest.raises(IndexError_):
            tree.raw_append_entry(tree.root, 2, tree.make_leaf([2]))

    def test_make_internal(self):
        tree = BPlusTree(fanout=4)
        leaf = tree.make_leaf([5, 6])
        internal = tree.make_internal([(5, leaf)])
        assert internal.keys == [5]
        assert not internal.is_leaf
