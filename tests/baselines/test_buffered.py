"""Unit tests for the buffered-update baseline (the scheme the paper rules out)."""

import pytest

from repro.baselines.buffered import BufferedInvertedIndex


@pytest.fixture()
def index(store):
    return BufferedInvertedIndex(store, flush_threshold=3)


class TestBuffering:
    def test_postings_invisible_until_flush(self, index):
        index.add_document(0, [1, 2])
        assert index.buffered_documents == 1
        assert index.lookup(1) == []  # still only in volatile memory

    def test_auto_flush_at_threshold(self, index):
        for doc_id in range(3):
            index.add_document(doc_id, [1])
        assert index.flushes == 1
        assert index.buffered_documents == 0
        assert index.lookup(1) == [0, 1, 2]

    def test_manual_flush(self, index):
        index.add_document(0, [5, 7])
        index.flush()
        assert index.lookup(5) == [0]
        assert index.lookup(7) == [0]

    def test_flushed_postings_sorted_per_term(self, index):
        index.add_document(0, [1])
        index.add_document(1, [1, 2])
        index.flush()
        assert index.lookup(1) == [0, 1]

    def test_unknown_term_empty(self, index):
        assert index.lookup(42) == []


class TestCrash:
    def test_crash_loses_buffered_postings_forever(self, index):
        """Section 2.3: the buffering window is Mala's opening."""
        index.add_document(0, [1])
        index.add_document(1, [1])
        lost = index.crash_and_wipe_buffer()
        assert lost == 2
        index.add_document(2, [1])
        index.add_document(3, [1])
        index.add_document(4, [1])  # triggers flush of post-crash docs only
        # Documents 0 and 1 are on WORM but unreachable through the index.
        assert index.lookup(1) == [2, 3, 4]

    def test_flushed_postings_survive_crash(self, index):
        for doc_id in range(3):
            index.add_document(doc_id, [9])
        index.crash_and_wipe_buffer()
        assert index.lookup(9) == [0, 1, 2]
