"""Unit tests for the Generalized Hash Tree baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ght import GeneralizedHashTree, ght_join
from repro.errors import IndexError_, WormViolationError


class TestBasics:
    def test_insert_lookup(self):
        ght = GeneralizedHashTree(width=8)
        keys = [5, 17, 99, 12345, 8]
        for k in keys:
            ght.insert(k)
        for k in keys:
            assert ght.lookup(k)
        assert not ght.lookup(6)
        assert len(ght) == 5

    def test_duplicate_insert_rejected(self):
        ght = GeneralizedHashTree()
        ght.insert(5)
        with pytest.raises(WormViolationError):
            ght.insert(5)

    def test_collisions_grow_depth(self):
        ght = GeneralizedHashTree(width=2)
        for k in range(64):
            ght.insert(k)
        assert ght.depth > 3  # heavy collisions at width 2

    def test_invalid_width_rejected(self):
        with pytest.raises(IndexError_):
            GeneralizedHashTree(width=1)

    @given(keys=st.sets(st.integers(min_value=0, max_value=10**6), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_property_no_false_negatives(self, keys):
        """Fossilized slots: inserted keys are always found."""
        ght = GeneralizedHashTree(width=4)
        for k in keys:
            ght.insert(k)
        assert all(ght.lookup(k) for k in keys)


class TestAccounting:
    def test_nodes_read_counted(self):
        ght = GeneralizedHashTree(width=2)
        for k in range(32):
            ght.insert(k)
        before = ght.nodes_read
        ght.lookup(31)
        assert ght.nodes_read > before

    def test_visited_set_dedupes(self):
        ght = GeneralizedHashTree(width=2)
        for k in range(32):
            ght.insert(k)
        visited = set()
        ght.lookup(31, visited=visited)
        first = ght.nodes_read
        ght.lookup(31, visited=visited)
        assert ght.nodes_read == first


class TestJoin:
    def test_intersection(self):
        ght = GeneralizedHashTree(width=8)
        for k in range(0, 100, 2):
            ght.insert(k)
        result = ght_join(range(0, 100, 3), ght)
        assert result == list(range(0, 100, 6))

    def test_join_cost_grows_with_probe_count(self):
        """The paper's locality argument: every probe costs node reads."""
        ght = GeneralizedHashTree(width=4)
        for k in range(500):
            ght.insert(k)
        ght.nodes_read = 0
        ght_join(range(100), ght)
        cost_small = ght.nodes_read
        ght.nodes_read = 0
        ght_join(range(400), ght)
        assert ght.nodes_read > cost_small
