"""Unit tests for the unmerged + per-term B+ tree "ideal" baseline."""

import pytest

from repro.baselines.unmerged import UnmergedBaselineIndex
from repro.errors import QueryError


@pytest.fixture()
def index():
    idx = UnmergedBaselineIndex(fanout=8)
    docs = {
        0: [1, 2, 3],
        1: [1, 2],
        2: [2, 3],
        3: [1, 3],
        4: [1, 2, 3, 4],
    }
    for doc_id, terms in docs.items():
        idx.add_document(doc_id, terms)
    return idx


class TestIngest:
    def test_posting_lengths(self, index):
        assert index.posting_length(1) == 4
        assert index.posting_length(2) == 4
        assert index.posting_length(4) == 1
        assert index.posting_length(999) == 0

    def test_duplicate_terms_in_doc_collapsed(self):
        idx = UnmergedBaselineIndex()
        idx.add_document(0, [7, 7, 7])
        assert idx.posting_length(7) == 1

    def test_tree_accessor(self, index):
        assert len(index.tree(1)) == 4
        with pytest.raises(QueryError):
            index.tree(999)


class TestConjunctiveQueries:
    def test_two_terms(self, index):
        docs, blocks = index.conjunctive_query([1, 2])
        assert docs == [0, 1, 4]
        assert blocks > 0

    def test_three_terms(self, index):
        docs, _ = index.conjunctive_query([1, 2, 3])
        assert docs == [0, 4]

    def test_absent_term_empty(self, index):
        docs, blocks = index.conjunctive_query([1, 999])
        assert docs == []
        assert blocks == 0

    def test_single_term(self, index):
        docs, blocks = index.conjunctive_query([3])
        assert docs == [0, 2, 3, 4]
        assert blocks >= 1

    def test_duplicate_query_terms_deduped(self, index):
        docs, _ = index.conjunctive_query([1, 1, 2])
        assert docs == [0, 1, 4]

    def test_empty_query_rejected(self, index):
        with pytest.raises(QueryError):
            index.conjunctive_query([])

    def test_against_brute_force(self):
        import random

        random.seed(0)
        idx = UnmergedBaselineIndex(fanout=16)
        docsets = {}
        for doc_id in range(300):
            terms = random.sample(range(20), random.randint(2, 6))
            idx.add_document(doc_id, terms)
            for t in terms:
                docsets.setdefault(t, set()).add(doc_id)
        for _ in range(40):
            terms = random.sample(range(20), random.randint(2, 4))
            expect = sorted(set.intersection(*[docsets.get(t, set()) for t in terms]))
            got, _ = idx.conjunctive_query(terms)
            assert got == expect
