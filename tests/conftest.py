"""Shared fixtures for the test suite.

Workload materialization is the expensive part of many tests, so a small
deterministic corpus/query-log pair is built once per session.
"""

from __future__ import annotations

import pytest

from repro.simulate.workload_factory import Scale, get_workload
from repro.worm.storage import CachedWormStore


@pytest.fixture(scope="session")
def tiny_workload():
    """Session-cached tiny workload (2k docs, 4k queries)."""
    return get_workload(Scale.tiny())


@pytest.fixture()
def store():
    """A fresh unbounded-cache WORM store with small blocks."""
    return CachedWormStore(None, block_size=256)


@pytest.fixture()
def small_cache_store():
    """A fresh WORM store with a 4-block cache (eviction behaviour)."""
    return CachedWormStore(4, block_size=256)
