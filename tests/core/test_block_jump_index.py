"""Unit + property tests for the block jump index (Section 4.4)."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_jump_index import BlockJumpIndex
from repro.errors import IndexError_, TamperDetectedError
from repro.worm.storage import CachedWormStore


def make_index(branching=4, block_size=256, max_doc_bits=16, cache_blocks=None, **kwargs):
    store = CachedWormStore(cache_blocks, block_size=block_size)
    return BlockJumpIndex.create(
        store, "pl/jump", branching=branching, max_doc_bits=max_doc_bits, **kwargs
    )


class TestGeometry:
    def test_create_sizes_block_budget(self):
        bji = make_index(branching=4, block_size=256, max_doc_bits=16)
        # levels = ceil(log4(2^16)) = 8; pointers = 3*8 = 24 -> 96 bytes;
        # postings = (256 - 96) / 8 = 20.
        assert bji.levels == 8
        assert bji.num_slots == 24
        assert bji.posting_list.entries_per_block == 20

    def test_range_for_partition(self):
        bji = make_index(branching=3)
        nb = 7
        covered = []
        for k in range(nb + 1, nb + 3**4):
            i, j = bji.range_for(nb, k)
            lo = nb + j * 3**i
            hi = lo + 3**i
            assert lo <= k < hi
            assert 1 <= j < 3
            covered.append((i, j))
        # Figure 7(b)'s worked examples: 7 + 1*3^0 <= 8 < 7 + 2*3^0 and
        # 7 + 2*3^2 <= 25 < 7 + 3*3^2.
        assert bji.range_for(7, 8) == (0, 1)
        assert bji.range_for(7, 25) == (2, 2)

    def test_slot_order_matches_range_order(self):
        bji = make_index(branching=3)
        starts = [bji.slot_range(0, s)[0] for s in range(bji.num_slots)]
        assert starts == sorted(starts)

    def test_range_for_requires_larger_k(self):
        bji = make_index()
        with pytest.raises(IndexError_):
            bji.range_for(5, 5)

    def test_attach_requires_enough_slots(self):
        from repro.core.posting_list import PostingList

        store = CachedWormStore(None, block_size=256)
        pl = PostingList(store, "pl/few-slots", slot_count=1)
        with pytest.raises(IndexError_):
            BlockJumpIndex(pl, branching=4, max_doc_bits=16)

    def test_branching_below_two_rejected(self):
        from repro.core.posting_list import PostingList

        store = CachedWormStore(None, block_size=256)
        pl = PostingList(store, "pl/b1", slot_count=64)
        with pytest.raises(IndexError_):
            BlockJumpIndex(pl, branching=1)


class TestInsertLookup:
    def test_sequence_reference(self):
        bji = make_index()
        values = list(range(0, 3000, 3))
        for v in values:
            bji.insert(v)
        present = set(values)
        for k in range(0, 3010, 7):
            assert bji.lookup(k) == (k in present)

    def test_find_geq_reference(self):
        bji = make_index()
        values = sorted({(i * 37) % 5000 for i in range(900)})
        for v in values:
            bji.insert(v)
        for k in range(0, 5100, 11):
            idx = bisect.bisect_left(values, k)
            expect = values[idx] if idx < len(values) else None
            cursor = bji.posting_list.cursor()
            got = bji.find_geq(cursor, k)
            assert (got.doc_id if got else None) == expect

    def test_duplicates_across_blocks(self):
        """Merged lists repeat doc IDs; straddled runs must stay reachable."""
        bji = make_index(branching=2, block_size=128)
        p = bji.posting_list.entries_per_block
        docs = []
        d = 0
        for i in range(p * 6):
            if i % 3 != 0:
                d += 1
            docs.append(d)
            bji.insert(d, term_code=i % 4)
        uniq = sorted(set(docs))
        for k in range(0, max(docs) + 2):
            idx = bisect.bisect_left(uniq, k)
            expect = uniq[idx] if idx < len(uniq) else None
            cursor = bji.posting_list.cursor()
            got = bji.find_geq(cursor, k)
            assert (got.doc_id if got else None) == expect

    def test_find_geq_with_term_filter(self):
        bji = make_index()
        for d in range(200):
            bji.insert(d, term_code=d % 5)
        cursor = bji.posting_list.cursor(term_code=3)
        got = bji.find_geq(cursor, 100)
        assert got.doc_id == 103
        assert got.term_code == 3

    def test_repeated_seeks_move_forward(self):
        bji = make_index()
        for d in range(0, 1000, 2):
            bji.insert(d)
        cursor = bji.posting_list.cursor()
        last = -1
        for k in (5, 123, 457, 900, 999):
            got = bji.find_geq(cursor, k)
            if got is not None:
                assert got.doc_id >= k > last
                last = got.doc_id
        assert bji.find_geq(cursor, 1001) is None
        assert cursor.exhausted

    @given(
        deltas=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200),
        branching=st.sampled_from([2, 3, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reference_equivalence(self, deltas, branching):
        bji = make_index(branching=branching, block_size=192)
        docs = []
        d = 0
        for i, delta in enumerate(deltas):
            d += delta
            docs.append(d)
            bji.insert(d, term_code=i % 3)
        uniq = sorted(set(docs))
        for k in range(0, (uniq[-1] if uniq else 0) + 3):
            idx = bisect.bisect_left(uniq, k)
            expect = uniq[idx] if idx < len(uniq) else None
            cursor = bji.posting_list.cursor()
            got = bji.find_geq(cursor, k)
            assert (got.doc_id if got else None) == expect
            assert bji.lookup(k) == (k in set(uniq))


class TestWritePathEquivalence:
    def _pointers(self, bji):
        store = bji.posting_list.store
        name = bji.posting_list.name
        return [
            tuple(
                store.peek_slot(name, b, s) for s in range(bji.num_slots)
            )
            for b in range(bji.posting_list.num_blocks)
        ]

    def test_counted_walk_sets_identical_pointers(self):
        values = sorted({(i * 13) % 4000 for i in range(600)})
        tracked = make_index(track_tail_path=True)
        naive = make_index(track_tail_path=False)
        for v in values:
            tracked.insert(v)
            naive.insert(v)
        assert self._pointers(tracked) == self._pointers(naive)

    def test_tail_path_optimization_reduces_reads(self):
        """Section 4.5: walking in writer memory avoids block fetches.

        Under a cache too small to hold the whole head->tail path, the
        naive walk re-reads path blocks constantly while the tracked
        walk touches storage only to set new pointers.
        """
        values = list(range(2000))
        tracked = make_index(track_tail_path=True, cache_blocks=4)
        naive = make_index(track_tail_path=False, cache_blocks=4)
        for v in values:
            tracked.insert(v)
        for v in values:
            naive.insert(v)
        assert (
            tracked.posting_list.store.io.block_reads
            < naive.posting_list.store.io.block_reads / 2
        )

    def test_rebuild_path_matches_incremental(self):
        bji = make_index()
        for v in range(0, 900, 2):
            bji.insert(v)
        incremental = [(n.block_no, n.last_slot, n.last_target) for n in bji._path]
        bji.rebuild_path()
        rebuilt = [(n.block_no, n.last_slot, n.last_target) for n in bji._path]
        assert incremental == rebuilt
        # And the index keeps working after a rebuild.
        bji.insert(902)
        assert bji.lookup(902)


class TestTampering:
    def test_backward_pointer_detected(self):
        bji = make_index()
        for v in range(500):
            bji.insert(v)
        store = bji.posting_list.store
        name = bji.posting_list.name
        # Find an unset slot on block 2 and point it backwards.
        for slot in range(bji.num_slots):
            if store.peek_slot(name, 2, slot) is None:
                store.set_slot(name, 2, slot, 0)
                break
        cursor = bji.posting_list.cursor()
        with pytest.raises(TamperDetectedError) as excinfo:
            # Navigating from block 2's ranges crosses the slot.
            nb = bji.posting_list.block_max_hint(2)
            lo, _ = bji.slot_range(nb, slot)
            bji._check_jump(cursor, 2, nb, slot, 0)
        assert excinfo.value.invariant == "jump-forward-only"

    def test_wrong_range_pointer_detected(self):
        bji = make_index(branching=2, block_size=128)
        max_doc = 3996
        for v in range(0, max_doc + 1, 4):
            bji.insert(v)
        store = bji.posting_list.store
        name = bji.posting_list.name
        nb = bji.posting_list.block_max_hint(0)
        # Plant the lowest unset head pointer whose range lies inside the
        # populated ID space (with stride-4 IDs, fine-grained ranges that
        # contain no multiple of 4 stay NULL), targeting the far tail
        # block whose IDs lie outside that range.
        planted = None
        for slot in range(bji.num_slots):
            lo, hi = bji.slot_range(nb, slot)
            if hi > max_doc:
                break
            if store.peek_slot(name, 0, slot) is None:
                store.set_slot(name, 0, slot, bji.posting_list.num_blocks - 1)
                planted = slot
                break
        assert planted is not None
        lo, _ = bji.slot_range(nb, planted)
        cursor = bji.posting_list.cursor()
        with pytest.raises(TamperDetectedError) as excinfo:
            bji.find_geq(cursor, lo)
        assert excinfo.value.invariant == "jump-target-range"

    def test_committed_entries_stay_visible_after_attack(self):
        from repro.adversary.attacks import block_jump_pointer_attack

        bji = make_index()
        values = list(range(0, 600, 3))
        for v in values:
            bji.insert(v)
        block_jump_pointer_attack(bji)
        # lookup() routes may or may not cross the bad slot; entries are
        # never silently lost — either found or the alarm is raised.
        for v in values[:50]:
            try:
                assert bji.lookup(v)
            except TamperDetectedError:
                pass
