"""Unit + property tests for the workload cost model Q (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    cost_ratio,
    merged_workload_cost,
    minimum_sum_of_squares_cost,
    per_query_costs,
    per_query_unmerged_costs,
    query_slowdowns,
    unmerged_workload_cost,
)
from repro.core.merge import TermAssignment, UniformHashMerge
from repro.errors import IndexError_
from repro.workloads.stats import WorkloadStats


@pytest.fixture()
def stats():
    return WorkloadStats(ti=np.array([10, 20, 5, 1]), qi=np.array([3, 1, 7, 2]))


class TestWorkloadCost:
    def test_unmerged(self, stats):
        assert unmerged_workload_cost(stats) == 10 * 3 + 20 * 1 + 5 * 7 + 1 * 2

    def test_merged_hand_computed(self, stats):
        # Lists: {0, 2} and {1, 3}.
        ta = TermAssignment(list_ids=np.array([0, 1, 0, 1]), num_lists=2)
        expected = (10 + 5) * (3 + 7) + (20 + 1) * (1 + 2)
        assert merged_workload_cost(ta, stats) == expected

    def test_degenerate_single_list(self, stats):
        ta = TermAssignment(list_ids=np.zeros(4, dtype=np.int64), num_lists=1)
        assert merged_workload_cost(ta, stats) == (36) * (13)

    def test_identity_merge_equals_unmerged(self, stats):
        ta = TermAssignment(list_ids=np.arange(4), num_lists=4)
        assert merged_workload_cost(ta, stats) == unmerged_workload_cost(stats)
        assert cost_ratio(ta, stats) == pytest.approx(1.0)

    def test_mismatched_universe_rejected(self, stats):
        ta = TermAssignment(list_ids=np.array([0]), num_lists=1)
        with pytest.raises(IndexError_):
            merged_workload_cost(ta, stats)

    def test_zero_workload_ratio_is_one(self):
        stats = WorkloadStats(ti=np.array([5, 5]), qi=np.array([0, 0]))
        ta = TermAssignment(list_ids=np.array([0, 0]), num_lists=1)
        assert cost_ratio(ta, stats) == 1.0

    @given(
        n=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_merging_never_cheaper(self, n, m, seed):
        """(Σt)(Σq) >= Σ tq for non-negative frequencies: ratio >= 1."""
        rng = np.random.default_rng(seed)
        stats = WorkloadStats(
            ti=rng.integers(0, 100, n), qi=rng.integers(0, 100, n)
        )
        ta = UniformHashMerge(m).assign(n)
        assert cost_ratio(ta, stats) >= 1.0 - 1e-12


class TestPerQueryCosts:
    def test_unmerged_costs(self, stats):
        queries = [[0, 1], [2], [0, 0]]
        costs = per_query_unmerged_costs(queries, stats)
        assert list(costs) == [30.0, 5.0, 10.0]

    def test_merged_costs_dedupe_shared_lists(self, stats):
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1]), num_lists=2)
        # Terms 0 and 1 share list 0 (length 30): scanned once.
        costs = per_query_costs([[0, 1]], ta, stats)
        assert list(costs) == [30.0]

    def test_merged_cost_of_multi_list_query(self, stats):
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1]), num_lists=2)
        costs = per_query_costs([[0, 2]], ta, stats)
        assert list(costs) == [30.0 + 6.0]


class TestSlowdowns:
    def test_sorted_by_unmerged_cost(self):
        merged = np.array([100.0, 10.0, 50.0])
        unmerged = np.array([50.0, 10.0, 1.0])
        ratios = query_slowdowns(merged, unmerged)
        # Order by unmerged cost: [1, 10, 50] -> ratios [50, 1, 2].
        assert list(ratios) == [50.0, 1.0, 2.0]

    def test_floor_applied(self):
        ratios = query_slowdowns(np.array([0.5]), np.array([1.0]))
        assert list(ratios) == [1.0]

    def test_zero_unmerged_cost_clamped(self):
        ratios = query_slowdowns(np.array([5.0]), np.array([0.0]))
        assert list(ratios) == [5.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            query_slowdowns(np.array([1.0]), np.array([1.0, 2.0]))


class TestNpCompletenessReduction:
    def test_q_reduces_to_min_sum_squares_when_ti_equals_qi(self):
        """The reduction the paper cites: qi = ti makes Q = Σ (Σ part)^2."""
        ti = np.array([3, 1, 4, 1, 5])
        stats = WorkloadStats(ti=ti, qi=ti.copy())
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1, 1]), num_lists=2)
        parts = [[3, 1], [4, 1, 5]]
        assert merged_workload_cost(ta, stats) == minimum_sum_of_squares_cost(parts)
