"""Unit + property tests for the workload cost model Q (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    CapacityModel,
    cost_ratio,
    merged_workload_cost,
    minimum_sum_of_squares_cost,
    per_query_costs,
    per_query_unmerged_costs,
    predict_capacity,
    query_slowdowns,
    unmerged_workload_cost,
)
from repro.core.merge import TermAssignment, UniformHashMerge
from repro.errors import IndexError_
from repro.workloads.stats import WorkloadStats


@pytest.fixture()
def stats():
    return WorkloadStats(ti=np.array([10, 20, 5, 1]), qi=np.array([3, 1, 7, 2]))


class TestWorkloadCost:
    def test_unmerged(self, stats):
        assert unmerged_workload_cost(stats) == 10 * 3 + 20 * 1 + 5 * 7 + 1 * 2

    def test_merged_hand_computed(self, stats):
        # Lists: {0, 2} and {1, 3}.
        ta = TermAssignment(list_ids=np.array([0, 1, 0, 1]), num_lists=2)
        expected = (10 + 5) * (3 + 7) + (20 + 1) * (1 + 2)
        assert merged_workload_cost(ta, stats) == expected

    def test_degenerate_single_list(self, stats):
        ta = TermAssignment(list_ids=np.zeros(4, dtype=np.int64), num_lists=1)
        assert merged_workload_cost(ta, stats) == (36) * (13)

    def test_identity_merge_equals_unmerged(self, stats):
        ta = TermAssignment(list_ids=np.arange(4), num_lists=4)
        assert merged_workload_cost(ta, stats) == unmerged_workload_cost(stats)
        assert cost_ratio(ta, stats) == pytest.approx(1.0)

    def test_mismatched_universe_rejected(self, stats):
        ta = TermAssignment(list_ids=np.array([0]), num_lists=1)
        with pytest.raises(IndexError_):
            merged_workload_cost(ta, stats)

    def test_zero_workload_ratio_is_one(self):
        stats = WorkloadStats(ti=np.array([5, 5]), qi=np.array([0, 0]))
        ta = TermAssignment(list_ids=np.array([0, 0]), num_lists=1)
        assert cost_ratio(ta, stats) == 1.0

    @given(
        n=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_merging_never_cheaper(self, n, m, seed):
        """(Σt)(Σq) >= Σ tq for non-negative frequencies: ratio >= 1."""
        rng = np.random.default_rng(seed)
        stats = WorkloadStats(
            ti=rng.integers(0, 100, n), qi=rng.integers(0, 100, n)
        )
        ta = UniformHashMerge(m).assign(n)
        assert cost_ratio(ta, stats) >= 1.0 - 1e-12


class TestPerQueryCosts:
    def test_unmerged_costs(self, stats):
        queries = [[0, 1], [2], [0, 0]]
        costs = per_query_unmerged_costs(queries, stats)
        assert list(costs) == [30.0, 5.0, 10.0]

    def test_merged_costs_dedupe_shared_lists(self, stats):
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1]), num_lists=2)
        # Terms 0 and 1 share list 0 (length 30): scanned once.
        costs = per_query_costs([[0, 1]], ta, stats)
        assert list(costs) == [30.0]

    def test_merged_cost_of_multi_list_query(self, stats):
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1]), num_lists=2)
        costs = per_query_costs([[0, 2]], ta, stats)
        assert list(costs) == [30.0 + 6.0]


class TestSlowdowns:
    def test_sorted_by_unmerged_cost(self):
        merged = np.array([100.0, 10.0, 50.0])
        unmerged = np.array([50.0, 10.0, 1.0])
        ratios = query_slowdowns(merged, unmerged)
        # Order by unmerged cost: [1, 10, 50] -> ratios [50, 1, 2].
        assert list(ratios) == [50.0, 1.0, 2.0]

    def test_floor_applied(self):
        ratios = query_slowdowns(np.array([0.5]), np.array([1.0]))
        assert list(ratios) == [1.0]

    def test_zero_unmerged_cost_clamped(self):
        ratios = query_slowdowns(np.array([5.0]), np.array([0.0]))
        assert list(ratios) == [5.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            query_slowdowns(np.array([1.0]), np.array([1.0, 2.0]))


class TestNpCompletenessReduction:
    def test_q_reduces_to_min_sum_squares_when_ti_equals_qi(self):
        """The reduction the paper cites: qi = ti makes Q = Σ (Σ part)^2."""
        ti = np.array([3, 1, 4, 1, 5])
        stats = WorkloadStats(ti=ti, qi=ti.copy())
        ta = TermAssignment(list_ids=np.array([0, 0, 1, 1, 1]), num_lists=2)
        parts = [[3, 1], [4, 1, 5]]
        assert merged_workload_cost(ta, stats) == minimum_sum_of_squares_cost(parts)


def loadtest_snapshot(qps=2000.0, shards=2, p99_ms=8.0, mean_ms=2.0, clients=4):
    """A synthetic BENCH_LOADTEST.json document for calibration tests."""
    return {
        "schema": "repro-loadtest/v1",
        "seed": 42,
        "config": {"clients": clients, "mix": 0.9, "seed": 42},
        "metrics": {
            "qps": qps,
            "shards": shards,
            "latency_ms": {
                "search": {"p99_ms": p99_ms, "mean_ms": mean_ms},
                "ingest": {"p99_ms": 12.0, "mean_ms": 5.0},
            },
        },
    }


class TestCapacityCalibration:
    def test_calibrates_from_synthetic_snapshot(self):
        model = CapacityModel.from_snapshots([loadtest_snapshot()])
        cal = model.calibration
        assert cal.qps_per_shard == pytest.approx(1000.0)  # 2000 qps / 2 shards
        assert cal.p99_ms == 8.0
        assert cal.mean_ms == 2.0
        assert cal.shards == 2
        assert cal.clients == 4

    def test_best_observed_point_wins(self):
        slow = loadtest_snapshot(qps=500.0, shards=2)
        fast = loadtest_snapshot(qps=3000.0, shards=2)
        model = CapacityModel.from_snapshots([slow, fast])
        assert model.calibration.qps_per_shard == pytest.approx(1500.0)

    def test_rejects_non_loadtest_schema(self):
        snapshot = loadtest_snapshot()
        snapshot["schema"] = "repro-metrics/v1"
        with pytest.raises(IndexError_):
            CapacityModel.from_snapshots([snapshot])

    def test_rejects_missing_metrics(self):
        with pytest.raises(IndexError_):
            CapacityModel.from_snapshots([{"schema": "repro-loadtest/v1"}])
        snapshot = loadtest_snapshot()
        del snapshot["metrics"]["latency_ms"]["search"]["mean_ms"]
        with pytest.raises(IndexError_):
            CapacityModel.from_snapshots([snapshot])

    def test_rejects_empty_snapshot_list(self):
        with pytest.raises(IndexError_):
            CapacityModel.from_snapshots([])

    def test_rejects_idle_run(self):
        with pytest.raises(IndexError_):
            CapacityModel.from_snapshots([loadtest_snapshot(qps=0.0)])


class TestCapacityPrediction:
    @pytest.fixture()
    def model(self):
        return CapacityModel.from_snapshots([loadtest_snapshot()])

    def test_target_within_one_shard(self, model):
        plan = model.predict_capacity(800.0, 10.0)
        assert plan.shards == 1
        assert plan.predicted_qps >= 800.0

    def test_target_needs_more_shards(self, model):
        plan = model.predict_capacity(5000.0, 10.0)
        assert plan.shards == 5  # ceil(5000 / 1000 usable qps/shard)
        assert plan.workers >= plan.shards

    def test_tight_p99_derates_linearly(self, model):
        # Half the calibrated 8ms budget -> half the usable rate.
        assert model.usable_qps_per_shard(4.0) == pytest.approx(500.0)
        assert model.usable_qps_per_shard(8.0) == pytest.approx(1000.0)
        assert model.usable_qps_per_shard(80.0) == pytest.approx(1000.0)

    def test_workers_follow_littles_law(self, model):
        # 5000 qps at 2ms mean -> N = lambda * W = 10 concurrent searches,
        # but never fewer workers than shards.
        plan = model.predict_capacity(5000.0, 10.0)
        assert plan.workers == max(plan.shards, 10)

    def test_monotone_in_target_qps(self, model):
        """More target QPS never yields fewer shards or workers."""
        plans = [
            model.predict_capacity(qps, 10.0)
            for qps in (100.0, 500.0, 1000.0, 2500.0, 5000.0, 20000.0)
        ]
        for lower, higher in zip(plans, plans[1:]):
            assert higher.shards >= lower.shards
            assert higher.workers >= lower.workers

    def test_monotone_in_target_p99(self, model):
        """A tighter p99 target never yields fewer shards."""
        plans = [
            model.predict_capacity(3000.0, p99)
            for p99 in (32.0, 16.0, 8.0, 4.0, 2.0, 1.0)
        ]
        for looser, tighter in zip(plans, plans[1:]):
            assert tighter.shards >= looser.shards

    def test_rejects_bad_targets(self, model):
        with pytest.raises(IndexError_):
            model.predict_capacity(0.0, 10.0)
        with pytest.raises(IndexError_):
            model.predict_capacity(1000.0, -1.0)

    def test_convenience_accepts_single_dict(self):
        plan = predict_capacity(loadtest_snapshot(), 5000.0, 10.0)
        assert plan.shards == 5

    def test_plan_summary_mentions_provisioning(self, model):
        text = model.predict_capacity(5000.0, 10.0).summary()
        assert "shard(s)" in text and "worker(s)" in text

    @settings(max_examples=50, deadline=None)
    @given(
        qps_a=st.floats(min_value=1.0, max_value=1e6),
        qps_b=st.floats(min_value=1.0, max_value=1e6),
        p99=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_monotonicity_property(self, qps_a, qps_b, p99):
        model = CapacityModel.from_snapshots([loadtest_snapshot()])
        lo, hi = sorted((qps_a, qps_b))
        plan_lo = model.predict_capacity(lo, p99)
        plan_hi = model.predict_capacity(hi, p99)
        assert plan_hi.shards >= plan_lo.shards
        assert plan_hi.workers >= plan_lo.workers
