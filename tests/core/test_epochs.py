"""Unit tests for epoch-based learning and index management."""

import numpy as np
import pytest

from repro.core.epochs import (
    EpochIndexManager,
    learn_popular_terms,
    prefix_query_frequencies,
    prefix_term_frequencies,
)
from repro.errors import WorkloadError
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.queries import QueryLogConfig, QueryLogGenerator
from repro.workloads.stats import WorkloadStats


class TestLearning:
    def test_learn_by_qi(self):
        stats = WorkloadStats(ti=np.array([1, 2, 3]), qi=np.array([9, 1, 5]))
        assert list(learn_popular_terms(stats, 2, by="qi")) == [0, 2]

    def test_learn_by_ti(self):
        stats = WorkloadStats(ti=np.array([1, 2, 3]), qi=np.array([9, 1, 5]))
        assert list(learn_popular_terms(stats, 2, by="ti")) == [2, 1]

    def test_bad_by_rejected(self):
        stats = WorkloadStats(ti=np.array([1]), qi=np.array([1]))
        with pytest.raises(WorkloadError):
            learn_popular_terms(stats, 1, by="xx")

    def test_prefix_term_frequencies(self):
        corpus = CorpusGenerator(
            CorpusConfig(num_docs=100, vocabulary_size=500, mean_terms_per_doc=20)
        )
        prefix = prefix_term_frequencies(corpus, 0.1)
        full = corpus.term_document_frequencies()
        assert prefix.sum() < full.sum()
        assert (prefix <= full).all()

    def test_prefix_stability(self):
        """Figures 3(f)/3(g)'s premise: the 10% prefix ranks the same head."""
        corpus = CorpusGenerator(
            CorpusConfig(num_docs=500, vocabulary_size=2000, mean_terms_per_doc=60)
        )
        prefix = prefix_term_frequencies(corpus, 0.1)
        full = corpus.term_document_frequencies()
        top_prefix = set(np.argsort(prefix)[::-1][:20].tolist())
        top_full = set(np.argsort(full)[::-1][:20].tolist())
        assert len(top_prefix & top_full) >= 14  # strong head agreement

    def test_prefix_query_frequencies(self):
        log = QueryLogGenerator(
            QueryLogConfig(num_queries=200, vocabulary_size=500)
        )
        prefix = prefix_query_frequencies(log, 0.25)
        full = log.term_query_frequencies()
        assert (prefix <= full).all()
        assert prefix.sum() > 0

    def test_bad_fraction_rejected(self):
        corpus = CorpusGenerator(CorpusConfig(num_docs=10, vocabulary_size=10))
        with pytest.raises(WorkloadError):
            prefix_term_frequencies(corpus, 0.0)


class _RecordingIndex:
    """Index stub recording documents and the stats it was built from."""

    def __init__(self, epoch_no, stats):
        self.epoch_no = epoch_no
        self.built_from = stats
        self.docs = []

    def add_document(self, doc_id, term_ids):
        self.docs.append((doc_id, tuple(term_ids)))


class TestEpochManager:
    def _manager(self, docs_per_epoch=3):
        return EpochIndexManager(
            _RecordingIndex, vocabulary_size=10, docs_per_epoch=docs_per_epoch
        )

    def test_auto_roll(self):
        mgr = self._manager(docs_per_epoch=3)
        for _ in range(7):
            mgr.add_document([1, 2])
        assert len(mgr) == 3
        assert [e.doc_count for e in mgr.epochs] == [3, 3, 1]

    def test_doc_ids_global_monotone(self):
        mgr = self._manager(docs_per_epoch=2)
        ids = [mgr.add_document([0]) for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert mgr.epochs[1].first_doc_id == 2

    def test_stats_handed_to_next_epoch(self):
        mgr = self._manager(docs_per_epoch=2)
        mgr.add_document([1, 1, 2])
        mgr.record_query([2])
        mgr.add_document([2])
        mgr.add_document([3])  # rolls into epoch 1
        built_from = mgr.epochs[1].index.built_from
        assert built_from is not None
        assert built_from.ti[1] == 1  # distinct-term counting
        assert built_from.ti[2] == 2
        assert built_from.qi[2] == 1

    def test_first_epoch_has_no_stats(self):
        mgr = self._manager()
        assert mgr.epochs[0].index.built_from is None

    def test_query_epochs_all(self):
        mgr = self._manager(docs_per_epoch=2)
        for _ in range(5):
            mgr.add_document([0])
        assert len(mgr.query_epochs()) == 3

    def test_query_epochs_range_filtered(self):
        """Section 3.3: time-constrained queries touch only overlapping epochs."""
        mgr = self._manager(docs_per_epoch=2)
        for _ in range(6):
            mgr.add_document([0])
        selected = mgr.query_epochs(doc_id_range=(2, 3))
        assert [e.epoch_no for e in selected] == [1]
        selected = mgr.query_epochs(doc_id_range=(1, 4))
        assert [e.epoch_no for e in selected] == [0, 1, 2]

    def test_manual_epoch_roll(self):
        mgr = EpochIndexManager(_RecordingIndex, vocabulary_size=10)
        mgr.add_document([0])
        mgr.new_epoch()
        mgr.add_document([1])
        assert len(mgr) == 2
        assert mgr.epochs[1].doc_count == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            EpochIndexManager(_RecordingIndex, vocabulary_size=0)
        with pytest.raises(WorkloadError):
            EpochIndexManager(
                _RecordingIndex, vocabulary_size=5, docs_per_epoch=0
            )
