"""Unit tests for the incident log (the paper's future work, implemented)."""

import pytest

from repro.core.incidents import IncidentLog
from repro.errors import TamperDetectedError


@pytest.fixture()
def log(store):
    return IncidentLog(store, "incidents")


class TestRecording:
    def test_sequencing(self, log):
        a = log.record("tamper", description="first")
        b = log.record("stuffing", description="second")
        assert (a.seq, b.seq) == (0, 1)
        assert len(log) == 2

    def test_roundtrip(self, log):
        log.record(
            "stuffing",
            location="posting list 'x'",
            invariant="result-document-consistency",
            description="3 fabricated postings",
            quarantine_doc_ids=[9, 7],
        )
        incidents = list(log.incidents())
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.kind == "stuffing"
        assert incident.location == "posting list 'x'"
        assert incident.quarantined_doc_ids == (7, 9)

    def test_record_exception(self, log):
        exc = TamperDetectedError(
            "bad pointer", location="block 3", invariant="jump-monotonicity"
        )
        incident = log.record_exception(exc)
        assert incident.invariant == "jump-monotonicity"
        assert incident.location == "block 3"

    def test_long_description_truncated_to_fit_block(self, log):
        log.record("tamper", description="x" * 10_000)
        assert list(log.incidents())  # still parseable

    def test_many_records_span_blocks(self, log):
        for i in range(50):
            log.record("tamper", description=f"incident {i}")
        assert [i.seq for i in log.incidents()] == list(range(50))


class TestQuarantine:
    def test_quarantine_membership(self, log):
        log.record("stuffing", quarantine_doc_ids=[4, 5])
        assert log.is_quarantined(4)
        assert not log.is_quarantined(3)
        assert log.quarantined_doc_ids == {4, 5}

    def test_quarantine_accumulates(self, log):
        log.record("stuffing", quarantine_doc_ids=[1])
        log.record("stuffing", quarantine_doc_ids=[2])
        assert log.quarantined_doc_ids == {1, 2}


class TestDurability:
    def test_reopen_restores_state(self, store):
        log = IncidentLog(store, "i")
        log.record("stuffing", quarantine_doc_ids=[11])
        log.record("tamper")
        reopened = IncidentLog(store, "i")
        assert len(reopened) == 2
        assert reopened.is_quarantined(11)
        # And sequencing continues where it left off.
        assert reopened.record("tamper").seq == 2

    def test_log_lives_on_worm(self, store):
        from repro.errors import FileExistsOnWormError

        IncidentLog(store, "i").record("tamper")
        with pytest.raises(FileExistsOnWormError):
            store.create_file("i")  # cannot be replaced


class TestEngineIntegration:
    def _stuffed_engine(self):
        from repro.adversary.attacks import posting_stuffing_attack
        from repro.search.engine import EngineConfig, TrustworthySearchEngine

        engine = TrustworthySearchEngine(EngineConfig(num_lists=16, branching=4))
        engine.index_document("imclone memo for stewart")
        engine.index_document("meeting about imclone results")
        tid = engine.term_id("imclone")
        posting_stuffing_attack(
            engine._lists[engine._list_id_for(tid)], tid, count=4
        )
        return engine

    def test_stuffing_quarantined_then_clean(self):
        engine = self._stuffed_engine()
        results, report = engine.search_with_incident_handling("imclone")
        assert not report.ok                       # the attack was caught
        assert {r.doc_id for r in results} == {0, 1}  # fakes excluded
        assert len(engine.incidents) == 1
        # Second query: quarantine already applies, verification is clean.
        results2, report2 = engine.search_with_incident_handling("imclone")
        assert report2.ok
        assert {r.doc_id for r in results2} == {0, 1}
        assert len(engine.incidents) == 1  # no duplicate incident

    def test_clean_engine_records_nothing(self):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine

        engine = TrustworthySearchEngine(EngineConfig(num_lists=16, branching=4))
        engine.index_document("plain honest memo")
        results, report = engine.search_with_incident_handling("memo")
        assert report.ok
        assert [r.doc_id for r in results] == [0]
        assert len(engine.incidents) == 0
